"""Integrity audit: re-verify every stored object's check trailer.

A live demonstration of the paper's subject matter.  Every artifact in
the store carries a trailer computed with one of the studied check
codes (CRC-32/AAL5 by default); the audit walks the whole tree, re-runs
the code over each payload, and reports what failed.  For
content-addressed objects it additionally recomputes the SHA-256
address — a second, independent detector, so the audit can distinguish
"trailer caught it" from "only the address caught it" (a CRC *miss*,
the very event the paper counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.objstore import IntegrityError, ObjectStore, unframe_object

__all__ = ["AuditFinding", "AuditReport", "audit_object_store", "audit_run_store"]


@dataclass
class AuditFinding:
    """One object that failed verification."""

    namespace: str
    digest: str
    reason: str
    evicted: bool = False


@dataclass
class AuditReport:
    """Aggregate outcome of one audit walk."""

    scanned: int = 0
    ok: int = 0
    bytes_scanned: int = 0
    findings: list = field(default_factory=list)
    #: trailer passed but the content address did not: the check code
    #: missed a corruption that the stronger digest caught.
    trailer_misses: int = 0

    @property
    def corrupt(self):
        return len(self.findings)

    @property
    def clean(self):
        return not self.findings

    def merge(self, other):
        self.scanned += other.scanned
        self.ok += other.ok
        self.bytes_scanned += other.bytes_scanned
        self.findings.extend(other.findings)
        self.trailer_misses += other.trailer_misses
        return self

    def render(self):
        lines = [
            "objects scanned    %d" % self.scanned,
            "bytes scanned      %d" % self.bytes_scanned,
            "verified ok        %d" % self.ok,
            "corrupt            %d" % self.corrupt,
            "trailer misses     %d" % self.trailer_misses,
        ]
        for finding in self.findings:
            lines.append(
                "  CORRUPT %s/%s: %s%s"
                % (
                    finding.namespace,
                    finding.digest[:16],
                    finding.reason,
                    " (evicted)" if finding.evicted else "",
                )
            )
        return "\n".join(lines)


def audit_object_store(store, namespace="objects", evict=False, content_addressed=False):
    """Verify every object in one :class:`ObjectStore` namespace.

    ``evict=True`` deletes corrupt objects so the next cache lookup
    recomputes them; ``content_addressed=True`` additionally recomputes
    the SHA-256 address of each payload.
    """
    report = AuditReport()
    for digest in list(store.digests()):
        report.scanned += 1
        try:
            blob = store.get_frame(digest)
        except KeyError:  # pragma: no cover - concurrent eviction
            continue
        except IntegrityError as exc:
            # Verifying backends (HTTP remote, multiplexer) refuse to
            # serve a corrupt frame at all — same finding, earlier stop.
            evicted = bool(evict and store.delete(digest))
            report.findings.append(
                AuditFinding(namespace, digest, str(exc), evicted=evicted)
            )
            continue
        except OSError as exc:
            report.findings.append(
                AuditFinding(namespace, digest, "unreadable: %s" % exc)
            )
            continue
        report.bytes_scanned += len(blob)
        try:
            payload, _ = unframe_object(blob, verify=True)
        except IntegrityError as exc:
            evicted = bool(evict and store.delete(digest))
            report.findings.append(
                AuditFinding(namespace, digest, str(exc), evicted=evicted)
            )
            continue
        if content_addressed and ObjectStore.address(payload) != digest:
            # The paper's "undetected error" case: the trailer check
            # code passed a payload the content address rejects.
            report.trailer_misses += 1
            evicted = bool(evict and store.delete(digest))
            report.findings.append(
                AuditFinding(
                    namespace, digest, "content address mismatch", evicted=evicted
                )
            )
            continue
        report.ok += 1
    return report


def audit_run_store(run_store, evict=False):
    """Audit every namespace of a :class:`repro.store.runner.RunStore`."""
    report = AuditReport()
    for name, store in run_store.namespaces:
        report.merge(
            audit_object_store(
                store,
                namespace=name,
                evict=evict,
                content_addressed=(name == "objects"),
            )
        )
    return report
