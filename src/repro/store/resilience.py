"""Seeded, deterministic fault handling for the store data plane.

PR 6 made the store *detect* failures (CRC trailers, one-warning
replica degradation); this module makes it *ride through* them — the
gap the Jepsen-style burst-error studies point at between noticing
corruption and surviving it.  Three cooperating pieces, all pure
functions of their seeds and operation counts so chaos tests replay
exactly:

* :class:`RetryPolicy` — capped exponential backoff with **seeded
  jitter** (the same sha256-of-coordinates derivation the fault plans
  use, so two runs from one seed back off identically), a per-op
  attempt budget, and per-op / per-request deadlines.  It replaces the
  hand-rolled ``for _ in range(2)`` retry loops that used to live in
  ``api/client.py`` and ``runner.py`` (now statically banned by
  reprolint REP404); every attempt and backoff lands in telemetry as
  ``resilience.<scope>.<metric>``.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, with the failure threshold and the cool-down expressed in
  **operation counts**, not wall seconds: the multiplexer ticks every
  breaker once per operation, so a replay with the same op sequence
  transitions at exactly the same points regardless of host speed.
  The injectable clock is used only for human-facing timestamps.
* :class:`ResilienceController` — one per multiplexer stack: the
  per-replica breaker registry (shared across ``sub()`` namespaces so
  a replica's failures accumulate globally), the hedged-read
  threshold, and the degraded-mode :class:`~repro.store.spool
  .WriteSpool`.

Determinism argument: backoff delays derive from ``(seed, scope, op,
attempt)`` via sha256 — no shared RNG stream; breaker transitions
derive from operation counts — no wall-clock reads; hedged reads may
fire on real latency, but a hedge returns a frame for the same
content-addressed key, so *results* are bit-identical whether or not
the hedge won.  Faults cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import time

from repro.telemetry.core import current as _telemetry

__all__ = [
    "CircuitBreaker",
    "Clock",
    "ManualClock",
    "ResilienceController",
    "RetryPolicy",
]


class Clock:
    """Monotonic wall clock; the default timebase for deadlines."""

    def now(self):
        """Seconds on a monotonic timebase (never wall-clock time)."""
        return time.monotonic()

    def sleep(self, seconds):
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A virtual clock for tests: time moves only when told to.

    ``sleep`` advances the virtual time and records the request, so a
    test can assert the exact deterministic backoff schedule a policy
    produced without ever waiting for it.
    """

    def __init__(self, start=0.0):
        self._now = float(start)
        #: every sleep requested, in order.
        self.sleeps = []

    def now(self):
        return self._now

    def advance(self, seconds):
        self._now += seconds

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self._now += seconds


class RetryPolicy:
    """Deterministic capped-exponential retry with seeded jitter.

    ``run(op, call)`` drives ``call`` through at most ``max_attempts``
    attempts, sleeping ``min(max_delay, base_delay * 2**k) * jitter``
    between them, where ``jitter`` is a uniform [0.5, 1.0) factor
    derived from ``(seed, scope, op, attempt)`` — the fault plans'
    sha256 derivation, so one seed yields one backoff schedule.

    Budgets:

    * ``max_attempts`` — per-op attempt budget;
    * ``op_deadline`` — seconds allowed per ``run()`` call: no retry is
      *started* (nor slept toward) past it;
    * ``request_deadline`` — a shared budget across every ``run()``
      through this policy instance (one logical request / one sweep's
      guard): once spent, every op gets exactly one attempt.

    Telemetry (``resilience.<scope>.*``): ``attempts``, ``retries``,
    ``backoff_seconds``, ``giveups``, ``deadline_exhausted``.
    """

    def __init__(
        self,
        scope="store",
        *,
        max_attempts=2,
        base_delay=0.0,
        max_delay=2.0,
        op_deadline=None,
        request_deadline=None,
        seed=0,
        retry_on=(OSError,),
        clock=None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.scope = scope
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.op_deadline = op_deadline
        self.request_deadline = request_deadline
        self.seed = int(seed)
        self.retry_on = tuple(retry_on)
        self.clock = clock if clock is not None else Clock()
        #: seconds of budget consumed across every run() so far.
        self.spent = 0.0
        #: ops driven through run() (the jitter op coordinate).
        self._op_index = 0

    # -- deterministic jitter ------------------------------------------------

    def _jitter(self, op_index, attempt):
        """A uniform [0.5, 1.0) factor, pure in (seed, scope, op, attempt)."""
        material = "%d|%s|%d|%d" % (self.seed, self.scope, op_index, attempt)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return 0.5 + unit / 2.0

    def backoff(self, op_index, attempt):
        """The delay before retry ``attempt`` (1-based) of op ``op_index``."""
        if self.base_delay <= 0:
            return 0.0
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        return raw * self._jitter(op_index, attempt)

    # -- driving -------------------------------------------------------------

    def run(self, op, call, on_error=None):
        """Drive ``call`` under this policy; re-raise the final failure.

        ``op`` is a human-readable operation label (telemetry and
        error context only — the jitter coordinate is the op *count*,
        which is stable across label changes).  ``on_error`` is called
        with each caught exception before the retry decision, so
        callers like the store guard can keep their own error ledgers.
        """
        telemetry = _telemetry()
        op_index = self._op_index
        self._op_index += 1
        started = self.clock.now()
        last = None
        for attempt in range(self.max_attempts):
            telemetry.count("resilience.%s.attempts" % self.scope)
            try:
                result = call()
            except self.retry_on as exc:
                last = exc
                if on_error is not None:
                    on_error(exc)
            else:
                self.spent += self.clock.now() - started
                return result
            if attempt + 1 >= self.max_attempts:
                break
            delay = self.backoff(op_index, attempt + 1)
            if not self._within_budget(started, delay):
                telemetry.count(
                    "resilience.%s.deadline_exhausted" % self.scope
                )
                break
            if delay > 0:
                telemetry.count(
                    "resilience.%s.backoff_seconds" % self.scope, delay
                )
                self.clock.sleep(delay)
            telemetry.count("resilience.%s.retries" % self.scope)
        telemetry.count("resilience.%s.giveups" % self.scope)
        self.spent += self.clock.now() - started
        raise last

    def _within_budget(self, started, delay):
        """True if a retry after ``delay`` still fits every deadline."""
        elapsed = self.clock.now() - started
        if self.op_deadline is not None \
                and elapsed + delay >= self.op_deadline:
            return False
        if self.request_deadline is not None \
                and self.spent + elapsed + delay >= self.request_deadline:
            return False
        return True


#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Closed → open → half-open, counted in operations, not seconds.

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      failures trip the breaker open;
    * **open** — the replica is quarantined: ``allow()`` is False, so
      the multiplexer stops re-probing a dead replica on every read.
      Every multiplexer operation :meth:`tick`\\ s the breaker; after
      ``cooldown_ops`` ticks it moves to half-open;
    * **half-open** — exactly one probe operation is let through:
      success closes the breaker (the replica is reintegrated),
      failure reopens it for another full cool-down.

    Each state transition emits one ``RunHealth`` degradation note and
    one ``resilience.breaker.<transition>`` telemetry count; the
    transition ledger backs ``cache stats`` / ``store scrub`` output.
    The clock is injectable and used for nothing but bookkeeping —
    decisions depend only on operation counts, so a replayed op
    sequence transitions identically on any host.
    """

    def __init__(self, name, *, failure_threshold=3, cooldown_ops=16,
                 health=None, clock=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ops < 1:
            raise ValueError("cooldown_ops must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_ops = int(cooldown_ops)
        self.health = health
        self.clock = clock if clock is not None else Clock()
        self.state = CLOSED
        self.failures = 0            # consecutive, while closed
        self.total_failures = 0
        self.total_successes = 0
        self.slow_reads = 0
        self._ticks_while_open = 0
        self._probe_inflight = False
        #: ``(op_tick, from_state, to_state, reason)`` ledger.
        self.transitions = []
        self._ticks = 0

    # -- traffic admission ---------------------------------------------------

    def allow(self):
        """May the guarded replica serve the next operation?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return False
        # half-open: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def tick(self):
        """One multiplexer-level operation elapsed (the cool-down unit)."""
        self._ticks += 1
        if self.state == OPEN:
            self._ticks_while_open += 1
            if self._ticks_while_open >= self.cooldown_ops:
                self._transition(HALF_OPEN, "cool-down of %d ops elapsed"
                                 % self.cooldown_ops)

    # -- outcomes ------------------------------------------------------------

    def record_success(self):
        self.total_successes += 1
        self.failures = 0
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._transition(CLOSED, "half-open probe verified; "
                             "replica reintegrated")

    def record_failure(self, reason="error"):
        self.total_failures += 1
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._transition(OPEN, "half-open probe failed (%s)" % reason)
            return
        if self.state == CLOSED:
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self._transition(
                    OPEN,
                    "%d consecutive failures (last: %s)"
                    % (self.failures, reason),
                )

    def record_slow(self):
        """A read slow enough to hedge counts toward the threshold."""
        self.slow_reads += 1
        self.record_failure(reason="slow read")

    def reset(self, reason="manual reset"):
        """Force the breaker closed (e.g. after a clean scrub pass)."""
        self.failures = 0
        self._probe_inflight = False
        if self.state != CLOSED:
            self._transition(CLOSED, reason)

    # -- plumbing ------------------------------------------------------------

    def _transition(self, to_state, reason):
        from_state = self.state
        self.state = to_state
        if to_state == OPEN:
            self._ticks_while_open = 0
            self.failures = 0
        _telemetry().count(
            "resilience.breaker.%s_to_%s"
            % (from_state.replace("-", "_"), to_state.replace("-", "_"))
        )
        self.transitions.append((self._ticks, from_state, to_state, reason))
        if self.health is not None:
            self.health.degrade(
                "breaker %s: %s -> %s (%s)"
                % (self.name, from_state, to_state, reason)
            )

    def as_dict(self):
        """Stats-display snapshot (``cache stats`` / ``store scrub``)."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.failures,
            "failures": self.total_failures,
            "successes": self.total_successes,
            "slow_reads": self.slow_reads,
            "transitions": [
                {"op": op, "from": f, "to": t, "reason": r}
                for op, f, t, r in self.transitions
            ],
        }


class ResilienceController:
    """One per multiplexer stack: breakers, hedging, and the spool.

    The controller is *shared* by a multiplexer and every namespace
    child it derives (``sub()`` passes it down), so a replica's breaker
    accumulates failures across ``objects/``, ``shards/``, ... — a dead
    server is one dead server, not four.

    ``hedge_threshold`` (seconds, or None to disable) is the slow-read
    point past which the multiplexer issues the read to the next
    healthy replica and takes the first trailer-verifying response.
    ``spool`` (a :class:`repro.store.spool.WriteSpool`, or None) is
    where PUTs land when every remote replica is open-circuit.
    """

    def __init__(self, *, health=None, clock=None, failure_threshold=3,
                 cooldown_ops=16, hedge_threshold=None, spool=None, seed=0):
        self.health = health
        self.clock = clock if clock is not None else Clock()
        self.failure_threshold = failure_threshold
        self.cooldown_ops = cooldown_ops
        self.hedge_threshold = hedge_threshold
        self.spool = spool
        self.seed = seed
        self._breakers = {}

    def breaker_for(self, backend, index=None):
        """The (shared) breaker guarding ``backend``'s replica identity.

        ``index`` is the replica's position in the multiplexer, which
        is stable across ``sub()`` derivation — ``describe()`` is not
        (namespaced children render as ``.../ns/objects`` vs
        ``.../ns/shards``), so position is what keys the registry.
        The display name is the first ``describe()`` seen, i.e. the
        top-level replica identity.
        """
        key = index if index is not None else backend.describe()
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                backend.describe(),
                failure_threshold=self.failure_threshold,
                cooldown_ops=self.cooldown_ops,
                health=self.health,
                clock=self.clock,
            )
            self._breakers[key] = breaker
        return breaker

    def tick(self):
        """One multiplexer operation: advance every cool-down."""
        for breaker in self._breakers.values():
            breaker.tick()

    def attach_health(self, health):
        self.health = health
        for breaker in self._breakers.values():
            breaker.health = health

    def reintegrate(self, reason="replica verified healthy"):
        """Close every breaker (a scrub pass proved the replicas out)."""
        for breaker in self._breakers.values():
            breaker.reset(reason)

    def retry_policy(self, scope, **overrides):
        """A policy wired to this controller's clock and seed."""
        options = {"seed": self.seed, "clock": self.clock}
        options.update(overrides)
        return RetryPolicy(scope, **options)

    @property
    def breakers(self):
        """``key -> CircuitBreaker``, insertion order (replica order)."""
        return dict(self._breakers)

    def stats(self):
        """The ``resilience`` block of ``cache stats`` / scrub output."""
        out = {
            "breakers": [
                breaker.as_dict()
                for breaker in sorted(self._breakers.values(),
                                      key=lambda b: b.name)
            ],
        }
        if self.spool is not None:
            out["spool"] = self.spool.stats()
        return out
