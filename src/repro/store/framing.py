"""Integrity-trailed object frames: the store's wire and disk format.

Every object the store subsystem persists or transmits — locally, in
memory, or over the HTTP remote protocol — travels as a *frame*:
``payload || value || name || name_len(1) || value_len(1) || magic(4)``
where ``value`` is the check value of one of the paper's own check
codes (CRC-32/AAL5 unless the caller picks another).  The trailer
parses backwards from the end of the frame, so no header seek is
needed and truncation is always detectable.

This module is the single definition of that format.  It sits below
:mod:`repro.store.objstore` and the :mod:`repro.store.backends`
package so both can share it without an import cycle; ``objstore``
re-exports the names for backwards compatibility.
"""

from __future__ import annotations

from repro.checksums.registry import get_algorithm

__all__ = [
    "DEFAULT_ALGORITHM",
    "FRAME_MAGIC",
    "IntegrityError",
    "frame_object",
    "unframe_object",
    "verify_frame",
]

#: The integrity-trailer algorithm used unless the caller picks another.
DEFAULT_ALGORITHM = "crc32-aal5"

#: Trailer magic closing every frame.
FRAME_MAGIC = b"RCS1"

_MAGIC = FRAME_MAGIC


class IntegrityError(Exception):
    """A stored object failed its integrity trailer (or is malformed)."""


def frame_object(payload, algorithm_name=DEFAULT_ALGORITHM):
    """Append the integrity trailer to ``payload``."""
    algorithm = get_algorithm(algorithm_name)
    width = (algorithm.width + 7) // 8
    value = algorithm.compute(payload).to_bytes(width, "big")
    name = algorithm_name.encode("ascii")
    if not 1 <= len(name) <= 255 or not 1 <= width <= 255:
        raise ValueError("trailer fields out of range for %r" % algorithm_name)
    return b"".join(
        [payload, value, name, bytes([len(name)]), bytes([width]), _MAGIC]
    )


def unframe_object(blob, verify=True):
    """Split a stored frame into ``(payload, algorithm_name)``.

    Raises :class:`IntegrityError` if the frame is malformed or (with
    ``verify``) the recomputed check value disagrees with the trailer.
    """
    if len(blob) < len(_MAGIC) + 2 or blob[-4:] != _MAGIC:
        raise IntegrityError("missing or damaged trailer magic")
    value_len = blob[-5]
    name_len = blob[-6]
    end = len(blob) - 6
    if name_len < 1 or value_len < 1 or end < name_len + value_len:
        raise IntegrityError("trailer lengths out of range")
    name_bytes = blob[end - name_len : end]
    value = blob[end - name_len - value_len : end - name_len]
    payload = blob[: end - name_len - value_len]
    try:
        algorithm_name = name_bytes.decode("ascii")
        algorithm = get_algorithm(algorithm_name)
    except (UnicodeDecodeError, KeyError) as exc:
        raise IntegrityError("unreadable trailer algorithm: %s" % exc) from exc
    if verify:
        width = (algorithm.width + 7) // 8
        if width != value_len:
            raise IntegrityError(
                "trailer width %d != %d for %s" % (value_len, width, algorithm_name)
            )
        expected = algorithm.compute(payload).to_bytes(width, "big")
        if expected != value:
            raise IntegrityError(
                "integrity trailer mismatch (%s): stored %s, computed %s"
                % (algorithm_name, value.hex(), expected.hex())
            )
    return payload, algorithm_name


def verify_frame(frame):
    """Verify ``frame``'s trailer and return its payload.

    The one-call form every read path uses at its verification
    boundary (reprolint REP403 checks the boundaries statically).
    """
    payload, _ = unframe_object(frame, verify=True)
    return payload
