"""HTTP remote access to the artifact store.

A deliberately small, stdlib-only pair:

* :mod:`repro.store.api.client` — :class:`StoreClient`, the blocking
  HTTP client the :class:`repro.store.backends.remote.HTTPBackend`
  rides on;
* :mod:`repro.store.api.server` — a threading HTTP server exposing any
  backend (a pathsliced local directory by default) under the
  ``repro-store/1`` protocol, verifying CRC trailers on every PUT and
  GET so corrupt frames can neither enter nor leave the store
  unnoticed.

Both ends speak *frames* (payload + integrity trailer); see
:mod:`repro.store.framing`.
"""

from repro.store.api.client import RemoteStoreError, StoreClient

__all__ = ["RemoteStoreError", "StoreClient"]
