"""Threading HTTP server exposing a store backend (``repro-store/1``).

Stdlib only.  Routes, all under ``/v1``:

=========  ====================================  =========================
method     path                                  meaning
=========  ====================================  =========================
GET        ``/ping``                             identity + protocol
GET/HEAD   ``/ns/<ns>/objects/<key>``            fetch one frame
PUT        ``/ns/<ns>/objects/<key>``            store one frame
DELETE     ``/ns/<ns>/objects/<key>``            remove one object
GET        ``/ns/<ns>/keys``                     sorted key listing
GET        ``/ns/<ns>/stats``                    object/byte counts
=========  ====================================  =========================

CRC trailers are verified on **both ends of both transfers**: a PUT
whose frame fails its trailer is refused with 400 (corruption cannot
*enter* the store), and a GET whose stored frame fails re-verification
is refused with 409 (corruption cannot *leave* the store unnoticed —
the client maps 409 to ``IntegrityError``, evicts, and recomputes;
the scrubber repairs the damage from a healthy replica).

Run standalone with ``python -m repro.store.api.server --root DIR``
(the ``repro-checksums store serve`` subcommand is the same entry
point behind the CLI facade).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.store.framing import IntegrityError, verify_frame

__all__ = ["StoreHTTPServer", "StoreRequestHandler", "main", "serve_store"]

PROTOCOL = "repro-store/1"

#: Upload cap: one frame may not exceed this many bytes (413 beyond).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_NS_RE = re.compile(r"^[a-z][a-z0-9_-]{0,63}$")
_KEY_RE = re.compile(r"^[0-9a-f]{6,128}$")

_OBJECT_PATH = re.compile(r"^/v1/ns/([^/]+)/objects/([^/]+)$")
_LISTING_PATH = re.compile(r"^/v1/ns/([^/]+)/(keys|stats)$")


class StoreHTTPServer(ThreadingHTTPServer):
    """One backend served over HTTP; namespaces derived via ``sub()``."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, backend, verbose=False):
        self.backend = backend
        self.verbose = verbose
        self._spaces = {}
        self._spaces_lock = threading.Lock()
        super().__init__(address, StoreRequestHandler)

    def space(self, namespace):
        """The per-namespace backend (one instance per namespace)."""
        with self._spaces_lock:
            space = self._spaces.get(namespace)
            if space is None:
                space = self._spaces[namespace] = self.backend.sub(namespace)
            return space

    @property
    def url(self):
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Route dispatch for the ``repro-store/1`` protocol."""

    server_version = "repro-store/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status, reason):
        self._send_json(status, {"error": True, "reason": reason})

    def _object_route(self):
        """``(backend, key)`` for an object path, or None (replied)."""
        match = _OBJECT_PATH.match(self.path)
        if not match:
            self._send_error_json(404, "no such route: %s" % self.path)
            return None
        namespace, key = match.group(1), match.group(2)
        if not _NS_RE.match(namespace):
            self._send_error_json(400, "invalid namespace %r" % namespace)
            return None
        if not _KEY_RE.match(key):
            self._send_error_json(400, "invalid object key %r" % key)
            return None
        return self.server.space(namespace), key

    # -- verbs --------------------------------------------------------------

    def do_GET(self):
        if self.path == "/v1/ping":
            self._send_json(200, {
                "service": "repro-store",
                "protocol": PROTOCOL,
                "backend": self.server.backend.describe(),
            })
            return
        listing = _LISTING_PATH.match(self.path)
        if listing:
            self._do_listing(listing.group(1), listing.group(2))
            return
        route = self._object_route()
        if route is None:
            return
        backend, key = route
        try:
            frame = backend.get_frame(key)
        except KeyError:
            self._send_error_json(404, "no object %s" % key)
            return
        except OSError as exc:
            self._send_error_json(500, "backend read failed: %s" % exc)
            return
        try:
            # Outbound verification: never serve a frame whose trailer
            # fails — the reader would just re-detect it; 409 lets the
            # client evict/recompute and the scrubber repair instead.
            verify_frame(frame)
        except IntegrityError as exc:
            self._send_error_json(409, "stored frame corrupt: %s" % exc)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(frame)))
        self.end_headers()
        self.wfile.write(frame)

    def _do_listing(self, namespace, what):
        if not _NS_RE.match(namespace):
            self._send_error_json(400, "invalid namespace %r" % namespace)
            return
        backend = self.server.space(namespace)
        try:
            if what == "keys":
                self._send_json(200, {"keys": list(backend.keys())})
            else:
                self._send_json(200, backend.stats())
        except OSError as exc:  # pragma: no cover - backend I/O failure
            self._send_error_json(500, "backend walk failed: %s" % exc)

    def do_HEAD(self):
        route = self._object_route()
        if route is None:
            return
        backend, key = route
        try:
            size = backend.size(key)
        except KeyError:
            self._send_error_json(404, "no object %s" % key)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(size))
        self.end_headers()

    def do_PUT(self):
        route = self._object_route()
        if route is None:
            return
        backend, key = route
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "unparseable Content-Length")
            return
        if length > MAX_FRAME_BYTES:
            self._send_error_json(413, "frame exceeds %d bytes" % MAX_FRAME_BYTES)
            return
        frame = self.rfile.read(length)
        try:
            # Inbound verification: a frame that cannot prove its own
            # integrity never reaches the disk.
            verify_frame(frame)
        except IntegrityError as exc:
            self._send_error_json(400, "refused corrupt frame: %s" % exc)
            return
        try:
            backend.put_frame(key, frame)
        except OSError as exc:
            self._send_error_json(507, "backend write failed: %s" % exc)
            return
        self._send_json(201, {"stored": True, "bytes": len(frame)})

    def do_DELETE(self):
        route = self._object_route()
        if route is None:
            return
        backend, key = route
        try:
            deleted = backend.delete(key)
        except OSError as exc:
            self._send_error_json(500, "backend delete failed: %s" % exc)
            return
        self._send_json(200, {"deleted": bool(deleted)})


def serve_store(root=None, backend=None, host="127.0.0.1", port=0,
                verbose=False):
    """Build a :class:`StoreHTTPServer` (not yet serving).

    ``backend`` wins over ``root``; with neither, the default local
    store root is served.  ``port=0`` binds an ephemeral port —
    inspect ``server.url`` afterwards.  Call ``serve_forever()`` (or
    drive it from a thread in tests).
    """
    if backend is None:
        from repro.store.backends.local import LocalBackend
        from repro.store.objstore import default_root

        backend = LocalBackend(root if root is not None else default_root())
    return StoreHTTPServer((host, port), backend, verbose=verbose)


def main(argv=None):
    """``python -m repro.store.api.server``: serve a store root forever."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-store-server",
        description="Serve a repro-checksums artifact store over HTTP",
    )
    parser.add_argument("--root", default=None,
                        help="store root directory (default: "
                             "$REPRO_CHECKSUMS_CACHE or ~/.cache/"
                             "repro-checksums)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8970)
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)
    server = serve_store(root=args.root, host=args.host, port=args.port,
                         verbose=args.verbose)
    print("repro-store %s serving %s" % (
        server.url, server.backend.describe()), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    import sys

    sys.exit(main())
