"""Blocking stdlib HTTP client for the ``repro-store/1`` protocol.

One persistent ``http.client.HTTPConnection`` per client; a dropped
connection is re-established and the request retried under a
:class:`~repro.store.resilience.RetryPolicy` (every protocol operation
is idempotent, so retries are safe).  The client distinguishes the
*connect* phase (no bytes of the response seen yet — always safe to
retry) from *mid-body* failures (the response started and died — the
socket state is unknowable, so the failure is counted separately in
telemetry as ``resilience.http.midbody_failures`` before the retry);
every reconnect lands in ``resilience.http.reconnects``.  Failures
surface as:

* ``KeyError`` — the object does not exist (HTTP 404);
* :class:`repro.store.framing.IntegrityError` — the *server* refused
  to serve or accept a frame whose CRC trailer does not verify
  (HTTP 409/400 with an ``integrity`` error body);
* :class:`RemoteStoreError` (an ``OSError``) — transport failures and
  unexpected statuses, so the store degradation ladder and the
  resilient multiplexer treat a dead server like any failing disk.
"""

from __future__ import annotations

import http.client
import json
import socket
from urllib.parse import urlsplit

from repro.store.framing import IntegrityError
from repro.store.resilience import RetryPolicy
from repro.telemetry.core import current as _telemetry

__all__ = ["API_PREFIX", "PROTOCOL", "RemoteStoreError", "StoreClient"]

#: Protocol identity returned by ``GET /v1/ping``.
PROTOCOL = "repro-store/1"

#: Every route lives under this prefix.
API_PREFIX = "/v1"

#: Statuses the protocol maps to ``IntegrityError`` (corrupt frames).
_INTEGRITY_STATUSES = (400, 409)


class RemoteStoreError(OSError):
    """Transport failure or unexpected status from the remote store."""


class StoreClient:
    """One connection to one remote store; thread-compatible, not shared."""

    def __init__(self, url, timeout=10.0, retry_policy=None):
        parts = urlsplit(url)
        if parts.scheme not in ("http",):
            raise ValueError("unsupported store URL scheme %r" % parts.scheme)
        if not parts.hostname:
            raise ValueError("store URL %r has no host" % url)
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self.url = "http://%s:%d" % (self.host, self.port)
        self._connection = None
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(
                "http",
                max_attempts=2,
                base_delay=0.0,  # reconnect immediately; backoff is opt-in
                op_deadline=timeout,
                retry_on=(http.client.HTTPException, ConnectionError,
                          socket.timeout, OSError),
            )
        )

    # -- transport ----------------------------------------------------------

    def _connect(self):
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _attempt(self, method, path, body):
        """One wire attempt; telemetry distinguishes the failure phase."""
        connection = self._connect()
        phase = "connect"
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            # Headers arrived: from here a failure means the response
            # died mid-body, not that the server was unreachable.
            phase = "body"
            payload = response.read()
            return response.status, response.headers, payload
        except (http.client.HTTPException, ConnectionError,
                socket.timeout, OSError):
            # The socket state is unknowable either way: drop it so a
            # retry starts from a clean connect.
            self.close()
            if phase == "body":
                _telemetry().count("resilience.http.midbody_failures")
            else:
                _telemetry().count("resilience.http.reconnects")
            raise

    def _request(self, method, path, body=None):
        """``(status, headers, body_bytes)``; retries per the policy."""
        try:
            return self.retry_policy.run(
                "%s %s" % (method, path),
                lambda: self._attempt(method, path, body),
            )
        except (http.client.HTTPException, ConnectionError,
                socket.timeout, OSError) as exc:
            raise RemoteStoreError(
                "remote store %s unreachable: %s" % (self.url, exc)
            ) from exc

    @staticmethod
    def _error_reason(payload):
        try:
            return json.loads(payload.decode("utf-8")).get("reason", "")
        except (UnicodeDecodeError, ValueError):
            return payload[:200].decode("utf-8", "replace")

    def _raise_for(self, method, path, status, payload):
        reason = self._error_reason(payload)
        if status in _INTEGRITY_STATUSES:
            raise IntegrityError(
                "remote store rejected %s %s: %s" % (method, path, reason)
            )
        raise RemoteStoreError(
            "remote store %s: unexpected %d for %s %s: %s"
            % (self.url, status, method, path, reason)
        )

    # -- protocol operations ------------------------------------------------

    def _object_path(self, namespace, key):
        return "%s/ns/%s/objects/%s" % (API_PREFIX, namespace, key)

    def ping(self):
        """The server's identity dict; raises if it is not a repro store."""
        status, _, payload = self._request("GET", API_PREFIX + "/ping")
        if status != 200:
            self._raise_for("GET", "/ping", status, payload)
        try:
            identity = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise RemoteStoreError(
                "remote store %s: unparseable ping response" % self.url
            ) from exc
        if identity.get("protocol") != PROTOCOL:
            raise RemoteStoreError(
                "remote store %s speaks %r, expected %r"
                % (self.url, identity.get("protocol"), PROTOCOL)
            )
        return identity

    def get_frame(self, namespace, key):
        """The stored frame; ``KeyError`` when absent."""
        path = self._object_path(namespace, key)
        status, _, payload = self._request("GET", path)
        if status == 200:
            return payload
        if status == 404:
            raise KeyError(key)
        self._raise_for("GET", path, status, payload)

    def put_frame(self, namespace, key, frame):
        """Upload one frame; the server verifies its trailer first."""
        path = self._object_path(namespace, key)
        status, _, payload = self._request("PUT", path, body=bytes(frame))
        if status in (200, 201):
            return True
        self._raise_for("PUT", path, status, payload)

    def head(self, namespace, key):
        """Stored frame size, or None when absent."""
        path = self._object_path(namespace, key)
        status, headers, payload = self._request("HEAD", path)
        if status == 200:
            return int(headers.get("Content-Length", 0))
        if status == 404:
            return None
        self._raise_for("HEAD", path, status, payload)

    def delete(self, namespace, key):
        """Remove one object; True iff this call removed it."""
        path = self._object_path(namespace, key)
        status, _, payload = self._request("DELETE", path)
        if status == 200:
            try:
                return bool(json.loads(payload.decode("utf-8")).get("deleted"))
            except (UnicodeDecodeError, ValueError):
                return False
        self._raise_for("DELETE", path, status, payload)

    def keys(self, namespace):
        """Every key in ``namespace``, sorted by the server."""
        path = "%s/ns/%s/keys" % (API_PREFIX, namespace)
        status, _, payload = self._request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, payload)
        return list(json.loads(payload.decode("utf-8")).get("keys", []))

    def stats(self, namespace):
        """The server-side stats dict for ``namespace``."""
        path = "%s/ns/%s/stats" % (API_PREFIX, namespace)
        status, _, payload = self._request("GET", path)
        if status != 200:
            self._raise_for("GET", path, status, payload)
        return json.loads(payload.decode("utf-8"))
