"""Resumable, cached, sharded splice runs.

The paper's headline numbers come from enumeration sweeps over whole
filesystems — hours of work at production corpus sizes.  Files are
independent, so the sweep shards naturally per file:

* each shard is keyed by the **content digest** of the file plus the
  packetizer/engine configuration (identical files share shards across
  profiles, sizes, and experiments);
* completed shards persist their :class:`SpliceCounters` as
  integrity-trailed JSON; a manifest checkpoints completion state
  after every shard;
* a re-run (or a run interrupted and restarted) recomputes only the
  shards that are missing or whose stored bytes fail the integrity
  trailer — corrupt entries are evicted and recomputed, so corruption
  costs time, never correctness.

``run_splice_experiment(..., store=RunStore(...))`` routes through
:func:`run_sharded_splice`; results are bit-identical to the direct
path because shard merge order follows file order either way.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.core.results import SpliceCounters
from repro.store.cache import ResultCache
from repro.store.keys import SCHEMA_VERSION, digest_key, shard_key
from repro.store.manifest import ManifestStore, RunManifest
from repro.store.objstore import DEFAULT_ALGORITHM, ObjectStore, default_root

__all__ = ["RunStore", "run_key_for", "run_sharded_splice"]


class RunStore:
    """Facade bundling the artifact store's namespaces under one root.

    =============  =======================================================
    namespace      contents
    =============  =======================================================
    ``objects/``   content-addressed blobs (``put``/``get`` by SHA-256)
    ``results/``   experiment-level :class:`ExperimentReport` JSON
    ``shards/``    per-file :class:`SpliceCounters` JSON
    ``manifests/`` :class:`RunManifest` checkpoints
    =============  =======================================================

    Every namespace frames its payloads with the same integrity-trailer
    algorithm (CRC-32/AAL5 unless overridden), so ``repro-checksums
    cache audit`` can verify the whole tree uniformly.
    """

    def __init__(self, root=None, algorithm=DEFAULT_ALGORITHM):
        self.root = Path(root) if root is not None else default_root()
        self.algorithm = algorithm
        self.objects = ObjectStore(self.root / "objects", algorithm)
        self.results = ResultCache(ObjectStore(self.root / "results", algorithm))
        self.shards = ResultCache(ObjectStore(self.root / "shards", algorithm))
        self.manifests = ManifestStore(
            ObjectStore(self.root / "manifests", algorithm)
        )

    @property
    def namespaces(self):
        """(name, ObjectStore) pairs, audit/statistics order."""
        return (
            ("objects", self.objects),
            ("results", self.results.store),
            ("shards", self.shards.store),
            ("manifests", self.manifests.store),
        )

    def stats(self):
        """Per-namespace object counts and byte totals."""
        out = {"root": str(self.root)}
        for name, store in self.namespaces:
            out[name] = store.stats()
        return out

    def clear(self):
        """Delete every stored object across all namespaces."""
        return sum(store.clear() for _, store in self.namespaces)


def run_key_for(filesystem_name, shard_keys):
    """The manifest key of one run: its identity is its shard set."""
    return digest_key("splice-run", SCHEMA_VERSION, filesystem_name, shard_keys)


def run_sharded_splice(
    files, config, options, store, workers=None, filesystem_name="<anonymous>"
):
    """Merge per-file splice counters, reusing every intact cached shard.

    ``files`` is the materialized file list (objects with ``.data``);
    returns the merged :class:`SpliceCounters`, bit-identical to the
    uncached path.  ``workers > 1`` fans *missing* shards over a
    process pool; completed shards are loaded, never recomputed.
    """
    # Import here: core.experiment lazily imports this module, so the
    # worker function is shared without a load-time cycle.
    from repro.core.experiment import _file_counters

    shard_keys = [
        shard_key(hashlib.sha256(file.data).hexdigest(), config, options)
        for file in files
    ]
    run_key = run_key_for(filesystem_name, shard_keys)
    manifest = store.manifests.load(run_key)
    if manifest is None:
        manifest = RunManifest(
            run_key=run_key,
            label=filesystem_name,
            params={"files": len(files), "algorithm": config.algorithm},
        )
    for key, file in zip(shard_keys, files):
        manifest.register(key, getattr(file, "name", "<file>"))

    # Load completed shards; anything missing or corrupt is demoted and
    # recomputed below (the cache evicts corrupt frames itself).
    loaded = {}
    for key in set(shard_keys):
        counters = store.shards.get_object(key, SpliceCounters.from_json)
        if counters is not None:
            loaded[key] = counters
            manifest.mark_done(key)
        else:
            manifest.mark_pending(key)

    missing = [
        (index, key)
        for index, key in enumerate(shard_keys)
        if key not in loaded
    ]
    # Identical files share one shard key; compute each key once.
    unique_missing = {}
    for index, key in missing:
        unique_missing.setdefault(key, index)
    jobs = [
        (key, (files[index].data, config, options))
        for key, index in unique_missing.items()
    ]

    if workers and workers > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            computed = pool.map(_file_counters, [job for _, job in jobs], chunksize=1)
            for (key, _), counters in zip(jobs, computed):
                _store_shard(store, manifest, loaded, key, counters)
    else:
        for key, job in jobs:
            _store_shard(store, manifest, loaded, key, _file_counters(job))

    if not jobs:  # pure resume/hit: still persist the refreshed manifest
        store.manifests.save(manifest)

    merged = SpliceCounters()
    for key in shard_keys:
        merged += loaded[key]
    return merged


def _store_shard(store, manifest, loaded, key, counters):
    """Persist one computed shard and checkpoint the manifest."""
    loaded[key] = counters
    store.shards.put_object(key, counters)
    manifest.mark_done(key)
    store.manifests.save(manifest)
