"""Resumable, cached, sharded splice runs under supervision.

The paper's headline numbers come from enumeration sweeps over whole
filesystems — hours of work at production corpus sizes.  Files are
independent, so the sweep shards naturally per file:

* each shard is keyed by the **content digest** of the file plus the
  packetizer/engine configuration (identical files share shards across
  profiles, sizes, and experiments);
* completed shards persist their :class:`SpliceCounters` as
  integrity-trailed JSON; a manifest checkpoints completion state
  after every shard;
* a re-run (or a run interrupted and restarted) recomputes only the
  shards that are missing or whose stored bytes fail the integrity
  trailer — corrupt entries are evicted and recomputed, so corruption
  costs time, never correctness.

Execution goes through :class:`repro.core.supervisor.SupervisedPool`
(retry → pool respawn → in-process fallback), and store I/O goes
through a **degradation ladder** of its own: an ``OSError`` from the
cache root is retried under a deterministic
:class:`~repro.store.resilience.RetryPolicy`, a persistently failing
store demotes the run to store-less computation with a single
warning, and every intervention lands in the run's
:class:`RunHealth` record.  A full disk or a read-only cache can
therefore never abort a sweep — it only costs the resumability of
that one run.  Writes spooled during a remote-store outage are
replayed opportunistically at end-of-sweep.

``run_splice_experiment(..., store=RunStore(...))`` routes through
:func:`run_sharded_splice`; results are bit-identical to the direct
path because shard merge is a sum of per-file counters either way.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from pathlib import Path

from repro.core.results import SpliceCounters
from repro.core.supervisor import RunHealth
from repro.telemetry.core import current as _telemetry
from repro.store.cache import ResultCache
from repro.store.keys import SCHEMA_VERSION, digest_key, shard_key
from repro.store.manifest import ManifestStore, RunManifest
from repro.store.backends.local import LocalBackend
from repro.store.objstore import DEFAULT_ALGORITHM, ObjectStore, default_root
from repro.store.resilience import RetryPolicy

__all__ = ["RunStore", "run_key_for", "run_sharded_splice"]


class RunStore:
    """Facade bundling the artifact store's namespaces under one root.

    =============  =======================================================
    namespace      contents
    =============  =======================================================
    ``objects/``   content-addressed blobs (``put``/``get`` by SHA-256)
    ``results/``   experiment-level :class:`ExperimentReport` JSON
    ``shards/``    per-file :class:`SpliceCounters` JSON
    ``manifests/`` :class:`RunManifest` checkpoints
    =============  =======================================================

    Every namespace frames its payloads with the same integrity-trailer
    algorithm (CRC-32/AAL5 unless overridden), so ``repro-checksums
    cache audit`` can verify the whole tree uniformly.
    """

    def __init__(self, root=None, algorithm=DEFAULT_ALGORITHM, backend=None):
        if backend is None:
            root = Path(root) if root is not None else default_root()
            backend = LocalBackend(root)
        self.backend = backend
        #: Filesystem root when local-backed, else None (use describe()).
        self.root = getattr(backend, "root", None)
        self.algorithm = algorithm

        def namespace(name):
            return ObjectStore(algorithm=algorithm, backend=backend.sub(name))

        self.objects = namespace("objects")
        self.results = ResultCache(namespace("results"))
        self.shards = ResultCache(namespace("shards"))
        self.manifests = ManifestStore(namespace("manifests"))

    def describe(self):
        """Human-readable identity of the backing store."""
        return self.backend.describe()

    def attach_health(self, health):
        """Route backend degradation warnings into a run's health record."""
        for _, store in self.namespaces:
            backend = store.backend
            if hasattr(backend, "attach_health"):
                backend.attach_health(health)

    @property
    def namespaces(self):
        """(name, ObjectStore) pairs, audit/statistics order."""
        return (
            ("objects", self.objects),
            ("results", self.results.store),
            ("shards", self.shards.store),
            ("manifests", self.manifests.store),
        )

    def stats(self):
        """Per-namespace object counts and byte totals."""
        out = {"root": str(self.root) if self.root is not None
                       else self.describe()}
        for name, store in self.namespaces:
            out[name] = store.stats()
        return out

    def backend_stats(self):
        """Per-namespace backend operation counters (hits/misses/bytes).

        The instrumentation behind ``repro-checksums cache stats``:
        every namespace reports its backend kind, identity, and the
        :class:`~repro.store.backends.base.BackendCounters` accumulated
        over this process's lifetime.
        """
        out = {}
        for name, store in self.namespaces:
            backend = store.backend
            entry = {
                "kind": backend.kind,
                "backend": backend.describe(),
                "counters": backend.counters.as_dict(),
            }
            children = getattr(backend, "children", ())
            if children:
                entry["children"] = [
                    {
                        "kind": child.kind,
                        "backend": child.describe(),
                        "counters": child.counters.as_dict(),
                    }
                    for child in children
                ]
            out[name] = entry
        return out

    def clear(self):
        """Delete every stored object across all namespaces."""
        return sum(store.clear() for _, store in self.namespaces)

    def resilience_stats(self):
        """Breaker/spool snapshot, or None for non-resilient backends."""
        stats = getattr(self.backend, "resilience_stats", None)
        if stats is None:
            return None
        return stats()

    def drain_spool(self):
        """Replay degraded-mode spooled writes; None without a spool."""
        drain = getattr(self.backend, "drain_spool", None)
        if drain is None:
            return None
        return drain()

    def close(self):
        """Release backend resources (HTTP connections); idempotent."""
        self.backend.close()
        for _, store in self.namespaces:
            store.backend.close()


def run_key_for(filesystem_name, shard_keys):
    """The manifest key of one run: its identity is its shard set."""
    return digest_key("splice-run", SCHEMA_VERSION, filesystem_name, shard_keys)


class _StoreGuard:
    """The store degradation ladder: retry, then go store-less.

    Every store operation the runner performs goes through
    :meth:`_attempt`, driven by a deterministic
    :class:`~repro.store.resilience.RetryPolicy` (two attempts, no
    backoff — the immediate-retry semantics the ladder has always
    had, now centrally owned and telemetry-counted).  Each caught
    ``OSError`` is added to the run's store-error ledger; a final
    failure skips the operation (the run keeps its in-memory
    counters).  Once :data:`DEMOTE_AFTER` errors have accumulated the
    guard demotes the whole run to store-less mode with a single
    warning — persistence is disabled, correctness is untouched.
    """

    #: Cumulative store errors after which the run goes store-less.
    DEMOTE_AFTER = 6

    def __init__(self, store, health, retry_policy=None):
        self.store = store
        self.health = health
        self.active = store is not None
        self.policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy("guard", max_attempts=2, base_delay=0.0)
        )
        if self.active and hasattr(store, "attach_health"):
            # Resilient multiplexer backends report replica failures
            # into the same health record as the ladder itself.
            store.attach_health(health)

    def _count_error(self, exc):
        self.health.store_errors += 1

    def _attempt(self, what, call, default=None):
        if not self.active:
            return default
        try:
            return self.policy.run(what, call, on_error=self._count_error)
        except OSError as exc:
            if self.health.store_errors >= self.DEMOTE_AFTER:
                self._demote(what, exc)
            return default

    def _demote(self, what, exc):
        self.active = False
        self.health.storeless = True
        note = (
            "store-less mode after %d store errors (last: %s during %s)"
            % (self.health.store_errors, exc, what)
        )
        self.health.degrade(note)
        warnings.warn(
            "artifact store is failing (%s during %s); continuing without "
            "persistence — results are unaffected, resumability is lost "
            "for this run" % (exc, what),
            RuntimeWarning,
            stacklevel=4,
        )

    # -- guarded operations -------------------------------------------------

    def load_manifest(self, run_key):
        return self._attempt(
            "manifest load", lambda: self.store.manifests.load(run_key)
        )

    def save_manifest(self, manifest):
        self._attempt(
            "manifest save", lambda: self.store.manifests.save(manifest)
        )

    def get_shard(self, key):
        """A verified cached shard, or None; evictions are counted."""
        before = self.store.shards.stats.corrupt if self.store else 0
        value = self._attempt(
            "shard read",
            lambda: self.store.shards.get_object(key, SpliceCounters.from_json),
        )
        if self.store is not None:
            self.health.evictions += self.store.shards.stats.corrupt - before
        return value

    def put_shard(self, key, counters):
        self._attempt(
            "shard write", lambda: self.store.shards.put_object(key, counters)
        )

    def drain_spool(self):
        """Opportunistic end-of-sweep replay of degraded-mode writes."""
        if not self.active:
            return None
        drain = getattr(self.store, "drain_spool", None)
        if drain is None:
            return None
        return self._attempt("spool drain", drain)


def run_sharded_splice(
    files,
    config,
    options,
    store,
    workers=None,
    filesystem_name="<anonymous>",
    health=None,
    faults=None,
    journal=None,
    resume=False,
    shard_timeout=None,
):
    """Merge per-file splice counters, reusing every intact cached shard.

    ``files`` is the materialized file list (objects with ``.data``);
    returns the merged :class:`SpliceCounters`, bit-identical to the
    uncached path.  ``workers > 1`` fans *missing* shards over a
    supervised process pool; completed shards are loaded, never
    recomputed.  ``health`` accumulates the supervision record;
    ``faults`` threads a deterministic fault plan into the pool's
    worker shim (the store side is injected by wrapping ``store``).

    ``store`` may be None when only a ``journal`` (a
    :class:`repro.store.journal.ShardJournal`) is in play: the journal
    checkpoints every drained shard atomically, ``resume`` merges a
    fingerprint-matching journal's counters before dispatch, and the
    ambient :class:`~repro.core.checkpoint.SweepController` is polled
    at every shard boundary so a signal or an expired ``--deadline``
    stops the sweep cleanly — checkpointed, never torn.  The resumed
    merge follows the same deterministic first-seen key order, so a
    resumed run is bit-identical to an uninterrupted one at any
    ``workers`` width.
    """
    # Import here: core.experiment lazily imports this module, so the
    # pool construction is shared without a load-time cycle.
    from repro.core.batch import resolve_engine_kind
    from repro.core.checkpoint import current_controller
    from repro.core.experiment import _account_shard, _check_stop, _make_pool

    health = health if health is not None else RunHealth()
    telemetry = _telemetry()
    controller = current_controller()
    guard = _StoreGuard(store, health)

    shard_keys = [
        shard_key(hashlib.sha256(file.data).hexdigest(), config, options)
        for file in files
    ]
    run_key = run_key_for(filesystem_name, shard_keys)
    unique_keys = list(dict.fromkeys(shard_keys))
    journal_entries = {}
    if journal is not None:
        with telemetry.span("journal.open"):
            journal_entries = journal.open_run(
                run_key, label=filesystem_name,
                total=len(unique_keys), resume=resume,
            )
    manifest = guard.load_manifest(run_key)
    if manifest is None:
        manifest = RunManifest(
            run_key=run_key,
            label=filesystem_name,
            params={"files": len(files), "algorithm": config.algorithm},
        )
    for key, file in zip(shard_keys, files):
        manifest.register(key, getattr(file, "name", "<file>"))

    # Load completed shards; anything missing or corrupt is demoted and
    # recomputed below (the cache evicts corrupt frames itself).  The
    # iteration order is the deterministic first-seen file order — with
    # fault injection active, store faults must replay identically.
    # Journaled counters fill in what the shard cache cannot serve;
    # fingerprint validation upstream guarantees they belong here.
    loaded = {}
    resumed = 0
    with telemetry.span("store.shard_load"):
        for key in unique_keys:
            counters = guard.get_shard(key)
            if counters is None and key in journal_entries:
                counters = journal_entries[key]
                resumed += 1
            if counters is not None:
                loaded[key] = counters
                manifest.mark_done(key)
            else:
                manifest.mark_pending(key)
    if resumed:
        telemetry.count("checkpoint.resumed_shards", resumed)

    missing = [
        (index, key)
        for index, key in enumerate(shard_keys)
        if key not in loaded
    ]
    # Identical files share one shard key; compute each key once.
    unique_missing = {}
    for index, key in missing:
        unique_missing.setdefault(key, index)
    jobs = [
        (key, (files[index].data, config, options))
        for key, index in unique_missing.items()
    ]
    telemetry.count("store.shard_hits", len(loaded))
    telemetry.count("store.shard_misses", len(unique_missing))

    pool = _make_pool(workers, health, faults, shard_timeout)
    total = len(unique_keys)
    stopped = _check_stop(
        controller, health, telemetry, len(loaded), total, journal
    )
    if not stopped:
        with telemetry.span("store.shard_compute"):
            last = time.perf_counter()
            for index, counters in pool.run([job for _, job in jobs]):
                now = time.perf_counter()
                _account_shard(
                    telemetry, counters, len(jobs[index][1][0]), now - last,
                    engine_kind=resolve_engine_kind(options).value,
                )
                last = now
                _store_shard(guard, manifest, loaded, jobs[index][0], counters)
                if journal is not None:
                    journal.record(jobs[index][0], counters)
                stopped = _check_stop(
                    controller, health, telemetry, len(loaded), total, journal
                )
                if stopped:
                    break

    if not jobs:  # pure resume/hit: still persist the refreshed manifest
        guard.save_manifest(manifest)
    if journal is not None and not stopped:
        journal.complete()  # a journal on disk always means "interrupted"
    if not stopped:
        # A replica may have healed since the outage that spooled the
        # writes; replay them now so the sweep ends with a complete
        # remote cache (no-op without a spool, or when it is empty).
        guard.drain_spool()

    merged = SpliceCounters()
    for key in shard_keys:
        if key in loaded:  # on a deadline stop the merge is partial
            merged += loaded[key]
    return merged


def _store_shard(guard, manifest, loaded, key, counters):
    """Record one computed shard and checkpoint the manifest."""
    loaded[key] = counters
    guard.put_shard(key, counters)
    manifest.mark_done(key)
    guard.save_manifest(manifest)
