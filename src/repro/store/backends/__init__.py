"""Pluggable object-store backends and the URL grammar naming them.

The formal interface is :class:`repro.store.backends.base.Backend`:
frame-level storage under hex keys, per-backend hit/miss/byte
counters, and ``sub(namespace)`` derivation for the RunStore
namespaces.  Implementations:

==========  ========================================  ==================
scheme      example                                   backend
==========  ========================================  ==================
(path)      ``/var/cache/repro`` / ``file:///...``    LocalBackend
memory      ``memory://`` / ``memory://shared``       MemoryBackend
http        ``http://127.0.0.1:8970``                 HTTPBackend
==========  ========================================  ==================

Composition is spelled in the ``--store-url`` grammar understood by
:func:`open_store_url`:

* ``URL,URL[,URL...]`` — a resilient :class:`MultiplexBackend`: reads
  come from the first replica whose frame verifies, writes go through
  to every replica, failing replicas are skipped with one RunHealth
  warning each;
* ``stripe:URL,URL`` — a :class:`StripingBackend`: each key owned by
  exactly one child;
* a ``readonly+`` prefix on any single URL wraps it in
  :class:`ReadOnlyBackend` (e.g. ``readonly+http://host:8970`` as the
  warm upstream replica of a multiplexer).

Every multiplexer built here carries a
:class:`~repro.store.resilience.ResilienceController` — per-replica
circuit breakers that quarantine, probe, and reintegrate unhealthy
replicas — and, whenever a replica is *remote* (``http://``), a
degraded-mode :class:`~repro.store.spool.WriteSpool` so a total
outage queues writes locally instead of dropping them.  A single
remote URL is wrapped in a one-replica multiplexer for the same
protection; single local/memory backends stay bare (pass
``resilience=False`` to opt a composite out and get the PR 6
behaviour).
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import urlsplit

from repro.store.backends.base import (
    Backend,
    BackendCounters,
    ReadOnlyError,
)
from repro.store.backends.local import LocalBackend, atomic_write
from repro.store.backends.memory import MemoryBackend, named_region
from repro.store.backends.multiplex import (
    MultiplexBackend,
    ReadOnlyBackend,
    StripingBackend,
)
from repro.store.backends.remote import HTTPBackend

__all__ = [
    "Backend",
    "BackendCounters",
    "HTTPBackend",
    "LocalBackend",
    "MemoryBackend",
    "MultiplexBackend",
    "ReadOnlyBackend",
    "ReadOnlyError",
    "StripingBackend",
    "atomic_write",
    "backend_schemes",
    "named_region",
    "open_backend",
    "open_store_url",
]

#: ``--store-url`` prefix selecting the striping composition.
STRIPE_PREFIX = "stripe:"

#: URL prefix wrapping a single backend read-only.
READONLY_PREFIX = "readonly+"


def backend_schemes():
    """The URL schemes :func:`open_backend` understands, sorted."""
    return ("file", "http", "memory")


def open_backend(url=None, timeout=10.0):
    """A single backend for ``url`` (path, ``file://``, ``memory://``,
    ``http://``); ``None`` opens the default local store root."""
    if url is None:
        from repro.store.objstore import default_root

        return LocalBackend(default_root())
    if isinstance(url, Path):
        return LocalBackend(url)
    url = str(url).strip()
    if url.startswith(READONLY_PREFIX):
        return ReadOnlyBackend(
            open_backend(url[len(READONLY_PREFIX):], timeout=timeout)
        )
    if "://" not in url:
        return LocalBackend(Path(url).expanduser())
    parts = urlsplit(url)
    if parts.scheme == "file":
        return LocalBackend(Path(parts.path or "/").expanduser())
    if parts.scheme == "memory":
        if parts.netloc:
            return MemoryBackend(named_region(parts.netloc))
        return MemoryBackend()
    if parts.scheme == "http":
        return HTTPBackend(url, timeout=timeout)
    raise ValueError(
        "unsupported store URL scheme %r (known: %s)"
        % (parts.scheme, ", ".join(backend_schemes()))
    )


def _is_remote(backend):
    """True when ``backend`` (or any wrapped child) talks to the network."""
    if getattr(backend, "kind", "") == "http":
        return True
    return any(_is_remote(child)
               for child in getattr(backend, "children", ()))


def open_store_url(spec, timeout=10.0, health=None, resilience=None,
                   spool_dir=None):
    """Resolve a ``--store-url`` spec (see the module docstring).

    ``resilience`` selects the fault-handling layer: ``None`` (the
    default) builds a :class:`~repro.store.resilience
    .ResilienceController` for any multiplexed or remote spec,
    ``False`` opts out (legacy bare behaviour), and a ready-made
    controller instance is used as-is.  ``spool_dir`` overrides where
    degraded-mode writes queue (default: ``<store root>/spool``, only
    wired up when a replica is remote).
    """
    spec = str(spec).strip()
    striping = False
    if spec.startswith(STRIPE_PREFIX):
        striping = True
        spec = spec[len(STRIPE_PREFIX):]
    urls = [part.strip() for part in spec.split(",") if part.strip()]
    if not urls:
        raise ValueError("empty --store-url spec")
    backends = [open_backend(url, timeout=timeout) for url in urls]
    if striping:
        return StripingBackend(backends, health=health)
    remote = any(_is_remote(backend) for backend in backends)
    if resilience is None and len(backends) == 1 and not remote:
        # A lone local/memory backend: nothing to quarantine, nothing
        # worth spooling — same disk, same failure domain.
        return backends[0]
    if resilience is False:
        if len(backends) == 1:
            return backends[0]
        return MultiplexBackend(backends, health=health)
    if resilience is None:
        from repro.store.resilience import ResilienceController

        spool = None
        if remote:
            from repro.store.spool import WriteSpool, default_spool_dir

            spool = WriteSpool(spool_dir if spool_dir is not None
                               else default_spool_dir())
        resilience = ResilienceController(health=health, spool=spool)
    return MultiplexBackend(backends, health=health, resilience=resilience)
