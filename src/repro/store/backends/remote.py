"""HTTP remote backend: frames served by ``repro.store.api.server``.

A thin :class:`~repro.store.backends.base.Backend` over
:class:`repro.store.api.client.StoreClient`.  CRC trailers are
verified on *both* ends of both transfers: the server refuses corrupt
frames on PUT and refuses to serve corrupt frames on GET, and this
backend re-verifies every frame it receives, so a bit flipped on the
wire (or by a lying proxy) is caught exactly like a bit flipped on
disk.  Transport failures surface as ``OSError`` — the degradation
ladder and the resilient multiplexer treat a dead server like a
failing disk.
"""

from __future__ import annotations

from repro.store.api.client import StoreClient
from repro.store.backends.base import Backend
from repro.store.framing import IntegrityError, verify_frame

__all__ = ["HTTPBackend"]


class HTTPBackend(Backend):
    """Frames stored on a remote ``repro-store/1`` server."""

    kind = "http"

    def __init__(self, url, namespace="default", timeout=10.0, client=None):
        super().__init__()
        self.client = client if client is not None else StoreClient(
            url, timeout=timeout
        )
        self.namespace = namespace

    def describe(self):
        return "%s/ns/%s" % (self.client.url, self.namespace)

    def sub(self, namespace):
        # Namespaces share one connection; store I/O is parent-side
        # single-threaded, so serializing requests on it is free.
        return HTTPBackend(None, namespace=namespace, client=self.client)

    def close(self):
        self.client.close()

    def ping(self):
        """Proxy to :meth:`StoreClient.ping` (connection smoke check)."""
        return self.client.ping()

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        try:
            frame = self.client.get_frame(self.namespace, key)
            # Client-side half of the both-ends contract: re-verify the
            # trailer after the wire hop (the server refusing to serve
            # a rotted frame arrives as IntegrityError from the client).
            verify_frame(frame)
        except IntegrityError:
            self._record("errors")
            raise
        return frame

    def _put_frame(self, key, frame):
        self.client.put_frame(self.namespace, key, frame)

    def _delete(self, key):
        return self.client.delete(self.namespace, key)

    def _contains(self, key):
        return self.client.head(self.namespace, key) is not None

    def _keys(self):
        return iter(sorted(self.client.keys(self.namespace)))

    def _size(self, key):
        size = self.client.head(self.namespace, key)
        if size is None:
            raise KeyError(key)
        return size

    def stats(self):
        """Server-side stats (one roundtrip instead of N HEADs)."""
        stats = self.client.stats(self.namespace)
        return {
            "backend": self.describe(),
            "objects": int(stats.get("objects", 0)),
            "bytes": int(stats.get("bytes", 0)),
        }
