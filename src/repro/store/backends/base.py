"""The formal ``ObjectStore`` backend interface.

A *backend* stores and retrieves **frames** — integrity-trailed byte
strings produced by :func:`repro.store.framing.frame_object` — under
hex keys.  Backends never interpret payloads; verification happens at
the unframe boundary (:meth:`repro.store.objstore.ObjectStore.get`,
the resilient multiplexer, the HTTP server, the scrubber).

The base class owns the bookkeeping every implementation shares:

* **key hygiene** — keys are lowercase hex, long enough to fan out;
* **per-backend counters** — every operation lands in
  :class:`BackendCounters` *and* is mirrored into the ambient
  telemetry registry as ``backend.<kind>.<metric>`` counters, which is
  what ``repro-checksums cache stats`` and ``--metrics`` surface;
* **namespacing** — :meth:`Backend.sub` derives the per-namespace
  child stores (``objects/``, ``shards/``, ...) a
  :class:`repro.store.runner.RunStore` is built from.

Concrete methods are the public API; subclasses implement the
underscore hooks (``_get_frame`` and friends) so counting and key
validation can never be skipped by a forgetful implementation.
"""

from __future__ import annotations

from repro.telemetry.core import current as _telemetry

__all__ = [
    "Backend",
    "BackendCounters",
    "ReadOnlyError",
    "check_key",
]

_HEX_DIGITS = set("0123456789abcdef")


class ReadOnlyError(OSError):
    """A write or delete reached a read-only backend filter.

    An :class:`OSError` so the store degradation ladder treats it like
    any other failing store: retry once, then carry on without it.
    """


def check_key(key):
    """Validate and normalize a backend key (lowercase hex string)."""
    key = key.lower()
    if len(key) < 6 or set(key) - _HEX_DIGITS:
        raise ValueError("backend keys must be hex strings, got %r" % key)
    return key


class BackendCounters:
    """Mutable per-backend operation counters (hit/miss/byte accounting)."""

    __slots__ = (
        "gets", "hits", "misses", "puts", "deletes",
        "bytes_read", "bytes_written", "errors",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other):
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def __repr__(self):
        parts = ", ".join(
            "%s=%d" % (name, getattr(self, name)) for name in self.__slots__
        )
        return "BackendCounters(%s)" % parts


class Backend:
    """Abstract frame store; subclasses implement the ``_``-hooks."""

    #: Short scheme-like identifier (``local``, ``memory``, ``http``,
    #: ``multiplex``, ``striping``, ``readonly``, ``faulty``).
    kind = "abstract"

    def __init__(self):
        self.counters = BackendCounters()

    # -- identity -----------------------------------------------------------

    def describe(self):
        """Human-readable identity (path, URL, or composition)."""
        return self.kind

    @property
    def children(self):
        """Component backends (multiplexer/striping layers); else ()."""
        return ()

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.describe())

    # -- counter plumbing ---------------------------------------------------

    def _record(self, metric, amount=1):
        setattr(self.counters, metric, getattr(self.counters, metric) + amount)
        _telemetry().count("backend.%s.%s" % (self.kind, metric), amount)

    # -- frame I/O (public, counted) ---------------------------------------

    def get_frame(self, key):
        """The stored frame under ``key``; raises ``KeyError`` if absent."""
        key = check_key(key)
        self._record("gets")
        try:
            frame = self._get_frame(key)
        except KeyError:
            self._record("misses")
            raise
        except OSError:
            self._record("errors")
            raise
        self._record("hits")
        self._record("bytes_read", len(frame))
        return frame

    def put_frame(self, key, frame, overwrite=True):
        """Store ``frame`` under ``key``; False if skipped (exists)."""
        key = check_key(key)
        if not overwrite and self.contains(key):
            return False
        self._record("puts")
        self._record("bytes_written", len(frame))
        try:
            self._put_frame(key, bytes(frame))
        except OSError:
            self._record("errors")
            raise
        return True

    def delete(self, key):
        """Remove ``key``; True iff *this call* removed it."""
        key = check_key(key)
        self._record("deletes")
        try:
            return self._delete(key)
        except OSError:
            self._record("errors")
            raise

    def contains(self, key):
        """True if ``key`` is stored (no integrity implication)."""
        return self._contains(check_key(key))

    def __contains__(self, key):
        return self.contains(key)

    def keys(self):
        """Every stored key, sorted (deterministic walks)."""
        return self._keys()

    def __iter__(self):
        return iter(self.keys())

    def size(self, key):
        """Stored frame size in bytes; raises ``KeyError`` if absent."""
        return self._size(check_key(key))

    def stats(self):
        """``{"backend", "objects", "bytes"}`` for status displays."""
        objects = 0
        size = 0
        for key in sorted(self.keys()):
            objects += 1
            try:
                size += self._size(key)
            except KeyError:  # pragma: no cover - concurrent eviction
                continue
        return {"backend": self.describe(), "objects": objects, "bytes": size}

    # -- composition --------------------------------------------------------

    def sub(self, namespace):
        """A derived backend scoped to ``namespace`` (``objects``, ...)."""
        raise NotImplementedError

    def close(self):
        """Release any held resources (connections); idempotent."""

    # -- subclass hooks -----------------------------------------------------

    def _get_frame(self, key):
        raise NotImplementedError

    def _put_frame(self, key, frame):
        raise NotImplementedError

    def _delete(self, key):
        raise NotImplementedError

    def _contains(self, key):
        raise NotImplementedError

    def _keys(self):
        raise NotImplementedError

    def _size(self, key):
        raise NotImplementedError
