"""The pathsliced on-disk backend (and the atomic-write discipline).

The original ``repro.store`` layout, refactored to conform to the
:class:`~repro.store.backends.base.Backend` interface: frames live
under a two-level fan-out (``root/ab/cd/abcd...``) named by their hex
key, and every write is atomic — a temp file in the destination
directory is populated, fsynced, ``os.replace``-d into place, and the
parent directory entry fsynced, so readers observe old bytes or new
bytes, never a mixture, across power loss (reprolint REP401 checks
the ordering statically).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.store.backends.base import Backend, check_key

__all__ = ["LocalBackend", "atomic_write"]


def _fsync_dir(path):
    """Best-effort fsync of a directory (making renames durable).

    Platforms without ``O_DIRECTORY`` (or filesystems refusing
    directory fsync) degrade silently — the write is still atomic,
    just not guaranteed durable across power loss.
    """
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX platforms
        return
    try:
        fd = os.open(path, os.O_RDONLY | flags)
    except OSError:  # pragma: no cover - directory vanished / no perms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses directory fsync
        pass
    finally:
        os.close(fd)


def atomic_write(path, blob):
    """The store's atomic-write discipline, reusable outside the store.

    A temp file in the destination directory is populated, flushed,
    and fsynced, then ``os.replace``-d into place, and the parent
    directory entry is fsynced so a power cut can neither resurrect a
    half-written file nor forget a fully-written one ever had a name.
    Readers therefore observe the old bytes or the new bytes, never a
    mixture.  The sweep checkpoint journal routes every write through
    this helper (enforced statically by reprolint REP402).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Crash durability: the rename itself lives in the directory
    # entry, so fsync the parent too — otherwise a power cut can
    # forget a fully-fsynced object ever had a name.
    _fsync_dir(path.parent)


def _is_object_name(name):
    """True for fan-out object filenames (hex, no temp suffix)."""
    hex_digits = set("0123456789abcdef")
    return len(name) >= 6 and not name.endswith(".tmp") and set(name) <= hex_digits


class LocalBackend(Backend):
    """Sharded, atomic-write, fsync-disciplined directory of frames."""

    kind = "local"

    def __init__(self, root):
        super().__init__()
        self.root = Path(root)

    def describe(self):
        return str(self.root)

    def path_for(self, key):
        """On-disk path of ``key`` (two-level fan-out)."""
        key = check_key(key)
        return self.root / key[:2] / key[2:4] / key

    def sub(self, namespace):
        return LocalBackend(self.root / namespace)

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def _put_frame(self, key, frame):
        atomic_write(self.path_for(key), frame)

    def _delete(self, key):
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            # Idempotent under concurrent eviction: the loser of the
            # race (including a fan-out directory removed underneath
            # it) observes the object already gone.
            return False
        return True

    def _contains(self, key):
        return self.path_for(key).exists()

    def _keys(self):
        if not self.root.is_dir():
            return
        for first in sorted(self.root.iterdir()):
            if not first.is_dir() or len(first.name) != 2:
                continue
            for second in sorted(first.iterdir()):
                if not second.is_dir():
                    continue
                for path in sorted(second.iterdir()):
                    if path.is_file() and _is_object_name(path.name):
                        yield path.name

    def _size(self, key):
        try:
            return self.path_for(key).stat().st_size
        except FileNotFoundError:
            raise KeyError(key) from None
