"""Multiplexer and filter backends: replicas, striping, read-only.

Mirrors the swh-objstorage multiplexer design with the paper's own
twist — the integrity trailer *is* the replica-selection signal:

* :class:`MultiplexBackend` — N replicas; writes go through to all of
  them, reads come from the first replica that serves a frame whose
  CRC trailer verifies.  A replica that errors (dead server, failing
  disk) or serves a corrupt frame is skipped with **one warning per
  replica** into the attached :class:`~repro.core.supervisor.RunHealth`
  — the sweep degrades to the healthy replicas and its results stay
  bit-identical;
* :class:`StripingBackend` — N children, each key owned by exactly one
  (hash striping), so a big artifact tree can spread over several
  roots while walks still see the union;
* :class:`ReadOnlyBackend` — a filter refusing writes and deletes with
  :class:`~repro.store.backends.base.ReadOnlyError` (an ``OSError``,
  so resilient layers and the store guard degrade instead of dying).
"""

from __future__ import annotations

import warnings

from repro.store.backends.base import Backend, ReadOnlyError
from repro.store.framing import IntegrityError, verify_frame

__all__ = ["MultiplexBackend", "ReadOnlyBackend", "StripingBackend"]


class _Composite(Backend):
    """Shared plumbing for backends built out of child backends."""

    def __init__(self, backends, health=None):
        super().__init__()
        if not backends:
            raise ValueError("%s needs at least one child backend"
                             % type(self).__name__)
        self._children = list(backends)
        self.health = health
        self._warned = set()

    @property
    def children(self):
        return tuple(self._children)

    def attach_health(self, health):
        """Route degradation warnings into a run's health record."""
        self.health = health
        for child in self._children:
            if hasattr(child, "attach_health"):
                child.attach_health(health)

    def _warn(self, child, op, exc):
        """One warning per failing replica, into RunHealth and stderr."""
        self._record("errors")
        label = child.describe()
        note = "replica %s failing (%s during %s)" % (
            label, type(exc).__name__, op,
        )
        if label in self._warned:
            return
        self._warned.add(label)
        if self.health is not None:
            self.health.degrade(note)
        warnings.warn(
            "store multiplexer: %s; continuing on the remaining "
            "replica(s) — results are unaffected" % note,
            RuntimeWarning,
            stacklevel=4,
        )

    def close(self):
        for child in self._children:
            child.close()


class MultiplexBackend(_Composite):
    """Resilient N-replica multiplexer (read any verified, write all)."""

    kind = "multiplex"

    def describe(self):
        return "multiplex(%s)" % ", ".join(
            child.describe() for child in self._children
        )

    def sub(self, namespace):
        derived = MultiplexBackend(
            [child.sub(namespace) for child in self._children],
            health=self.health,
        )
        return derived

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        last_error = None
        missing = 0
        for child in self._children:
            try:
                frame = child.get_frame(key)
                verify_frame(frame)  # skip replicas serving rotten bytes
                return frame
            except KeyError:
                missing += 1
            except (OSError, IntegrityError) as exc:
                self._warn(child, "get", exc)
                last_error = exc
        if missing or last_error is None:
            # At least one replica affirmed absence (or there was
            # nothing to ask): a miss, so the caller recomputes.
            raise KeyError(key)
        raise last_error  # every replica errored: the store is down

    def _put_frame(self, key, frame):
        stored = 0
        last_error = None
        for child in self._children:
            try:
                child.put_frame(key, frame)
                stored += 1
            except OSError as exc:
                self._warn(child, "put", exc)
                last_error = exc
        if not stored and last_error is not None:
            raise last_error

    def _delete(self, key):
        deleted = False
        for child in self._children:
            try:
                deleted = child.delete(key) or deleted
            except OSError as exc:
                self._warn(child, "delete", exc)
        return deleted

    def _contains(self, key):
        for child in self._children:
            try:
                if child.contains(key):
                    return True
            except OSError as exc:
                self._warn(child, "contains", exc)
        return False

    def _keys(self):
        union = set()
        for child in self._children:
            try:
                union.update(child.keys())
            except OSError as exc:
                self._warn(child, "keys", exc)
        return iter(sorted(union))

    def _size(self, key):
        for child in self._children:
            try:
                return child.size(key)
            except KeyError:
                continue
            except OSError as exc:
                self._warn(child, "size", exc)
        raise KeyError(key)


class StripingBackend(_Composite):
    """Each key lives on exactly one child (deterministic hash stripe)."""

    kind = "striping"

    def describe(self):
        return "stripe(%s)" % ", ".join(
            child.describe() for child in self._children
        )

    def sub(self, namespace):
        return StripingBackend(
            [child.sub(namespace) for child in self._children],
            health=self.health,
        )

    def _owner(self, key):
        # Keys are hex, uniformly distributed (digests), so a prefix
        # slice stripes evenly and deterministically.
        return self._children[int(key[:8], 16) % len(self._children)]

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        return self._owner(key).get_frame(key)

    def _put_frame(self, key, frame):
        self._owner(key).put_frame(key, frame)

    def _delete(self, key):
        return self._owner(key).delete(key)

    def _contains(self, key):
        return self._owner(key).contains(key)

    def _keys(self):
        union = set()
        for child in self._children:
            union.update(child.keys())
        return iter(sorted(union))

    def _size(self, key):
        return self._owner(key).size(key)


class ReadOnlyBackend(Backend):
    """Filter: reads delegate, writes and deletes are refused."""

    kind = "readonly"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    @property
    def children(self):
        return (self.inner,)

    def attach_health(self, health):
        if hasattr(self.inner, "attach_health"):
            self.inner.attach_health(health)

    def describe(self):
        return "readonly(%s)" % self.inner.describe()

    def sub(self, namespace):
        return ReadOnlyBackend(self.inner.sub(namespace))

    def close(self):
        self.inner.close()

    # Writes are refused before any counting happens.
    def put_frame(self, key, frame, overwrite=True):
        raise ReadOnlyError(
            "backend %s is read-only (refusing put of %s)"
            % (self.describe(), key)
        )

    def delete(self, key):
        raise ReadOnlyError(
            "backend %s is read-only (refusing delete of %s)"
            % (self.describe(), key)
        )

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        return self.inner.get_frame(key)

    def _contains(self, key):
        return self.inner.contains(key)

    def _keys(self):
        return iter(self.inner.keys())

    def _size(self, key):
        return self.inner.size(key)
