"""Multiplexer and filter backends: replicas, striping, read-only.

Mirrors the swh-objstorage multiplexer design with the paper's own
twist — the integrity trailer *is* the replica-selection signal:

* :class:`MultiplexBackend` — N replicas; writes go through to all of
  them, reads come from the first replica that serves a frame whose
  CRC trailer verifies.  A replica that errors (dead server, failing
  disk) or serves a corrupt frame is skipped with **one warning per
  replica** into the attached :class:`~repro.core.supervisor.RunHealth`
  — the sweep degrades to the healthy replicas and its results stay
  bit-identical;
* :class:`StripingBackend` — N children, each key owned by exactly one
  (hash striping), so a big artifact tree can spread over several
  roots while walks still see the union;
* :class:`ReadOnlyBackend` — a filter refusing writes and deletes with
  :class:`~repro.store.backends.base.ReadOnlyError` (an ``OSError``,
  so resilient layers and the store guard degrade instead of dying).

With a :class:`~repro.store.resilience.ResilienceController` attached
(the default for every multiplexer ``open_store_url`` builds), the
multiplexer stops merely *tolerating* bad replicas and starts
*managing* them: a per-replica circuit breaker quarantines a replica
after a threshold of consecutive failures (no more re-probing a dead
server on every read), ticks through an operation-counted cool-down,
probes it half-open, and reintegrates it on a verified probe; reads
that exceed the deterministic slow-read threshold are **hedged** to
the next healthy replica (first trailer-verifying response wins); and
when *every* replica is open-circuit, PUTs land in the local
:class:`~repro.store.spool.WriteSpool` for later idempotent replay
instead of demoting the sweep to store-less.
"""

from __future__ import annotations

import warnings

from repro.store.backends.base import Backend, ReadOnlyError
from repro.store.framing import IntegrityError, verify_frame
from repro.telemetry.core import current as _telemetry

__all__ = ["MultiplexBackend", "ReadOnlyBackend", "StripingBackend"]


class _Composite(Backend):
    """Shared plumbing for backends built out of child backends."""

    def __init__(self, backends, health=None):
        super().__init__()
        if not backends:
            raise ValueError("%s needs at least one child backend"
                             % type(self).__name__)
        self._children = list(backends)
        self.health = health
        self._warned = set()

    @property
    def children(self):
        return tuple(self._children)

    def attach_health(self, health):
        """Route degradation warnings into a run's health record."""
        self.health = health
        for child in self._children:
            if hasattr(child, "attach_health"):
                child.attach_health(health)

    def _warn(self, child, op, exc):
        """One warning per failing replica, into RunHealth and stderr."""
        self._record("errors")
        label = child.describe()
        note = "replica %s failing (%s during %s)" % (
            label, type(exc).__name__, op,
        )
        if label in self._warned:
            return
        self._warned.add(label)
        if self.health is not None:
            self.health.degrade(note)
        warnings.warn(
            "store multiplexer: %s; continuing on the remaining "
            "replica(s) — results are unaffected" % note,
            RuntimeWarning,
            stacklevel=4,
        )

    def close(self):
        for child in self._children:
            child.close()


class MultiplexBackend(_Composite):
    """Resilient N-replica multiplexer (read any verified, write all).

    ``resilience`` is an optional
    :class:`~repro.store.resilience.ResilienceController`; without one
    the multiplexer behaves exactly as it did before the breaker layer
    existed (every replica probed on every operation).  ``namespace``
    labels the spool partition this instance writes to.
    """

    kind = "multiplex"

    def __init__(self, backends, health=None, resilience=None,
                 namespace="default"):
        super().__init__(backends, health=health)
        self.resilience = resilience
        self.namespace = namespace

    def describe(self):
        return "multiplex(%s)" % ", ".join(
            child.describe() for child in self._children
        )

    def sub(self, namespace):
        derived = MultiplexBackend(
            [child.sub(namespace) for child in self._children],
            health=self.health,
            resilience=self.resilience,  # breakers shared across namespaces
            namespace=namespace,
        )
        return derived

    def attach_health(self, health):
        super().attach_health(health)
        if self.resilience is not None:
            self.resilience.attach_health(health)

    # -- resilience plumbing -------------------------------------------------

    def resilience_stats(self):
        """Breaker/spool state for ``cache stats`` and ``store scrub``."""
        if self.resilience is None:
            return None
        return self.resilience.stats()

    def drain_spool(self):
        """Replay spooled writes into the replicas; None without a spool."""
        if self.resilience is None or self.resilience.spool is None:
            return None
        from repro.store.spool import drain_spool

        return drain_spool(self, self.resilience.spool, health=self.health)

    def _note_spooled(self, exc):
        """First spooled write: one degradation note, one warning."""
        _telemetry().count("resilience.spool.engaged")
        controller = self.resilience
        if getattr(controller, "_spool_noted", False):
            return
        controller._spool_noted = True
        note = (
            "store outage: every replica unavailable (%s); writes are "
            "spooling locally to %s for later replay"
            % (type(exc).__name__ if exc is not None else "open circuits",
               controller.spool.describe())
        )
        if self.health is not None:
            self.health.degrade(note)
        warnings.warn(
            "store multiplexer: %s — results are unaffected" % note,
            RuntimeWarning,
            stacklevel=5,
        )

    def _read_one(self, child, breaker, key, threshold=None):
        """``(frame, elapsed)`` from one replica, breaker-accounted.

        A read slower than ``threshold`` is recorded as *slow* — not a
        success — so consecutive latency spikes accumulate toward the
        breaker's failure threshold exactly like hard errors do.
        """
        clock = self.resilience.clock
        started = clock.now()
        try:
            frame = child.get_frame(key)
            verify_frame(frame)  # skip replicas serving rotten bytes
        except KeyError:
            breaker.record_success()  # an authoritative answer
            raise
        except (OSError, IntegrityError) as exc:
            self._warn(child, "get", exc)
            breaker.record_failure(reason=type(exc).__name__)
            raise
        elapsed = clock.now() - started
        if threshold is not None and elapsed > threshold:
            breaker.record_slow()
        else:
            breaker.record_success()
        return frame, elapsed

    def _hedge(self, position, key):
        """The first verifying frame from a replica past ``position``."""
        telemetry = _telemetry()
        telemetry.count("resilience.hedge.fired")
        # Each iteration asks a *different* replica once — fan-out, not
        # a retry of one operation.  reprolint: disable=REP404
        for index in range(position + 1, len(self._children)):
            child = self._children[index]
            breaker = self.resilience.breaker_for(child, index)
            if not breaker.allow():
                continue
            try:
                frame, _ = self._read_one(child, breaker, key)
            except (KeyError, OSError, IntegrityError):
                continue
            telemetry.count("resilience.hedge.wins")
            return frame
        telemetry.count("resilience.hedge.losses")
        return None

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        if self.resilience is None:
            return self._get_frame_legacy(key)
        controller = self.resilience
        controller.tick()
        last_error = None
        missing = 0
        attempted = 0
        for position, child in enumerate(self._children):
            breaker = controller.breaker_for(child, position)
            if not breaker.allow():
                continue  # quarantined: no re-probing a dead replica
            attempted += 1
            threshold = controller.hedge_threshold
            try:
                frame, elapsed = self._read_one(child, breaker, key,
                                                threshold)
            except KeyError:
                missing += 1
                continue
            except (OSError, IntegrityError) as exc:
                last_error = exc
                continue
            if threshold is not None and elapsed > threshold:
                # Late bytes (already counted against the replica):
                # race the next healthy one for a faster copy.
                hedged = self._hedge(position, key)
                if hedged is not None:
                    return hedged
            return frame
        if controller.spool is not None:
            try:
                return controller.spool.get(self.namespace, key)
            except (KeyError, IntegrityError):
                pass
        if missing or last_error is None:
            # An affirmed absence — or every replica quarantined with
            # nothing spooled: either way a miss, so the caller
            # recomputes (correct, and faster than a dead socket).
            if not attempted:
                _telemetry().count("resilience.mux.lockout")
            raise KeyError(key)
        raise last_error  # every reachable replica errored

    def _get_frame_legacy(self, key):
        last_error = None
        missing = 0
        for child in self._children:
            try:
                frame = child.get_frame(key)
                verify_frame(frame)  # skip replicas serving rotten bytes
                return frame
            except KeyError:
                missing += 1
            except (OSError, IntegrityError) as exc:
                self._warn(child, "get", exc)
                last_error = exc
        if missing or last_error is None:
            # At least one replica affirmed absence (or there was
            # nothing to ask): a miss, so the caller recomputes.
            raise KeyError(key)
        raise last_error  # every replica errored: the store is down

    def _put_frame(self, key, frame):
        controller = self.resilience
        if controller is not None:
            controller.tick()
        stored = 0
        last_error = None
        for position, child in enumerate(self._children):
            if controller is not None:
                breaker = controller.breaker_for(child, position)
                if not breaker.allow():
                    _telemetry().count("resilience.put.quarantined")
                    continue
            try:
                child.put_frame(key, frame)
                stored += 1
            except OSError as exc:
                self._warn(child, "put", exc)
                if controller is not None:
                    breaker.record_failure(reason=type(exc).__name__)
                last_error = exc
            else:
                if controller is not None:
                    breaker.record_success()
        if stored:
            if controller is not None and controller.spool is not None:
                # A direct write supersedes any spooled predecessor of
                # the same key: manifests are mutable under a stable
                # key, and replaying a stale spooled copy at drain
                # time would roll this fresh write back.
                controller.spool.discard(self.namespace, key)
            return
        if controller is not None and controller.spool is not None:
            # Degraded mode: the write lands locally, trailer and all,
            # and is replayed idempotently once a replica heals.
            controller.spool.put(self.namespace, key, frame)
            self._note_spooled(last_error)
            return
        if last_error is not None:
            raise last_error
        if controller is not None and self._children:
            raise OSError(
                "every replica of %s is open-circuit and no spool is "
                "configured" % self.describe()
            )

    def _delete(self, key):
        deleted = False
        for position, child in enumerate(self._children):
            if not self._admits(child, position):
                continue
            try:
                deleted = child.delete(key) or deleted
            except OSError as exc:
                self._warn(child, "delete", exc)
        return deleted

    def _contains(self, key):
        for position, child in enumerate(self._children):
            if not self._admits(child, position):
                continue
            try:
                if child.contains(key):
                    return True
            except OSError as exc:
                self._warn(child, "contains", exc)
        if self.resilience is not None and self.resilience.spool is not None:
            try:
                self.resilience.spool.get(self.namespace, key)
            except (KeyError, IntegrityError):
                return False
            return True
        return False

    def _admits(self, child, index):
        """Quarantine filter for the non-read/write operations.

        Peeks at the breaker *state* without consuming a half-open
        probe slot — probes are spent on reads and writes, where an
        outcome meaningfully exercises the replica.
        """
        if self.resilience is None:
            return True
        breaker = self.resilience.breaker_for(child, index)
        return breaker.state != "open"

    def _keys(self):
        union = set()
        for position, child in enumerate(self._children):
            if not self._admits(child, position):
                continue
            try:
                union.update(child.keys())
            except OSError as exc:
                self._warn(child, "keys", exc)
        return iter(sorted(union))

    def _size(self, key):
        for position, child in enumerate(self._children):
            if not self._admits(child, position):
                continue
            try:
                return child.size(key)
            except KeyError:
                continue
            except OSError as exc:
                self._warn(child, "size", exc)
        raise KeyError(key)


class StripingBackend(_Composite):
    """Each key lives on exactly one child (deterministic hash stripe)."""

    kind = "striping"

    def describe(self):
        return "stripe(%s)" % ", ".join(
            child.describe() for child in self._children
        )

    def sub(self, namespace):
        return StripingBackend(
            [child.sub(namespace) for child in self._children],
            health=self.health,
        )

    def _owner(self, key):
        # Keys are hex, uniformly distributed (digests), so a prefix
        # slice stripes evenly and deterministically.
        return self._children[int(key[:8], 16) % len(self._children)]

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        return self._owner(key).get_frame(key)

    def _put_frame(self, key, frame):
        self._owner(key).put_frame(key, frame)

    def _delete(self, key):
        return self._owner(key).delete(key)

    def _contains(self, key):
        return self._owner(key).contains(key)

    def _keys(self):
        union = set()
        for child in self._children:
            union.update(child.keys())
        return iter(sorted(union))

    def _size(self, key):
        return self._owner(key).size(key)


class ReadOnlyBackend(Backend):
    """Filter: reads delegate, writes and deletes are refused."""

    kind = "readonly"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    @property
    def children(self):
        return (self.inner,)

    def attach_health(self, health):
        if hasattr(self.inner, "attach_health"):
            self.inner.attach_health(health)

    def describe(self):
        return "readonly(%s)" % self.inner.describe()

    def sub(self, namespace):
        return ReadOnlyBackend(self.inner.sub(namespace))

    def close(self):
        self.inner.close()

    # Writes are refused before any counting happens.
    def put_frame(self, key, frame, overwrite=True):
        raise ReadOnlyError(
            "backend %s is read-only (refusing put of %s)"
            % (self.describe(), key)
        )

    def delete(self, key):
        raise ReadOnlyError(
            "backend %s is read-only (refusing delete of %s)"
            % (self.describe(), key)
        )

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        return self.inner.get_frame(key)

    def _contains(self, key):
        return self.inner.contains(key)

    def _keys(self):
        return iter(self.inner.keys())

    def _size(self, key):
        return self.inner.size(key)
