"""In-memory backend: dict-of-frames, for tests and scratch runs.

``memory://`` URLs resolve here.  A *named* region
(``memory://shared``) maps to a process-wide registry, so two
``open_backend`` calls with the same name share storage — the cheap
way to build multi-replica multiplexers and scrub fixtures without
touching the filesystem.  ``memory://`` with no name is always a
fresh, private region.
"""

from __future__ import annotations

from repro.store.backends.base import Backend

__all__ = ["MemoryBackend", "named_region", "reset_regions"]


class _Region:
    """Shared storage: ``namespace -> {key -> frame}``."""

    def __init__(self, name=""):
        self.name = name
        self.spaces = {}

    def space(self, namespace):
        return self.spaces.setdefault(namespace, {})


#: Process-wide named regions (``memory://<name>``).
_REGIONS = {}


def named_region(name):
    """The process-wide region ``name`` (created on first use)."""
    region = _REGIONS.get(name)
    if region is None:
        region = _REGIONS[name] = _Region(name)
    return region


def reset_regions():
    """Drop every named region (test isolation)."""
    _REGIONS.clear()


class MemoryBackend(Backend):
    """Frames in a dict; namespaces share one region."""

    kind = "memory"

    def __init__(self, region=None, namespace="default"):
        super().__init__()
        self._region = region if region is not None else _Region()
        self.namespace = namespace
        self._frames = self._region.space(namespace)

    def describe(self):
        label = self._region.name or "<anonymous>"
        return "memory://%s/%s" % (label, self.namespace)

    def sub(self, namespace):
        return MemoryBackend(self._region, namespace)

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        return self._frames[key]

    def _put_frame(self, key, frame):
        self._frames[key] = frame

    def _delete(self, key):
        return self._frames.pop(key, None) is not None

    def _contains(self, key):
        return key in self._frames

    def _keys(self):
        return iter(sorted(self._frames))

    def _size(self, key):
        return len(self._frames[key])
