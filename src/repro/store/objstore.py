"""Content-addressed object store with self-checking objects.

Every stored object carries an **integrity trailer** computed with one
of the check codes the paper studies (CRC-32/AAL5 by default, any
:mod:`repro.checksums.registry` algorithm by name).  The store thereby
dogfoods its own subject matter: a flipped bit in a cached artifact is
caught the same way a corrupted AAL5 frame would be.

Since the backend split, :class:`ObjectStore` is the *framing* layer:
it turns payloads into integrity-trailed frames (and back, verifying)
and delegates frame storage to a
:class:`~repro.store.backends.base.Backend` — the pathsliced local
directory by default (``root/ab/cd/abcd...``, atomic fsync-disciplined
writes, exactly the original on-disk layout), or any backend from
:func:`repro.store.backends.open_backend`: in-memory, HTTP remote, a
resilient multiplexer over replicas, a striped fan-out.

Addresses are either the SHA-256 of the payload (:meth:`ObjectStore.put`
— true content addressing) or a caller-chosen hex key
(:meth:`ObjectStore.put_keyed` — used by the result cache, whose keys
are digests of experiment *parameters* rather than of the payload).

The frame format and the atomic-write discipline now live in
:mod:`repro.store.framing` and :mod:`repro.store.backends.local`;
their names are re-exported here for backwards compatibility.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

from repro.checksums.registry import get_algorithm
from repro.store.backends.local import (  # noqa: F401 - re-exports
    LocalBackend,
    _fsync_dir,
    _is_object_name,
    atomic_write,
)
from repro.store.framing import (  # noqa: F401 - re-exports
    DEFAULT_ALGORITHM,
    FRAME_MAGIC,
    IntegrityError,
    frame_object,
    unframe_object,
    verify_frame,
)
from repro.telemetry.core import current as _telemetry

__all__ = [
    "DEFAULT_ALGORITHM",
    "IntegrityError",
    "ObjectStore",
    "atomic_write",
    "default_root",
]

#: Environment variable overriding the default store root.
ROOT_ENV_VAR = "REPRO_CHECKSUMS_CACHE"

_MAGIC = FRAME_MAGIC


def default_root():
    """The store root: ``$REPRO_CHECKSUMS_CACHE`` or ``~/.cache/repro-checksums``."""
    env = os.environ.get(ROOT_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-checksums"


class ObjectStore:
    """Integrity-trailed payload storage over a pluggable frame backend."""

    def __init__(self, root=None, algorithm=DEFAULT_ALGORITHM, backend=None):
        if backend is None:
            backend = LocalBackend(
                Path(root) if root is not None else default_root()
            )
        self.backend = backend
        #: Filesystem root when the backend has one (local), else None.
        self.root = getattr(backend, "root", None)
        self.algorithm = algorithm
        get_algorithm(algorithm)  # fail fast on unknown names

    # -- addressing -------------------------------------------------------

    @staticmethod
    def address(payload):
        """The content address (SHA-256 hex) of ``payload``."""
        return hashlib.sha256(payload).hexdigest()

    def path_for(self, digest):
        """On-disk path of ``digest`` (local-backed stores only)."""
        path_for = getattr(self.backend, "path_for", None)
        if path_for is None:
            raise TypeError(
                "backend %s has no filesystem paths" % self.backend.describe()
            )
        return path_for(digest)

    # -- write ------------------------------------------------------------

    def put(self, payload):
        """Store ``payload`` content-addressed; return its digest."""
        digest = self.address(payload)
        self.put_keyed(digest, payload, overwrite=False)
        return digest

    def put_keyed(self, key, payload, overwrite=True):
        """Store ``payload`` under the caller-chosen hex ``key``.

        Keyed entries (cache results, manifests) are overwritten by
        default; content-addressed :meth:`put` skips the write when the
        object already exists (identical payload by construction).
        """
        telemetry = _telemetry()
        t0 = time.perf_counter()
        if not overwrite and self.backend.contains(key):
            return key
        self.backend.put_frame(
            key, frame_object(bytes(payload), self.algorithm)
        )
        telemetry.count("store.puts")
        telemetry.meter("store.put_bytes", len(payload))
        telemetry.observe("store.put_seconds", time.perf_counter() - t0)
        return key

    #: Kept as a method for wrappers (the fault injector tears writes
    #: through it); the discipline itself is :func:`atomic_write`.
    _atomic_write = staticmethod(atomic_write)

    # -- read -------------------------------------------------------------

    def get(self, digest, verify=True):
        """Return the payload stored at ``digest``.

        Raises :class:`KeyError` if absent and :class:`IntegrityError`
        if the integrity trailer does not verify.
        """
        telemetry = _telemetry()
        t0 = time.perf_counter()
        blob = self.backend.get_frame(digest)
        payload, _ = unframe_object(blob, verify=verify)
        telemetry.count("store.gets")
        telemetry.meter("store.get_bytes", len(payload))
        telemetry.observe("store.get_seconds", time.perf_counter() - t0)
        return payload

    def get_frame(self, digest):
        """The raw stored frame (trailer included); ``KeyError`` if absent.

        For integrity tooling (audit, scrub) that needs the trailer
        bytes themselves; payload readers use :meth:`get`.
        """
        return self.backend.get_frame(digest)

    def __contains__(self, digest):
        return self.backend.contains(digest)

    def __iter__(self):
        return self.digests()

    def digests(self):
        """Iterate over every stored address (sorted for determinism)."""
        return iter(self.backend.keys())

    def __len__(self):
        return sum(1 for _ in self.digests())

    # -- maintenance ------------------------------------------------------

    def delete(self, digest):
        """Remove ``digest``; True if *this call* removed it.

        Idempotent under concurrent eviction: when two processes race
        to evict the same corrupt shard, the loser observes the object
        already gone and reports False instead of raising.
        """
        return self.backend.delete(digest)

    def clear(self):
        """Delete every object (leaves any directory tree in place)."""
        removed = 0
        for digest in list(self.digests()):
            removed += bool(self.delete(digest))
        return removed

    def total_bytes(self):
        """Total stored bytes of frames."""
        total = 0
        for digest in self.digests():
            try:
                total += self.backend.size(digest)
            except KeyError:  # pragma: no cover - concurrent eviction
                continue
        return total

    def stats(self):
        """Object count and byte totals for status displays."""
        stats = self.backend.stats()
        return {
            "root": stats.get("backend", self.backend.describe()),
            "objects": stats.get("objects", 0),
            "bytes": stats.get("bytes", 0),
        }

    def counters(self):
        """Per-backend operation counters (hit/miss/byte accounting)."""
        return self.backend.counters.as_dict()
