"""Content-addressed on-disk object store with self-checking objects.

Every stored object carries an **integrity trailer** computed with one
of the check codes the paper studies (CRC-32/AAL5 by default, any
:mod:`repro.checksums.registry` algorithm by name).  The store thereby
dogfoods its own subject matter: a flipped bit in a cached artifact is
caught the same way a corrupted AAL5 frame would be.

Layout (mirroring the content-addressed pattern of object storages
like Software Heritage's):

* objects live under a two-level fan-out, ``root/ab/cd/abcd...``,
  named by the 64-hex-digit address;
* writes are atomic: a temp file in the same directory tree is
  populated, fsynced, then ``os.replace``-d into place — readers never
  observe a half-written object;
* the on-disk frame is ``payload || value || name || name_len(1) ||
  value_len(1) || magic(4)`` so the trailer parses backwards from the
  end of the file without a header seek.

Addresses are either the SHA-256 of the payload (:meth:`ObjectStore.put`
— true content addressing) or a caller-chosen hex key
(:meth:`ObjectStore.put_keyed` — used by the result cache, whose keys
are digests of experiment *parameters* rather than of the payload).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path

from repro.checksums.registry import get_algorithm
from repro.telemetry.core import current as _telemetry

__all__ = [
    "DEFAULT_ALGORITHM",
    "IntegrityError",
    "ObjectStore",
    "atomic_write",
    "default_root",
]

#: Environment variable overriding the default store root.
ROOT_ENV_VAR = "REPRO_CHECKSUMS_CACHE"

#: The integrity-trailer algorithm used unless the caller picks another.
DEFAULT_ALGORITHM = "crc32-aal5"

_MAGIC = b"RCS1"
_HEX_DIGITS = set("0123456789abcdef")


class IntegrityError(Exception):
    """A stored object failed its integrity trailer (or is malformed)."""


def default_root():
    """The store root: ``$REPRO_CHECKSUMS_CACHE`` or ``~/.cache/repro-checksums``."""
    env = os.environ.get(ROOT_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-checksums"


def _fsync_dir(path):
    """Best-effort fsync of a directory (making renames durable).

    Platforms without ``O_DIRECTORY`` (or filesystems refusing
    directory fsync) degrade silently — the write is still atomic,
    just not guaranteed durable across power loss.
    """
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX platforms
        return
    try:
        fd = os.open(path, os.O_RDONLY | flags)
    except OSError:  # pragma: no cover - directory vanished / no perms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses directory fsync
        pass
    finally:
        os.close(fd)


def _is_object_name(name):
    """True for fan-out object filenames (hex, no temp suffix)."""
    return len(name) >= 6 and not name.endswith(".tmp") and set(name) <= _HEX_DIGITS


def atomic_write(path, blob):
    """The store's atomic-write discipline, reusable outside the store.

    A temp file in the destination directory is populated, flushed,
    and fsynced, then ``os.replace``-d into place, and the parent
    directory entry is fsynced so a power cut can neither resurrect a
    half-written file nor forget a fully-written one ever had a name.
    Readers therefore observe the old bytes or the new bytes, never a
    mixture.  The sweep checkpoint journal routes every write through
    this helper (enforced statically by reprolint REP402).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Crash durability: the rename itself lives in the directory
    # entry, so fsync the parent too — otherwise a power cut can
    # forget a fully-fsynced object ever had a name.
    _fsync_dir(path.parent)


def frame_object(payload, algorithm_name=DEFAULT_ALGORITHM):
    """Append the integrity trailer to ``payload``."""
    algorithm = get_algorithm(algorithm_name)
    width = (algorithm.width + 7) // 8
    value = algorithm.compute(payload).to_bytes(width, "big")
    name = algorithm_name.encode("ascii")
    if not 1 <= len(name) <= 255 or not 1 <= width <= 255:
        raise ValueError("trailer fields out of range for %r" % algorithm_name)
    return b"".join(
        [payload, value, name, bytes([len(name)]), bytes([width]), _MAGIC]
    )


def unframe_object(blob, verify=True):
    """Split a stored frame into ``(payload, algorithm_name)``.

    Raises :class:`IntegrityError` if the frame is malformed or (with
    ``verify``) the recomputed check value disagrees with the trailer.
    """
    if len(blob) < len(_MAGIC) + 2 or blob[-4:] != _MAGIC:
        raise IntegrityError("missing or damaged trailer magic")
    value_len = blob[-5]
    name_len = blob[-6]
    end = len(blob) - 6
    if name_len < 1 or value_len < 1 or end < name_len + value_len:
        raise IntegrityError("trailer lengths out of range")
    name_bytes = blob[end - name_len : end]
    value = blob[end - name_len - value_len : end - name_len]
    payload = blob[: end - name_len - value_len]
    try:
        algorithm_name = name_bytes.decode("ascii")
        algorithm = get_algorithm(algorithm_name)
    except (UnicodeDecodeError, KeyError) as exc:
        raise IntegrityError("unreadable trailer algorithm: %s" % exc) from exc
    if verify:
        width = (algorithm.width + 7) // 8
        if width != value_len:
            raise IntegrityError(
                "trailer width %d != %d for %s" % (value_len, width, algorithm_name)
            )
        expected = algorithm.compute(payload).to_bytes(width, "big")
        if expected != value:
            raise IntegrityError(
                "integrity trailer mismatch (%s): stored %s, computed %s"
                % (algorithm_name, value.hex(), expected.hex())
            )
    return payload, algorithm_name


class ObjectStore:
    """A sharded, integrity-trailed, atomic-write object store."""

    def __init__(self, root=None, algorithm=DEFAULT_ALGORITHM):
        self.root = Path(root) if root is not None else default_root()
        self.algorithm = algorithm
        get_algorithm(algorithm)  # fail fast on unknown names

    # -- addressing -------------------------------------------------------

    @staticmethod
    def address(payload):
        """The content address (SHA-256 hex) of ``payload``."""
        return hashlib.sha256(payload).hexdigest()

    def path_for(self, digest):
        """On-disk path of ``digest`` (two-level fan-out)."""
        digest = digest.lower()
        if len(digest) < 6 or set(digest) - _HEX_DIGITS:
            raise ValueError("addresses must be hex strings, got %r" % digest)
        return self.root / digest[:2] / digest[2:4] / digest

    # -- write ------------------------------------------------------------

    def put(self, payload):
        """Store ``payload`` content-addressed; return its digest."""
        digest = self.address(payload)
        self.put_keyed(digest, payload, overwrite=False)
        return digest

    def put_keyed(self, key, payload, overwrite=True):
        """Store ``payload`` under the caller-chosen hex ``key``.

        Keyed entries (cache results, manifests) are overwritten by
        default; content-addressed :meth:`put` skips the write when the
        object already exists (identical payload by construction).
        """
        telemetry = _telemetry()
        t0 = time.perf_counter()
        path = self.path_for(key)
        if not overwrite and path.exists():
            return key
        self._atomic_write(path, frame_object(bytes(payload), self.algorithm))
        telemetry.count("store.puts")
        telemetry.meter("store.put_bytes", len(payload))
        telemetry.observe("store.put_seconds", time.perf_counter() - t0)
        return key

    #: Kept as a method for wrappers (the fault injector tears writes
    #: through it); the discipline itself is :func:`atomic_write`.
    _atomic_write = staticmethod(atomic_write)

    # -- read -------------------------------------------------------------

    def get(self, digest, verify=True):
        """Return the payload stored at ``digest``.

        Raises :class:`KeyError` if absent and :class:`IntegrityError`
        if the integrity trailer does not verify.
        """
        telemetry = _telemetry()
        t0 = time.perf_counter()
        path = self.path_for(digest)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None
        payload, _ = unframe_object(blob, verify=verify)
        telemetry.count("store.gets")
        telemetry.meter("store.get_bytes", len(payload))
        telemetry.observe("store.get_seconds", time.perf_counter() - t0)
        return payload

    def __contains__(self, digest):
        return self.path_for(digest).exists()

    def __iter__(self):
        return self.digests()

    def digests(self):
        """Iterate over every stored address (sorted for determinism)."""
        if not self.root.is_dir():
            return
        for first in sorted(self.root.iterdir()):
            if not first.is_dir() or len(first.name) != 2:
                continue
            for second in sorted(first.iterdir()):
                if not second.is_dir():
                    continue
                for path in sorted(second.iterdir()):
                    if path.is_file() and _is_object_name(path.name):
                        yield path.name

    def __len__(self):
        return sum(1 for _ in self.digests())

    # -- maintenance ------------------------------------------------------

    def delete(self, digest):
        """Remove ``digest``; True if *this call* removed it.

        Idempotent under concurrent eviction: when two processes race
        to evict the same corrupt shard, the loser observes the object
        already gone (``FileNotFoundError`` — including a fan-out
        directory component removed underneath it) and reports False
        instead of raising.
        """
        path = self.path_for(digest)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def clear(self):
        """Delete every object (leaves the directory tree in place)."""
        removed = 0
        for digest in list(self.digests()):
            removed += bool(self.delete(digest))
        return removed

    def total_bytes(self):
        """Total on-disk bytes of stored frames."""
        return sum(self.path_for(d).stat().st_size for d in self.digests())

    def stats(self):
        """Object count and byte totals for status displays."""
        count = 0
        size = 0
        for digest in self.digests():
            count += 1
            size += self.path_for(digest).stat().st_size
        return {"root": str(self.root), "objects": count, "bytes": size}
