"""The result cache: canonical keys -> JSON-serialized results.

A thin, counting layer over :class:`repro.store.objstore.ObjectStore`.
Lookups have exactly three outcomes, and all of them are safe:

* **hit** -- the stored frame verified its integrity trailer and
  deserialized; the caller gets a result bit-identical to a cold run;
* **miss** -- nothing stored under the key; the caller recomputes;
* **corrupt** -- the trailer (one of the paper's own check codes)
  rejected the frame, or deserialization failed; the entry is evicted
  and the caller recomputes.  Graceful degradation: corruption can
  cost time, never correctness.
"""

from __future__ import annotations

import json

from repro.store.objstore import DEFAULT_ALGORITHM, IntegrityError, ObjectStore
from repro.telemetry.core import current as _telemetry

__all__ = ["CacheStats", "ResultCache"]


class CacheStats:
    """Mutable hit/miss/corrupt/put counters surfaced to callers."""

    __slots__ = ("hits", "misses", "corrupt", "puts")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.puts = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
        }

    def __repr__(self):
        return "CacheStats(hits=%d, misses=%d, corrupt=%d, puts=%d)" % (
            self.hits, self.misses, self.corrupt, self.puts,
        )


class ResultCache:
    """Map canonical keys to JSON documents stored with integrity trailers."""

    def __init__(self, store):
        self.store = store
        self.stats = CacheStats()

    @classmethod
    def at(cls, root, algorithm=DEFAULT_ALGORITHM):
        """A cache rooted at ``root`` (creating the store lazily)."""
        return cls(ObjectStore(root, algorithm))

    # -- raw bytes ---------------------------------------------------------

    def get_bytes(self, key):
        """The stored payload, or None on miss/corruption (evicting)."""
        try:
            payload = self.store.get(key)
        except KeyError:
            self.stats.misses += 1
            _telemetry().count("cache.misses")
            return None
        except IntegrityError:
            self.evict(key)
            return None
        self.stats.hits += 1
        _telemetry().count("cache.hits")
        return payload

    def put_bytes(self, key, payload):
        self.store.put_keyed(key, payload)
        self.stats.puts += 1
        _telemetry().count("cache.puts")
        return key

    def evict(self, key):
        """Drop a corrupt entry so the next lookup recomputes it."""
        self.store.delete(key)
        self.stats.corrupt += 1
        _telemetry().count("cache.corrupt")

    # -- JSON documents ----------------------------------------------------

    def get_json(self, key):
        """The stored JSON value, or None on miss/corruption."""
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            # The trailer passed but the document does not parse -- a
            # writer bug or schema drift; treat exactly like corruption.
            self.stats.hits -= 1
            self.evict(key)
            return None

    def put_json(self, key, value):
        return self.put_bytes(
            key, json.dumps(value, sort_keys=True).encode("utf-8")
        )

    # -- typed helpers -----------------------------------------------------

    def get_object(self, key, from_json):
        """Deserialize via ``from_json(text)``; None on miss/corruption."""
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            return from_json(payload.decode("utf-8"))
        except Exception:
            self.stats.hits -= 1
            self.evict(key)
            return None

    def put_object(self, key, obj):
        """Store ``obj`` via its ``to_json()`` method."""
        return self.put_bytes(key, obj.to_json().encode("utf-8"))
