"""Canonical cache keys for experiment artifacts.

A cache entry is only valid while *everything* that determined its
value is unchanged: the experiment id, the corpus parameters
(profile/total_bytes/seed — corpora are bit-reproducible from those),
the packetizer/engine configuration, and the code's result schema.
Keys are therefore SHA-256 digests over a canonical JSON rendering of
all of those, so any parameter or schema change invalidates cleanly —
there is no way to read a stale entry under a new meaning.

Parameters that cannot change the result — e.g. ``workers`` (the
process fan-out is bit-identical by construction) or the store handles
themselves — are excluded from key material.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

__all__ = [
    "EXCLUDED_PARAMS",
    "SCHEMA_VERSION",
    "canonical_json",
    "canonicalize",
    "digest_key",
    "experiment_key",
    "shard_key",
]

#: Bump whenever serialized result layouts or experiment semantics
#: change; every existing cache entry is then unreachable (not wrong).
SCHEMA_VERSION = 1

#: Call parameters that never affect results and so never enter keys.
EXCLUDED_PARAMS = frozenset({"workers", "store", "cache", "cache_dir"})


def canonicalize(obj):
    """Reduce ``obj`` to JSON-native data with a stable layout.

    Dataclasses become ``{"__type__": name, **fields}`` (type-tagged so
    two configs with coincidentally equal fields cannot collide),
    enums collapse to their values, mappings get string keys, bytes
    become hex, and sets/tuples become sorted/ordered lists.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return canonicalize(obj.value)
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return {"__bytes__": bytes(obj).hex()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj  # non-finite floats are rejected later (allow_nan=False)
    raise TypeError("cannot canonicalize %r for cache keying" % type(obj))


def canonical_json(obj):
    """The canonical JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest_key(*parts):
    """SHA-256 hex over the canonical rendering of ``parts``."""
    material = canonical_json(list(parts))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def experiment_key(experiment_id, params=None):
    """Cache key of one registry experiment invocation."""
    params = {
        k: v for k, v in (params or {}).items() if k not in EXCLUDED_PARAMS
    }
    return digest_key("experiment", SCHEMA_VERSION, experiment_id, params)


def shard_key(data_digest, config, options):
    """Cache key of one file's splice counters.

    Keyed by the file *content* digest rather than its name or its
    filesystem, so identical files share shards across profiles,
    corpus sizes and experiments.
    """
    return digest_key("splice-shard", SCHEMA_VERSION, data_digest, config, options)
