"""Background CRC scrubber: re-verify, quarantine, repair.

The paper's premise is that real data rots — and a cache that sits on
disk for weeks *will* accumulate flipped bits.  The scrubber is the
daemon-shaped answer (``repro-checksums store scrub``): walk every
object a backend holds, re-run its integrity trailer, and act on what
fails:

* a frame whose trailer verifies is **ok** — nothing happens;
* a corrupt frame is **quarantined** (its raw bytes are salvaged into
  a quarantine directory when the backend exposes them, so a failure
  analyst can study what the CRC caught) and evicted from the replica;
* when the backend is a multiplexer and another replica still holds a
  verifying copy, the evicted object is **repaired** — rewritten from
  the healthy frame — so the next sweep pays nothing;
* a corrupt object with no healthy copy anywhere is **unrepairable**:
  it stays evicted and the cache recomputes it on demand (corruption
  costs time, never correctness).

Missing replicas of an object that exists elsewhere are backfilled the
same way, so a scrub pass doubles as replica anti-entropy.  Every
action is mirrored into telemetry as ``scrub.*`` counters, reported
per backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.framing import IntegrityError, verify_frame
from repro.telemetry.core import current as _telemetry

__all__ = ["ScrubFinding", "ScrubReport", "scrub_backend", "scrub_run_store"]


@dataclass
class ScrubFinding:
    """One defective (or healed) object on one replica."""

    namespace: str
    replica: str
    key: str
    reason: str
    #: ``repaired`` | ``quarantined`` | ``unrepairable`` | ``backfilled``
    action: str


@dataclass
class ScrubReport:
    """Aggregate outcome of one scrub pass."""

    scanned: int = 0
    ok: int = 0
    corrupt: int = 0
    repaired: int = 0
    quarantined: int = 0
    backfilled: int = 0
    unrepairable: int = 0
    #: replicas that could not even be read (dead server, dead disk).
    errors: int = 0
    findings: list = field(default_factory=list)
    #: ``replica describe() -> {"scanned", "corrupt", "repaired"}``
    per_replica: dict = field(default_factory=dict)

    @property
    def clean(self):
        """True when every scanned frame verified on every replica."""
        return self.corrupt == 0 and self.unrepairable == 0

    def merge(self, other):
        for name in ("scanned", "ok", "corrupt", "repaired",
                     "quarantined", "backfilled", "unrepairable", "errors"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.findings.extend(other.findings)
        for replica, counts in other.per_replica.items():
            mine = self.per_replica.setdefault(
                replica, {"scanned": 0, "corrupt": 0, "repaired": 0}
            )
            for key, value in counts.items():
                mine[key] = mine.get(key, 0) + value
        return self

    def _replica(self, label):
        return self.per_replica.setdefault(
            label, {"scanned": 0, "corrupt": 0, "repaired": 0}
        )

    def render(self):
        lines = [
            "objects scanned    %d" % self.scanned,
            "verified ok        %d" % self.ok,
            "corrupt            %d" % self.corrupt,
            "repaired           %d" % self.repaired,
            "backfilled         %d" % self.backfilled,
            "quarantined        %d" % self.quarantined,
            "unrepairable       %d" % self.unrepairable,
            "replica errors     %d" % self.errors,
        ]
        for replica in sorted(self.per_replica):
            counts = self.per_replica[replica]
            lines.append(
                "  replica %s: scanned %d, corrupt %d, repaired %d"
                % (replica, counts["scanned"], counts["corrupt"],
                   counts["repaired"])
            )
        for finding in self.findings:
            lines.append(
                "  %s %s/%s on %s: %s"
                % (finding.action.upper(), finding.namespace,
                   finding.key[:16], finding.replica, finding.reason)
            )
        return "\n".join(lines)


def _replicas(backend):
    """The independently scrubbable stores behind ``backend``.

    A multiplexer is scrubbed replica-by-replica (that is where the
    healthy copies for repair live); every other backend — including a
    striping composite, whose children hold disjoint keys — is
    scrubbed as a single unit.
    """
    if backend.kind == "multiplex":
        return list(backend.children)
    return [backend]


def _read_frame(replica, key):
    """``(status, frame_or_None, reason)`` for one replica's copy."""
    try:
        frame = replica.get_frame(key)
    except KeyError:
        return "missing", None, "absent"
    except IntegrityError as exc:
        # A verifying backend (HTTP remote) refuses to serve the
        # corrupt bytes; the defect is proven even without them.
        return "corrupt", None, str(exc)
    except OSError as exc:
        return "error", None, str(exc)
    try:
        verify_frame(frame)
    except IntegrityError as exc:
        return "corrupt", frame, str(exc)
    return "ok", frame, ""


def _salvage(quarantine, namespace, replica_index, key, frame):
    """Preserve a corrupt frame's bytes for post-mortem analysis."""
    if quarantine is None or frame is None:
        return False
    from pathlib import Path

    from repro.store.backends.local import atomic_write

    path = (
        Path(quarantine) / namespace / ("replica-%d" % replica_index) / key
    )
    try:
        atomic_write(path, frame)
    except OSError:  # pragma: no cover - quarantine device failing
        return False
    return True


def scrub_backend(backend, namespace="default", repair=True, quarantine=None,
                  backfill=True):
    """One scrub pass over ``backend``; returns a :class:`ScrubReport`.

    ``repair`` rewrites corrupt/evicted objects from a healthy replica
    when the backend is a multiplexer; ``backfill`` additionally fills
    replicas that are merely missing an object others hold;
    ``quarantine`` (a directory path) salvages corrupt bytes before
    eviction.
    """
    telemetry = _telemetry()
    report = ScrubReport()
    replicas = _replicas(backend)

    keys = set()
    for replica in replicas:
        try:
            keys.update(replica.keys())
        except OSError:  # a dead replica cannot contribute keys
            continue

    for key in sorted(keys):
        report.scanned += 1
        telemetry.count("scrub.scanned")
        states = []
        healthy = None
        for index, replica in enumerate(replicas):
            status, frame, reason = _read_frame(replica, key)
            if status == "error":
                report.errors += 1
                telemetry.count("scrub.errors")
            states.append((index, replica, status, frame, reason))
            if status == "ok" and healthy is None:
                healthy = frame
            if status in ("ok", "corrupt"):
                report._replica(replica.describe())["scanned"] += 1

        object_corrupt = False
        for index, replica, status, frame, reason in states:
            label = replica.describe()
            if status == "corrupt":
                object_corrupt = True
                report.corrupt += 1
                report._replica(label)["corrupt"] += 1
                telemetry.count("scrub.corrupt")
                if _salvage(quarantine, namespace, index, key, frame):
                    report.quarantined += 1
                    telemetry.count("scrub.quarantined")
                    report.findings.append(ScrubFinding(
                        namespace, label, key, reason, "quarantined"
                    ))
                try:
                    replica.delete(key)
                except OSError:  # pragma: no cover - replica going away
                    pass
                if repair and healthy is not None:
                    try:
                        replica.put_frame(key, healthy)
                        report.repaired += 1
                        report._replica(label)["repaired"] += 1
                        telemetry.count("scrub.repaired")
                        report.findings.append(ScrubFinding(
                            namespace, label, key, reason, "repaired"
                        ))
                        continue
                    except OSError:  # pragma: no cover - replica read-only
                        pass
                report.unrepairable += 1
                telemetry.count("scrub.unrepairable")
                report.findings.append(ScrubFinding(
                    namespace, label, key, reason, "unrepairable"
                ))
            elif status == "missing" and backfill and healthy is not None \
                    and len(replicas) > 1:
                try:
                    replica.put_frame(key, healthy)
                except OSError:
                    continue
                report.backfilled += 1
                telemetry.count("scrub.backfilled")
                report.findings.append(ScrubFinding(
                    namespace, label, key, "absent replica copy", "backfilled"
                ))
        if not object_corrupt and healthy is not None:
            report.ok += 1
    return report


def scrub_run_store(run_store, repair=True, quarantine=None, backfill=True):
    """Scrub every namespace of a :class:`repro.store.runner.RunStore`.

    A pass that verified every frame on every replica without a single
    transport error is an end-to-end health proof stronger than any
    half-open probe, so it also **reintegrates** quarantined replicas:
    every open circuit breaker on the store's multiplexer is closed,
    with the reintegration on the breaker's transition ledger.
    """
    report = ScrubReport()
    for name, store in run_store.namespaces:
        report.merge(scrub_backend(
            store.backend,
            namespace=name,
            repair=repair,
            quarantine=quarantine,
            backfill=backfill,
        ))
    if report.clean and report.errors == 0:
        resilience = getattr(run_store.backend, "resilience", None)
        if resilience is not None:
            resilience.reintegrate(
                "clean scrub pass verified every replica end-to-end"
            )
    return report
