"""Run manifests: per-shard completion state for resumable sweeps.

A *run* is one splice experiment over one filesystem under one
configuration; its *shards* are the per-file work units (keyed by file
content digest, so identical files share work across runs).  The
manifest records which shards have completed so an interrupted
multi-hour sweep resumes from where it stopped instead of restarting:
the runner consults the manifest and the shard cache, recomputes only
what is missing or corrupt, and checkpoints after every shard.

Manifests are themselves stored as integrity-trailed objects; a
corrupt manifest degrades to "no manifest" (a fresh run that still
reuses every intact cached shard).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.store.keys import SCHEMA_VERSION
from repro.store.objstore import IntegrityError

__all__ = ["ManifestStore", "RunManifest"]


@dataclass
class RunManifest:
    """Completion bookkeeping for one sharded run."""

    run_key: str
    label: str = ""
    params: dict = field(default_factory=dict)
    #: shard key -> file name (for reporting; keys are authoritative).
    shards: dict = field(default_factory=dict)
    #: shard keys whose counters are stored and verified.
    completed: list = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    def register(self, shard_key, name):
        self.shards[shard_key] = name

    def mark_done(self, shard_key):
        if shard_key not in self.completed:
            self.completed.append(shard_key)

    def mark_pending(self, shard_key):
        """Demote a shard (its cached counters went missing/corrupt)."""
        if shard_key in self.completed:
            self.completed.remove(shard_key)

    def is_done(self, shard_key):
        return shard_key in set(self.completed)

    @property
    def total(self):
        return len(self.shards)

    @property
    def done(self):
        return len(self.completed)

    @property
    def finished(self):
        return self.total > 0 and set(self.shards) <= set(self.completed)

    def to_json(self):
        return json.dumps(
            {
                "run_key": self.run_key,
                "label": self.label,
                "params": self.params,
                "shards": self.shards,
                "completed": self.completed,
                "schema": self.schema,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text):
        payload = json.loads(text)
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                "manifest schema %r != %d" % (payload.get("schema"), SCHEMA_VERSION)
            )
        return cls(
            run_key=payload["run_key"],
            label=payload.get("label", ""),
            params=payload.get("params", {}),
            shards=payload.get("shards", {}),
            completed=payload.get("completed", []),
        )


class ManifestStore:
    """Load/save manifests in an object store, degrading on corruption."""

    def __init__(self, store):
        self.store = store

    def load(self, run_key):
        """The stored manifest, or None (missing, corrupt, or stale).

        *Any* defect — a failed integrity trailer, undecodable bytes,
        unparsable JSON, a schema mismatch, missing fields, or an I/O
        error reading the entry — degrades to "no manifest": the run
        rebuilds completion state from the shard cache instead of
        propagating the error to an hours-long sweep.  Defective
        entries are discarded (best effort) so the next load is a
        clean miss.
        """
        try:
            payload = self.store.get(run_key)
        except KeyError:
            return None
        except (IntegrityError, OSError):
            self._discard(run_key)
            return None
        try:
            return RunManifest.from_json(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError, KeyError):
            self._discard(run_key)
            return None

    def _discard(self, run_key):
        """Drop a defective manifest; never let cleanup itself raise."""
        try:
            self.store.delete(run_key)
        except OSError:
            pass

    def save(self, manifest):
        self.store.put_keyed(manifest.run_key, manifest.to_json().encode("utf-8"))
