"""Crash-safe shard journal: per-sweep checkpoints for mid-sweep resume.

The artifact store already caches *shards* (keyed by file content +
configuration) and *manifests* (completion state), but both require a
``RunStore`` — a plain ``repro-checksums splice`` run had nothing on
disk, so an interrupt lost every completed shard.  The journal closes
that gap: one small integrity-trailed JSON file per in-flight sweep,
atomically rewritten (write → fsync → rename, the objstore's
:func:`~repro.store.objstore.atomic_write` discipline) after every
drained shard, holding the sweep **fingerprint** and each completed
shard's :class:`~repro.core.results.SpliceCounters`.

Contract:

* the fingerprint is the sweep's :func:`~repro.store.runner.run_key_for`
  identity — a digest over the corpus content, the packetizer/engine
  configuration, and the result schema.  ``--resume`` loads the journal
  **only** when the stored fingerprint matches the sweep about to run;
  a mismatch (changed corpus, config, or algorithm set) discards the
  journal with one warning — stale checkpoints are never merged;
* records are written through :func:`~repro.store.objstore.atomic_write`
  (statically enforced by reprolint REP402), so a kill between shards
  leaves either the previous checkpoint or the new one, never a torn
  file — and the CRC trailer catches any bit rot on top;
* a journal whose frame or JSON fails to parse degrades to "no
  journal" (the sweep restarts cleanly), mirroring the manifest
  store's any-defect-is-a-miss posture;
* :meth:`ShardJournal.complete` deletes the file, so a journal on disk
  always means "this sweep was interrupted here".

Resuming merges journaled counters into the same deterministic
first-seen-key order the sharded runner uses, so a resumed sweep is
bit-identical to an uninterrupted one, at any ``--workers`` width.
"""

from __future__ import annotations

import json
import re
import warnings
from pathlib import Path

from repro.store.keys import SCHEMA_VERSION
from repro.store.objstore import (
    DEFAULT_ALGORITHM,
    IntegrityError,
    atomic_write,
    default_root,
    frame_object,
    unframe_object,
)
from repro.telemetry.core import current as _telemetry

__all__ = ["ShardJournal", "default_journal_dir", "journal_path", "open_journal"]

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def default_journal_dir(root=None):
    """The journal directory under a store root (``<root>/journal``)."""
    base = Path(root) if root is not None else default_root()
    return base / "journal"


def _slug(text, limit=80):
    """A filesystem-safe slug of a sweep label (never dot-leading)."""
    slug = _SLUG_RE.sub("-", str(text)).strip("-.") or "sweep"
    return slug[:limit]


def journal_path(journal_dir, filesystem_name, config):
    """The stable journal path of one sweep *label*.

    Named by the coarse identity (corpus label, algorithm, placement)
    rather than the full fingerprint, so rerunning the "same" sweep
    over changed bytes or options finds the stale journal and lets the
    fingerprint check discard it loudly instead of silently starting a
    second file.
    """
    placement = getattr(getattr(config, "placement", None), "value", "na")
    label = "%s-%s-%s" % (
        filesystem_name, getattr(config, "algorithm", "na"), placement,
    )
    return Path(journal_dir) / (_slug(label) + ".journal")


def open_journal(root=None, filesystem_name="sweep", config=None):
    """A :class:`ShardJournal` under ``<root>/journal`` for one sweep."""
    return ShardJournal(
        journal_path(default_journal_dir(root), filesystem_name, config)
    )


class ShardJournal:
    """One sweep's checkpoint file: fingerprint + completed counters."""

    #: Bump when the journal payload layout changes; old journals are
    #: then discarded as stale rather than misread.
    SCHEMA = SCHEMA_VERSION

    def __init__(self, path, algorithm=DEFAULT_ALGORITHM):
        self.path = Path(path)
        self.algorithm = algorithm
        self._fingerprint = None
        self._label = ""
        self._total = 0
        self._entries = {}

    # -- lifecycle ----------------------------------------------------------

    def open_run(self, fingerprint, label="", total=0, resume=False,
                 codec=None):
        """Bind the journal to one sweep; return the resumable counters.

        With ``resume``, a stored journal whose fingerprint matches
        ``fingerprint`` yields its ``{shard_key: counters}`` map; a
        mismatched or defective journal is discarded with a warning
        and an empty map is returned.  Without ``resume`` the journal
        always starts empty (the first :meth:`record` overwrites any
        leftover file).

        ``codec`` is the counters class used to revive entries
        (anything with ``from_dict``/``to_dict``); it defaults to
        :class:`~repro.core.results.SpliceCounters`, and the channel
        sweeps pass :class:`~repro.channel.arq.ChannelReport`.
        """
        if codec is None:
            from repro.core.results import SpliceCounters as codec

        self._fingerprint = fingerprint
        self._label = label
        self._total = total
        self._entries = {}
        if not resume:
            return {}
        payload = self._read_payload()
        if payload is None:
            return {}
        if payload.get("fingerprint") != fingerprint:
            _telemetry().count("checkpoint.stale_journals")
            warnings.warn(
                "stale sweep journal %s: fingerprint mismatch (the corpus, "
                "configuration, or algorithm set changed since it was "
                "written); discarding it and restarting the sweep"
                % self.path,
                RuntimeWarning,
                stacklevel=3,
            )
            self.discard()
            return {}
        entries = {}
        try:
            for key in sorted(payload.get("entries", {})):
                entries[key] = codec.from_dict(payload["entries"][key])
        except (TypeError, ValueError):
            warnings.warn(
                "defective sweep journal %s: entries failed to parse; "
                "discarding it and restarting the sweep" % self.path,
                RuntimeWarning,
                stacklevel=3,
            )
            self.discard()
            return {}
        self._entries = dict(entries)
        return entries

    def record(self, shard_key, counters):
        """Checkpoint one completed shard (atomic full rewrite)."""
        self._entries[shard_key] = counters
        self.flush()

    def flush(self):
        """Persist the current checkpoint state atomically."""
        telemetry = _telemetry()
        with telemetry.span("journal.flush"):
            atomic_write(self.path, frame_object(
                self._payload_bytes(), self.algorithm
            ))
        telemetry.count("checkpoint.journal_writes")

    def complete(self):
        """The sweep finished: a journal on disk means 'interrupted'."""
        self.discard()

    def discard(self):
        """Remove the journal file (idempotent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # -- introspection ------------------------------------------------------

    @property
    def done(self):
        """Shards checkpointed so far (loaded + recorded)."""
        return len(self._entries)

    @property
    def total(self):
        """Total unique shards of the bound sweep."""
        return self._total

    def exists(self):
        return self.path.is_file()

    # -- wire format --------------------------------------------------------

    def _payload_bytes(self):
        payload = {
            "schema": self.SCHEMA,
            "fingerprint": self._fingerprint,
            "label": self._label,
            "total": self._total,
            "entries": {
                key: self._entries[key].to_dict()
                for key in sorted(self._entries)
            },
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def _read_payload(self):
        """The stored payload dict, or None (missing/defective).

        Any defect — unreadable file, failed integrity trailer,
        undecodable or unparsable JSON, schema drift — degrades to
        "no journal" and removes the defective file best-effort.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            raw, _ = unframe_object(blob)
            payload = json.loads(raw.decode("utf-8"))
        except (IntegrityError, UnicodeDecodeError, ValueError):
            self.discard()
            return None
        if not isinstance(payload, dict) or payload.get("schema") != self.SCHEMA:
            self.discard()
            return None
        return payload
