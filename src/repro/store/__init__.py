"""repro.store: content-addressed artifact store for experiment runs.

The persistence layer behind cached and resumable experiments:

* :mod:`repro.store.framing` -- the integrity-trailed frame format
  every backend stores and transmits (CRC-32/AAL5 by default);
* :mod:`repro.store.backends` -- pluggable frame backends (pathsliced
  local directory, in-memory, HTTP remote) and their compositions
  (resilient multiplexer, striping, read-only filter);
* :mod:`repro.store.api` -- the ``repro-store/1`` HTTP server/client
  pair serving a backend over the network, trailers verified on both
  ends of both transfers;
* :mod:`repro.store.objstore` -- the framing layer over a backend:
  content-addressed payload storage with self-checking objects;
* :mod:`repro.store.keys` -- canonical cache keys over experiment
  parameters, corpus identity and the code schema version;
* :mod:`repro.store.cache` -- the counting result cache (hit / miss /
  corrupt-evict-recompute);
* :mod:`repro.store.manifest` / :mod:`repro.store.runner` -- resumable
  sharded splice runs checkpointed per file;
* :mod:`repro.store.audit` -- re-verify every stored object;
* :mod:`repro.store.scrub` -- walk a backend re-verifying trailers,
  quarantining corrupt objects and repairing them from healthy
  replicas.

Corruption is always survivable: a failed trailer evicts the entry and
the caller recomputes — the cache can cost time, never correctness.
"""

from repro.store.audit import AuditReport, audit_run_store
from repro.store.backends import (
    Backend,
    BackendCounters,
    open_backend,
    open_store_url,
)
from repro.store.cache import ResultCache
from repro.store.keys import SCHEMA_VERSION, experiment_key, shard_key
from repro.store.manifest import ManifestStore, RunManifest
from repro.store.objstore import (
    DEFAULT_ALGORITHM,
    IntegrityError,
    ObjectStore,
    default_root,
)
from repro.store.runner import RunStore, run_sharded_splice
from repro.store.scrub import ScrubReport, scrub_backend, scrub_run_store

__all__ = [
    "AuditReport",
    "Backend",
    "BackendCounters",
    "DEFAULT_ALGORITHM",
    "IntegrityError",
    "ManifestStore",
    "ObjectStore",
    "ResultCache",
    "RunManifest",
    "RunStore",
    "SCHEMA_VERSION",
    "ScrubReport",
    "audit_run_store",
    "default_root",
    "experiment_key",
    "open_backend",
    "open_store_url",
    "run_sharded_splice",
    "scrub_backend",
    "scrub_run_store",
    "shard_key",
]
