"""repro.store: content-addressed artifact store for experiment runs.

The persistence layer behind cached and resumable experiments:

* :mod:`repro.store.objstore` -- sharded on-disk object store whose
  frames carry integrity trailers computed with the paper's own check
  codes (CRC-32/AAL5 by default);
* :mod:`repro.store.keys` -- canonical cache keys over experiment
  parameters, corpus identity and the code schema version;
* :mod:`repro.store.cache` -- the counting result cache (hit / miss /
  corrupt-evict-recompute);
* :mod:`repro.store.manifest` / :mod:`repro.store.runner` -- resumable
  sharded splice runs checkpointed per file;
* :mod:`repro.store.audit` -- re-verify every stored object.

Corruption is always survivable: a failed trailer evicts the entry and
the caller recomputes — the cache can cost time, never correctness.
"""

from repro.store.audit import AuditReport, audit_run_store
from repro.store.cache import ResultCache
from repro.store.keys import SCHEMA_VERSION, experiment_key, shard_key
from repro.store.manifest import ManifestStore, RunManifest
from repro.store.objstore import (
    DEFAULT_ALGORITHM,
    IntegrityError,
    ObjectStore,
    default_root,
)
from repro.store.runner import RunStore, run_sharded_splice

__all__ = [
    "AuditReport",
    "DEFAULT_ALGORITHM",
    "IntegrityError",
    "ManifestStore",
    "ObjectStore",
    "ResultCache",
    "RunManifest",
    "RunStore",
    "SCHEMA_VERSION",
    "audit_run_store",
    "default_root",
    "experiment_key",
    "run_sharded_splice",
    "shard_key",
]
