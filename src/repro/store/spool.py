"""Degraded-mode write spool: PUTs outlive a total replica outage.

When every remote replica of a multiplexer is open-circuit, writes
would otherwise be dropped on the floor (the old behaviour: six store
errors and the run demotes to store-less, losing everything computed
afterwards).  The spool is the local half of a store-and-forward
queue:

* each spooled PUT is the **frame itself** — already integrity-trailed
  bytes — written at ``<spool>/<namespace>/<key>`` through the store's
  :func:`~repro.store.backends.local.atomic_write` discipline (write,
  fsync, rename, directory fsync), so a crash mid-spool tears nothing;
* :func:`drain_spool` replays entries with **idempotent PUT**
  semantics (frames are content-addressed; a re-upload of the same key
  overwrites with identical bytes), verifying each frame's trailer
  before letting it back onto the wire and leaving any corrupt entry
  in place for post-mortem;
* the sweep runner drains opportunistically at end-of-sweep, and the
  ``store flush-spool`` subcommand drains on demand — a sweep that
  lost its remote store for a window still ends with a complete,
  verified remote cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.store.backends.base import check_key
from repro.store.backends.local import atomic_write
from repro.store.framing import IntegrityError, verify_frame
from repro.telemetry.core import current as _telemetry

__all__ = [
    "SpoolDrainReport",
    "WriteSpool",
    "default_spool_dir",
    "drain_spool",
]


def default_spool_dir(root=None):
    """The spool directory under a store root (``<root>/spool``)."""
    if root is None:
        from repro.store.objstore import default_root

        root = default_root()
    return Path(root) / "spool"


@dataclass
class SpoolDrainReport:
    """Outcome of one :func:`drain_spool` pass."""

    replayed: int = 0
    corrupt: int = 0
    failed: int = 0
    remaining: int = 0
    #: ``(namespace, key, outcome)`` per entry, walk order.
    entries: list = field(default_factory=list)

    @property
    def clean(self):
        """True when the spool is empty after the pass."""
        return self.remaining == 0

    def render(self):
        lines = [
            "spool replayed     %d" % self.replayed,
            "spool corrupt      %d" % self.corrupt,
            "spool failed       %d" % self.failed,
            "spool remaining    %d" % self.remaining,
        ]
        for namespace, key, outcome in self.entries:
            if outcome != "replayed":
                lines.append(
                    "  %s %s/%s" % (outcome.upper(), namespace, key[:16])
                )
        return "\n".join(lines)


class WriteSpool:
    """A local, integrity-trailed, crash-safe queue of unsent PUTs."""

    def __init__(self, directory):
        self.root = Path(directory)

    def describe(self):
        return "spool(%s)" % self.root

    # -- writing -------------------------------------------------------------

    def put(self, namespace, key, frame):
        """Spool one frame (atomic write; idempotent per key)."""
        key = check_key(key)
        path = self.root / namespace / key
        atomic_write(path, bytes(frame))
        _telemetry().count("resilience.spool.spooled")
        return path

    def get(self, namespace, key):
        """The spooled frame, **verified**; ``KeyError`` when absent."""
        path = self.root / namespace / check_key(key)
        try:
            frame = path.read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None
        verify_frame(frame)  # never serve rot back into the data plane
        return frame

    def discard(self, namespace, key):
        """Drop a spooled frame a direct write has superseded.

        Namespaces like ``manifests`` store *mutable* values under a
        stable key: once a post-outage write reaches a replica
        directly, the queued copy is stale — replaying it later would
        roll the remote value back.  True when an entry was dropped.
        """
        path = self.root / namespace / check_key(key)
        try:
            path.unlink()
        except OSError:
            return False
        _telemetry().count("resilience.spool.superseded")
        return True

    # -- walking -------------------------------------------------------------

    def entries(self):
        """``(namespace, key, path)`` for every spooled frame, sorted."""
        if not self.root.is_dir():
            return []
        found = []
        for namespace_dir in sorted(self.root.iterdir()):
            if not namespace_dir.is_dir():
                continue
            for path in sorted(namespace_dir.iterdir()):
                if path.is_file():
                    found.append((namespace_dir.name, path.name, path))
        return found

    def count(self):
        return len(self.entries())

    @property
    def empty(self):
        return self.count() == 0

    def stats(self):
        """``{"dir", "entries", "bytes"}`` for status displays."""
        entries = self.entries()
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for _, _, path in entries),
        }


def drain_spool(backend, spool, health=None):
    """Replay every spooled frame into ``backend``; idempotent.

    ``backend`` is the *top-level* store backend (a multiplexer or a
    single replica); each entry is re-verified, then PUT into every
    replica **directly** — bypassing the breaker/spool layer, so a
    drain can never re-spool its own writes.  Replayed entries are
    unlinked; a frame that fails its trailer stays on disk (corrupt
    evidence beats silent deletion) and counts as ``corrupt``; a frame
    no replica would accept stays too, as ``failed``.
    """
    telemetry = _telemetry()
    report = SpoolDrainReport()
    # Unwrap only a multiplexer (its children are the replicas the
    # breaker layer guards); any other wrapper — fault injectors,
    # read-only filters — must stay in the write path.
    if getattr(backend, "kind", "") == "multiplex":
        children = list(backend.children)
    else:
        children = [backend]
    for namespace, key, path in spool.entries():
        try:
            frame = path.read_bytes()
        except OSError:
            report.failed += 1
            report.entries.append((namespace, key, "failed"))
            continue
        try:
            verify_frame(frame)
        except IntegrityError:
            report.corrupt += 1
            telemetry.count("resilience.spool.corrupt")
            report.entries.append((namespace, key, "corrupt"))
            continue
        stored = 0
        for child in children:
            try:
                child.sub(namespace).put_frame(key, frame)
                stored += 1
            except OSError:
                continue
        if stored:
            path.unlink()
            report.replayed += 1
            telemetry.count("resilience.spool.replayed")
            report.entries.append((namespace, key, "replayed"))
        else:
            report.failed += 1
            report.entries.append((namespace, key, "failed"))
    report.remaining = spool.count()
    if health is not None and report.replayed:
        health.degrade(
            "spool drained: %d queued write(s) replayed to the store"
            % report.replayed
        )
    return report
