"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a *pure function* from operation coordinates to
fault decisions.  Store operations are addressed by ``(op, n)`` — the
n-th ``get``/``put``/``delete`` the plan sees — and worker jobs by
``(job_index, attempt)``.  Every decision is derived by hashing the
seed with those coordinates (no shared mutable RNG stream), so:

* two plans built from the same seed inject the **exact same fault
  sequence** when driven through the same operations — the replay
  property the chaos CLI and test suite assert;
* a decision re-queried after a pool respawn returns the same answer
  (worker decisions are memoized, logged once);
* injection is bounded: ``max_faults`` caps the schedule, and worker
  faults stop after ``max_faulty_attempts`` attempts per job so the
  supervisor's retry ladder always converges.

This mirrors the fault-injection methodology of Jepsen-style checkers:
the fault schedule is part of the experiment's identity, reproducible
from a seed, and logged so a failing run can be replayed exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = [
    "KIND_TO_OP",
    "NAMED_PLANS",
    "FaultEvent",
    "FaultPlan",
    "named_plan",
    "plan_names",
]

#: Store fault kind -> the store operation it applies to.
KIND_TO_OP = {
    "bitflip": "get",     # flip one bit in the frame as it is read
    "truncate": "get",    # drop the frame's tail (torn read)
    "eio": "get",         # OSError(EIO) from the read path
    "enospc": "put",      # OSError(ENOSPC): disk full
    "erofs": "put",       # OSError(EROFS): filesystem went read-only
    "torn": "put",        # persist only a prefix of the frame
    "enoent": "delete",   # concurrent eviction won the race
    # Remote-backend faults (a networked replica misbehaving):
    "connreset": "get",   # connection reset mid-transfer
    "conntimeout": "get", # request exceeded its deadline
    "slowread": "get",    # the bytes arrive, but late (latency spike)
    "stale": "get",       # replica serves an old (still-verifying) frame
}

#: Worker fault kinds the injector's shim understands.  The ``sigint``
#: and ``sigterm`` kinds deliver the named signal to the executing
#: process and then *run the shard normally* — under a sequential
#: sweep the parent's :class:`repro.core.checkpoint.SweepController`
#: handler catches it and the sweep stops, checkpointed, at the next
#: shard boundary (the deterministic interrupt used by the resume
#: tests).
WORKER_KINDS = ("crash", "raise", "stall", "kill", "sigint", "sigterm")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: where it fired and what it was."""

    op: str      # "store.get" / "store.put" / "store.delete" / "worker"
    index: int   # n-th store op of that kind, or the worker job index
    kind: str    # a KIND_TO_OP key or a WORKER_KINDS entry

    def as_tuple(self):
        return (self.op, self.index, self.kind)


class FaultPlan:
    """A seeded, bounded, replayable fault schedule.

    ``store_rates`` / ``worker_rates`` map fault kinds to injection
    probabilities; ``worker_script`` pins a kind to a specific job
    index (first attempt only) for surgical tests such as "kill the
    run at exactly the k-th shard boundary".
    """

    def __init__(
        self,
        seed=0,
        *,
        store_rates=None,
        worker_rates=None,
        worker_script=None,
        max_faults=256,
        max_faulty_attempts=1,
        stall_seconds=1.5,
        slow_seconds=0.05,
        shard_timeout=None,
        channel=None,
        name="custom",
    ):
        self.seed = int(seed)
        self.name = name
        self.store_rates = dict(store_rates or {})
        self.worker_rates = dict(worker_rates or {})
        self.worker_script = dict(worker_script or {})
        self.max_faults = max_faults
        self.max_faulty_attempts = max_faulty_attempts
        self.stall_seconds = stall_seconds
        #: delay injected by the ``slowread`` kind (latency, not loss).
        self.slow_seconds = slow_seconds
        #: suggested SupervisedPool per-shard timeout (set by plans
        #: that inject stalls; None disables the timeout rung).
        self.shard_timeout = shard_timeout
        #: name of a :data:`repro.channel.plan.NAMED_CHANNEL_PLANS`
        #: entry pairing this fault diet with a link regime; the chaos
        #: CLI runs its channel replay-determinism check against it.
        self.channel = channel
        unknown = {
            kind for kind in self.store_rates if kind not in KIND_TO_OP
        } | {
            kind for kind in self.worker_rates if kind not in WORKER_KINDS
        } | {
            kind for kind in self.worker_script.values()
            if kind not in WORKER_KINDS
        }
        if unknown:
            raise ValueError("unknown fault kinds: %s" % ", ".join(sorted(unknown)))
        #: every injected fault, in decision order.
        self.log = []
        self._op_counts = {}
        self._worker_decisions = {}

    # -- deterministic randomness ------------------------------------------

    def _roll(self, *coords):
        """A uniform [0, 1) value, a pure function of seed + coords."""
        material = "|".join(str(c) for c in (self.seed,) + coords)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _budget_left(self):
        return len(self.log) < self.max_faults

    # -- decisions ----------------------------------------------------------

    def store_fault(self, op):
        """The fault kind for the next ``op`` operation, or None.

        Each call consumes one operation slot; the decision depends
        only on ``(seed, op, slot)``.
        """
        n = self._op_counts.get(op, 0)
        self._op_counts[op] = n + 1
        if not self._budget_left():
            return None
        candidates = sorted(
            kind for kind, kind_op in KIND_TO_OP.items()
            if kind_op == op and self.store_rates.get(kind)
        )
        for kind in candidates:
            if self._roll("store", op, n, kind) < self.store_rates[kind]:
                self.log.append(FaultEvent("store." + op, n, kind))
                return kind
        return None

    def worker_directive(self, job_index, attempt):
        """The fault directive for one job attempt, or None.

        ``attempt is None`` marks the supervisor's fault-free fallback
        rung and never faults; attempts past ``max_faulty_attempts``
        never fault either, so retries always converge.  Decisions are
        memoized per ``(job_index, attempt)`` (a pool respawn may
        legitimately re-ask) and logged exactly once.
        """
        if attempt is None or attempt >= self.max_faulty_attempts:
            return None
        key = (job_index, attempt)
        if key in self._worker_decisions:
            return self._worker_decisions[key]
        kind = None
        if self._budget_left():
            scripted = self.worker_script.get(job_index)
            if scripted is not None and attempt == 0:
                kind = scripted
            else:
                for candidate in sorted(self.worker_rates):
                    rate = self.worker_rates[candidate]
                    if self._roll("worker", job_index, attempt, candidate) < rate:
                        kind = candidate
                        break
        directive = None
        if kind is not None:
            param = self.stall_seconds if kind == "stall" else None
            directive = (kind, param)
            self.log.append(FaultEvent("worker", job_index, kind))
        self._worker_decisions[key] = directive
        return directive

    # -- replay / identity --------------------------------------------------

    def fingerprint(self):
        """Digest of the injected fault sequence (order-sensitive)."""
        h = hashlib.sha256()
        for event in self.log:
            h.update(("%s:%d:%s\n" % event.as_tuple()).encode("utf-8"))
        return h.hexdigest()[:16]

    def clone(self):
        """A fresh plan with identical parameters and no history."""
        return FaultPlan(
            self.seed,
            store_rates=self.store_rates,
            worker_rates=self.worker_rates,
            worker_script=self.worker_script,
            max_faults=self.max_faults,
            max_faulty_attempts=self.max_faulty_attempts,
            stall_seconds=self.stall_seconds,
            slow_seconds=self.slow_seconds,
            shard_timeout=self.shard_timeout,
            channel=self.channel,
            name=self.name,
        )

    def preview(self, store_ops=64, jobs=32, attempts=2):
        """Fingerprint of a synthetic drive over a fixed op grid.

        A pure function of the plan parameters: two plans preview
        identically iff they would inject identically — the cheap
        replay-determinism check the chaos CLI prints.
        """
        probe = self.clone()
        for op in ("get", "put", "delete"):
            for _ in range(store_ops):
                probe.store_fault(op)
        for job in range(jobs):
            for attempt in range(attempts):
                probe.worker_directive(job, attempt)
        return probe.fingerprint()

    def __repr__(self):
        return "FaultPlan(name=%r, seed=%d, injected=%d)" % (
            self.name, self.seed, len(self.log),
        )


#: Named plans for the ``repro-checksums chaos`` CLI and `make chaos`.
NAMED_PLANS = {
    # Storage rots underneath the sweep: read-side corruption only.
    "bitrot": dict(store_rates={"bitflip": 0.25, "truncate": 0.10}),
    # The disk fills up / remounts read-only mid-run.
    "full-disk": dict(store_rates={"enospc": 0.30, "erofs": 0.10}),
    # Workers crash, raise, and stall; the supervisor's whole ladder.
    "flaky-workers": dict(
        worker_rates={"crash": 0.15, "raise": 0.20, "stall": 0.05},
        stall_seconds=1.5,
        shard_timeout=0.5,
    ),
    # A remote replica misbehaving: resets, timeouts, latency spikes,
    # stale serves.  Point it at one replica of a multiplexer and the
    # sweep degrades to the healthy one, bit-identically.
    "flaky-network": dict(
        store_rates={"connreset": 0.20, "conntimeout": 0.10,
                     "slowread": 0.15, "stale": 0.05},
        slow_seconds=0.02,
    ),
    # A replica goes completely dark: every read and write errors.
    # Point it at all replicas of a resilient multiplexer to force the
    # breakers open and exercise the degraded-mode write spool.
    "replica-outage": dict(
        store_rates={"eio": 1.0, "erofs": 1.0},
        max_faults=1_000_000,
    ),
    # Burst-noisy link plus slow store reads: the channel regime where
    # clustered bit errors stress the checksums while the store limps.
    "bursty-link": dict(
        store_rates={"slowread": 0.05},
        slow_seconds=0.01,
        channel="bursty-link",
    ),
    # Cells arrive jittered, held back, duplicated; remote reads time
    # out now and then.
    "reordering-link": dict(
        store_rates={"conntimeout": 0.05},
        channel="reordering-link",
    ),
    # A congested bounded queue overflowing (splice factory) while
    # store reads crawl.
    "congested-queue": dict(
        store_rates={"slowread": 0.10},
        slow_seconds=0.02,
        channel="congested-queue",
    ),
    # Everything at once (the default chaos diet).
    "monkey": dict(
        store_rates={"bitflip": 0.20, "truncate": 0.05,
                     "enospc": 0.12, "torn": 0.06},
        worker_rates={"crash": 0.08, "raise": 0.12},
    ),
}


def plan_names():
    """The named plans, sorted (CLI ``choices``)."""
    return sorted(NAMED_PLANS)


def named_plan(name, seed=0):
    """Instantiate a named plan with the given seed."""
    if name not in NAMED_PLANS:
        raise KeyError(
            "unknown fault plan %r; available: %s"
            % (name, ", ".join(plan_names()))
        )
    return FaultPlan(seed, name=name, **NAMED_PLANS[name])
