"""Fault injection: wrap object stores and pool workers in scheduled harm.

Two injection surfaces, both driven by a :class:`repro.faults.plan.FaultPlan`:

* :class:`FaultyObjectStore` wraps any :class:`repro.store.objstore.ObjectStore`
  and injects **read-side** corruption (bit flips, torn reads, EIO),
  **write-side** failures (ENOSPC, EROFS, torn writes), and eviction
  races — without ever touching the intact bytes on disk for read
  faults, so a retry sees the true object;
* :func:`shim_file_counters` is a picklable pool-worker shim that
  executes one splice shard under a fault *directive* decided by the
  parent (crash the process, raise, stall, or simulate a kill).

The injected faults are exactly the ones the robustness layer claims
to survive: a sweep run under a plan must finish with counters
bit-identical to a clean run — the repo dogfooding the paper's
detect-and-survive thesis.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import signal
import time

from repro.store.backends.base import Backend
from repro.store.objstore import frame_object, unframe_object

__all__ = [
    "FaultInjected",
    "FaultyBackend",
    "FaultyObjectStore",
    "SimulatedCrash",
    "shim_file_counters",
    "worker_prepare",
    "wrap_run_store",
]


class FaultInjected(RuntimeError):
    """An injected worker failure (the 'raise' and 'stall' kinds)."""


class SimulatedCrash(BaseException):
    """A simulated ``kill -9`` of the whole run.

    Derives from :class:`BaseException` so that *no* rung of the
    degradation ladder absorbs it — exactly like a real SIGKILL, it
    terminates the run mid-flight, leaving whatever the store has
    checkpointed.  Crash-consistency tests resume from that state.
    """


# ---------------------------------------------------------------------------
# store-side injection
# ---------------------------------------------------------------------------


class FaultyObjectStore:
    """An :class:`ObjectStore` proxy that injects faults per a plan.

    Read faults corrupt the bytes *in flight* (the on-disk object stays
    intact), so the integrity trailer rejects them and the caller's
    evict-and-recompute path engages; write faults either raise
    ``OSError`` (ENOSPC/EROFS) or tear the frame so a later read
    detects it.  Everything not overridden delegates to the wrapped
    store.
    """

    def __init__(self, inner, plan, health=None):
        self.inner = inner
        self.plan = plan
        self.health = health

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # Dunders bypass __getattr__; delegate the container protocol
    # explicitly so audit/statistics code sees the wrapped store.
    def __contains__(self, digest):
        return digest in self.inner

    def __iter__(self):
        return iter(self.inner)

    def __len__(self):
        return len(self.inner)

    def _injected(self, op):
        kind = self.plan.store_fault(op)
        if kind is not None and self.health is not None:
            self.health.faults_injected += 1
        return kind

    # -- read ---------------------------------------------------------------

    def get(self, digest, verify=True):
        kind = self._injected("get")
        if kind == "eio":
            raise OSError(
                errno.EIO, "injected I/O error", str(self.inner.path_for(digest))
            )
        if kind == "connreset":
            raise ConnectionResetError(
                errno.ECONNRESET, "injected: connection reset by peer"
            )
        if kind == "conntimeout":
            raise OSError(errno.ETIMEDOUT, "injected: request timed out")
        if kind == "slowread":
            time.sleep(self.plan.slow_seconds)  # late bytes, not lost ones
            return self.inner.get(digest, verify=verify)
        if kind == "stale":
            # A local store has no stale replica to serve; the frame it
            # has *is* the newest one, so the fault degrades to a read.
            return self.inner.get(digest, verify=verify)
        if kind in ("bitflip", "truncate"):
            path = self.inner.path_for(digest)
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                raise KeyError(digest) from None
            if kind == "bitflip":
                corrupted = bytearray(blob)
                corrupted[len(corrupted) // 2] ^= 0x10
                blob = bytes(corrupted)
            else:
                blob = blob[: max(0, len(blob) - 5)]
            payload, _ = unframe_object(blob, verify=verify)  # IntegrityError
            return payload
        return self.inner.get(digest, verify=verify)

    # -- write --------------------------------------------------------------

    def put_keyed(self, key, payload, overwrite=True):
        kind = self._injected("put")
        if kind == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if kind == "erofs":
            raise OSError(errno.EROFS, "injected: read-only file system")
        if kind == "torn":
            # A torn write: only a prefix of the frame reaches disk.
            # The write "succeeds"; the integrity trailer catches it on
            # the next read, which evicts and recomputes.
            path = self.inner.path_for(key)
            blob = frame_object(bytes(payload), self.inner.algorithm)
            self.inner._atomic_write(path, blob[: max(1, (len(blob) * 3) // 5)])
            return key
        return self.inner.put_keyed(key, payload, overwrite=overwrite)

    def put(self, payload):
        digest = self.inner.address(payload)
        self.put_keyed(digest, payload, overwrite=False)
        return digest

    # -- maintenance --------------------------------------------------------

    def delete(self, digest):
        if self._injected("delete") == "enoent":
            # A concurrent evictor won the race; deletion is idempotent.
            return False
        return self.inner.delete(digest)


class FaultyBackend(Backend):
    """A frame-level :class:`Backend` proxy injecting per-plan faults.

    The network-age sibling of :class:`FaultyObjectStore`: it wraps one
    backend (typically one *replica* of a multiplexer) and injects the
    remote-fault kinds — connection resets, timeouts, slow reads, stale
    serves — plus the classic read/write corruption.  Corrupt frames
    are corrupted *in flight*; the wrapped backend keeps the true
    bytes, so a scrub or retry sees the real object.
    """

    kind = "faulty"

    def __init__(self, inner, plan, health=None):
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.health = health
        #: first frame ever stored per key — what ``stale`` serves.
        self._first_frames = {}

    @property
    def children(self):
        return (self.inner,)

    def describe(self):
        return "faulty(%s)" % self.inner.describe()

    def sub(self, namespace):
        derived = FaultyBackend(self.inner.sub(namespace), self.plan,
                                self.health)
        return derived

    def attach_health(self, health):
        self.health = health
        if hasattr(self.inner, "attach_health"):
            self.inner.attach_health(health)

    def close(self):
        self.inner.close()

    def _injected(self, op):
        kind = self.plan.store_fault(op)
        if kind is not None and self.health is not None:
            self.health.faults_injected += 1
        return kind

    # -- hooks --------------------------------------------------------------

    def _get_frame(self, key):
        kind = self._injected("get")
        if kind == "eio":
            raise OSError(errno.EIO, "injected I/O error")
        if kind == "connreset":
            raise ConnectionResetError(
                errno.ECONNRESET, "injected: connection reset by peer"
            )
        if kind == "conntimeout":
            raise OSError(errno.ETIMEDOUT, "injected: request timed out")
        if kind == "slowread":
            time.sleep(self.plan.slow_seconds)
            return self.inner.get_frame(key)
        if kind == "stale":
            stale = self._first_frames.get(key)
            if stale is not None:
                return stale  # an old frame whose trailer still verifies
            return self.inner.get_frame(key)
        frame = self.inner.get_frame(key)
        if kind == "bitflip":
            corrupted = bytearray(frame)
            corrupted[len(corrupted) // 2] ^= 0x10
            return bytes(corrupted)
        if kind == "truncate":
            return frame[: max(0, len(frame) - 5)]
        return frame

    def _put_frame(self, key, frame):
        kind = self._injected("put")
        if kind == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if kind == "erofs":
            raise OSError(errno.EROFS, "injected: read-only file system")
        if kind == "torn":
            self.inner.put_frame(key, frame[: max(1, (len(frame) * 3) // 5)])
            return
        self.inner.put_frame(key, frame)
        self._first_frames.setdefault(key, bytes(frame))

    def _delete(self, key):
        if self._injected("delete") == "enoent":
            return False
        return self.inner.delete(key)

    def _contains(self, key):
        return self.inner.contains(key)

    def _keys(self):
        return iter(self.inner.keys())

    def _size(self, key):
        return self.inner.size(key)


def wrap_run_store(store, plan, health=None):
    """Wrap every namespace of a ``RunStore`` with fault injection.

    Mutates ``store`` in place (its facade object survives) and
    returns it.
    """
    store.objects = FaultyObjectStore(store.objects, plan, health)
    store.results.store = FaultyObjectStore(store.results.store, plan, health)
    store.shards.store = FaultyObjectStore(store.shards.store, plan, health)
    store.manifests.store = FaultyObjectStore(store.manifests.store, plan, health)
    return store


# ---------------------------------------------------------------------------
# worker-side injection
# ---------------------------------------------------------------------------


def apply_directive(directive):
    """Execute one fault directive (or none) in the current process."""
    if not directive:
        return
    kind, param = directive
    if kind == "crash":
        if multiprocessing.parent_process() is None:
            # In the parent (sequential run): a hard exit would kill
            # the whole run, so degrade the crash to an exception the
            # retry ladder handles the same way.
            raise FaultInjected("injected crash (in-process: raised instead)")
        os._exit(13)  # a pool worker dying without cleanup
    if kind == "kill":
        raise SimulatedCrash("simulated kill at a shard boundary")
    if kind in ("sigint", "sigterm"):
        # Deliver the real signal to this process, then compute the
        # shard normally: under a sequential sweep the parent's
        # SweepController handler absorbs it and the run stops —
        # checkpointed — at the next shard boundary.  (In a pool
        # worker the default handler kills the worker instead; the
        # supervisor's ladder treats that as an ordinary crash.)
        signum = getattr(signal, kind.upper(), None)
        if signum is not None:  # pragma: no branch - POSIX always has both
            os.kill(os.getpid(), signum)
        return
    if kind == "raise":
        raise FaultInjected("injected worker exception")
    if kind == "stall":
        time.sleep(param if param else 1.0)
        raise FaultInjected("stalled worker gave up after %.1fs" % (param or 1.0))
    raise ValueError("unknown worker fault directive %r" % (kind,))


def shim_file_counters(payload):
    """Pool worker: one splice shard under a fault directive.

    ``payload`` is ``(directive, args)`` where ``args`` is exactly what
    :func:`repro.core.experiment._file_counters` takes.  The directive
    fires *before* the computation, so a faulted attempt never returns
    a partial result — faults cost time, never correctness.
    """
    directive, args = payload
    apply_directive(directive)
    from repro.core.experiment import _file_counters

    return _file_counters(args)


def worker_prepare(plan, health=None):
    """A ``SupervisedPool`` ``prepare`` hook pairing jobs with directives.

    Runs in the parent at submission time: the plan decides the fault
    for ``(job_index, attempt)`` there, so pool workers need no access
    to the plan.  ``attempt is None`` (the fault-free fallback rung)
    always yields a clean payload.
    """

    def prepare(index, attempt, job):
        before = len(plan.log)
        directive = plan.worker_directive(index, attempt)
        if health is not None:
            health.faults_injected += len(plan.log) - before
        return (directive, job)

    return prepare
