"""repro.faults: deterministic fault injection for chaos-tested sweeps.

* :mod:`repro.faults.plan` — seeded, bounded, replayable fault
  schedules (:class:`FaultPlan`, named plans for the ``chaos`` CLI);
* :mod:`repro.faults.injector` — the injection surfaces: a faulty
  object-store proxy and a pool-worker shim.

Names resolve lazily (PEP 562, matching the top-level package) so
importing :mod:`repro.faults.plan` for CLI ``choices`` never drags in
the store layer or NumPy.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "FaultEvent": "repro.faults.plan",
    "FaultInjected": "repro.faults.injector",
    "FaultPlan": "repro.faults.plan",
    "FaultyBackend": "repro.faults.injector",
    "FaultyObjectStore": "repro.faults.injector",
    "NAMED_PLANS": "repro.faults.plan",
    "SimulatedCrash": "repro.faults.injector",
    "named_plan": "repro.faults.plan",
    "plan_names": "repro.faults.plan",
    "shim_file_counters": "repro.faults.injector",
    "worker_prepare": "repro.faults.injector",
    "wrap_run_store": "repro.faults.injector",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
