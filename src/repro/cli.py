"""Command-line interface: ``repro-checksums``.

Subcommands:

* ``algorithms`` -- list the registered checksum/CRC algorithms.
* ``profiles`` -- list the synthetic filesystem profiles.
* ``sum FILE [FILE...]`` -- checksum files with a chosen algorithm.
* ``run EXPERIMENT`` -- regenerate a paper table or figure (``--svg``
  writes the chart for figure experiments; ``--cache`` serves repeats
  from the artifact store, ``--workers N`` fans out splice runs).
* ``report`` -- regenerate every experiment into one Markdown file.
* ``splice`` -- run a custom splice simulation over a profile.
* ``transfer`` -- simulate a reliable transfer over a lossy link.
* ``cache stats|audit|clear`` -- inspect, integrity-audit, or empty the
  content-addressed artifact store (default root
  ``~/.cache/repro-checksums``, overridable with ``--cache-dir`` or
  ``$REPRO_CHECKSUMS_CACHE``).
* ``chaos`` -- run a splice sweep under a named fault-injection plan
  (worker crashes, store bit rot, ENOSPC, ...) and assert the final
  counters are bit-identical to a fault-free run.
"""

from __future__ import annotations

import argparse
import sys

# Only what building the parser itself needs (subcommand ``choices``)
# is imported eagerly; experiment/engine modules load inside their
# handlers so a warm ``--cache`` hit never imports the splice engine.
# ``faults.plan`` and ``core.supervisor`` are stdlib-only and cheap.
from repro.checksums.registry import available_algorithms, get_algorithm
from repro.core.supervisor import RunAborted
from repro.corpus.profiles import PROFILES, build_filesystem, profile_names
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.faults.plan import plan_names
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

__all__ = ["build_parser", "main"]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-checksums",
        description="Reproduction of 'Performance of Checksums and CRCs over "
        "Real Data' (SIGCOMM 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list available checksum/CRC algorithms")

    sub.add_parser("profiles", help="list synthetic filesystem profiles")

    p_sum = sub.add_parser("sum", help="checksum one or more files")
    p_sum.add_argument("files", nargs="+")
    p_sum.add_argument("--algorithm", "-a", default="internet",
                       choices=available_algorithms())

    p_run = sub.add_parser("run", help="regenerate a paper table or figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--bytes", type=int, default=None,
                       help="synthetic filesystem size in bytes")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--svg", metavar="PATH", default=None,
                       help="for figure experiments: also write an SVG chart")
    _add_cache_arguments(p_run)
    p_run.add_argument("--workers", type=int, default=None,
                       help="fan splice runs out over N processes")

    p_report = sub.add_parser(
        "report", help="regenerate every experiment into one Markdown file"
    )
    p_report.add_argument("--output", "-o", default="report.md")
    p_report.add_argument("--bytes", type=int, default=400_000)
    p_report.add_argument("--seed", type=int, default=3)
    p_report.add_argument("--only", nargs="*", default=None,
                          help="restrict to these experiment ids")
    _add_cache_arguments(p_report)
    p_report.add_argument("--workers", type=int, default=None,
                          help="fan splice runs out over N processes")

    p_splice = sub.add_parser("splice", help="run a custom splice simulation")
    p_splice.add_argument("--profile", default="stanford-u1",
                          choices=profile_names())
    p_splice.add_argument("--bytes", type=int, default=500_000)
    p_splice.add_argument("--seed", type=int, default=3)
    p_splice.add_argument("--mss", type=int, default=256)
    p_splice.add_argument("--algorithm", default="tcp",
                          choices=["tcp", "fletcher255", "fletcher256"])
    p_splice.add_argument("--placement", default="header",
                          choices=[p.value for p in ChecksumPlacement])
    p_splice.add_argument("--workers", type=int, default=None,
                          help="fan files out over N processes")
    _add_cache_arguments(p_splice)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the artifact store"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser("stats", help="per-namespace object counts")
    p_audit = cache_sub.add_parser(
        "audit", help="re-verify every stored object's integrity trailer"
    )
    p_audit.add_argument("--evict", action="store_true",
                         help="delete corrupt objects so runs recompute them")
    p_clear = cache_sub.add_parser("clear", help="delete every stored object")
    for p in (p_stats, p_audit, p_clear):
        p.add_argument("--cache-dir", default=None,
                       help="store root (default: $REPRO_CHECKSUMS_CACHE or "
                            "~/.cache/repro-checksums)")

    p_chaos = sub.add_parser(
        "chaos",
        help="run a sweep under fault injection; verify counters survive",
    )
    p_chaos.add_argument("--profile", default="stanford-u1",
                         choices=profile_names())
    p_chaos.add_argument("--bytes", type=int, default=120_000)
    p_chaos.add_argument("--seed", type=int, default=3)
    p_chaos.add_argument("--mss", type=int, default=256)
    p_chaos.add_argument("--plan", default="monkey", choices=plan_names(),
                         help="named fault plan (default: monkey)")
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault schedule (replayable)")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="pool width for the chaotic pass")
    p_chaos.add_argument("--cache-dir", default=None,
                         help="root for the chaotic run's stores "
                              "(default: a fresh temp directory)")

    p_transfer = sub.add_parser(
        "transfer", help="simulate a reliable transfer over a lossy link"
    )
    p_transfer.add_argument("--profile", default="pathological-gmon",
                            choices=profile_names())
    p_transfer.add_argument("--bytes", type=int, default=100_000)
    p_transfer.add_argument("--loss", type=float, default=0.25)
    p_transfer.add_argument("--no-crc", action="store_true",
                            help="rely on the TCP checksum alone")
    p_transfer.add_argument("--seed", type=int, default=2)
    return parser


def _add_cache_arguments(parser):
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="serve repeat runs from the artifact store")
    parser.add_argument("--cache-dir", default=None,
                        help="store root (default: $REPRO_CHECKSUMS_CACHE or "
                             "~/.cache/repro-checksums)")


def _make_store(args):
    """A RunStore when ``--cache`` was requested, else None."""
    if not getattr(args, "cache", False):
        return None
    from repro.store.runner import RunStore

    return RunStore(args.cache_dir)


def _cmd_algorithms():
    from repro.checksums.crc import CRCEngine

    for name in available_algorithms():
        algorithm = get_algorithm(name)
        kind = "CRC" if isinstance(algorithm, CRCEngine) else "checksum"
        print("%-14s %2d-bit %s" % (name, algorithm.bits, kind))
    return 0


def _cmd_profiles():
    for name in profile_names():
        profile = PROFILES[name]
        print("%-22s %s" % (name, profile.description))
    return 0


def _cmd_sum(args):
    algorithm = get_algorithm(args.algorithm)
    for path in args.files:
        with open(path, "rb") as handle:
            data = handle.read()
        width = (algorithm.bits + 3) // 4
        print("%0*x  %s" % (width, algorithm.compute(data), path))
    return 0


def _cmd_run(args):
    kwargs = {}
    if args.bytes is not None and args.experiment != "epd":
        kwargs["fs_bytes"] = args.bytes
    if args.seed is not None and args.experiment != "epd":
        kwargs["seed"] = args.seed
    report = run_experiment(
        args.experiment, cache=_make_store(args), workers=args.workers, **kwargs
    )
    print(report)
    if args.svg:
        from repro.experiments.svg import write_figure_svg

        write_figure_svg(report, args.svg)
        print("\nSVG written to %s" % args.svg)
    return 0


def _cmd_report(args):
    from repro.experiments.markdown import generate_markdown_report

    document = generate_markdown_report(
        experiment_ids=args.only,
        fs_bytes=args.bytes,
        seed=args.seed,
        cache=_make_store(args),
        workers=args.workers,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print("wrote %s (%d bytes)" % (args.output, len(document)))
    return 0


def _cmd_splice(args):
    from repro.core.experiment import run_splice_experiment

    config = PacketizerConfig(
        mss=args.mss,
        algorithm=args.algorithm,
        placement=ChecksumPlacement(args.placement),
    )
    fs = build_filesystem(args.profile, args.bytes, args.seed)
    result = run_splice_experiment(
        fs, config, workers=args.workers, store=_make_store(args)
    )
    c = result.counters
    print("filesystem         %s (%d bytes, %d files)" % (
        fs.name, fs.total_bytes, len(fs)))
    print("transport          %s (%s placement)" % (
        args.algorithm, args.placement))
    print("total splices      %d" % c.total)
    print("caught by header   %d (%.2f%%)" % (c.caught_by_header,
                                              c.caught_by_header_pct))
    print("identical data     %d" % c.identical)
    print("remaining          %d" % c.remaining)
    print("missed (transport) %d (%.4f%% of remaining)" % (
        c.missed_transport, c.miss_rate_transport))
    print("missed (CRC-32)    %d" % c.missed_crc32)
    print("effective bits     %.1f" % c.effective_bits)
    return 0


def _cmd_cache(args):
    from repro.store.audit import audit_run_store
    from repro.store.runner import RunStore

    store = RunStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        print("root               %s" % stats["root"])
        total_objects = total_bytes = 0
        for name, _ in store.namespaces:
            entry = stats[name]
            total_objects += entry["objects"]
            total_bytes += entry["bytes"]
            print("%-11s %8d objects %12d bytes" % (
                name, entry["objects"], entry["bytes"]))
        print("%-11s %8d objects %12d bytes" % (
            "total", total_objects, total_bytes))
        return 0
    if args.cache_command == "audit":
        report = audit_run_store(store, evict=args.evict)
        print(report.render())
        return 0 if report.clean else 1
    if args.cache_command == "clear":
        removed = store.clear()
        print("removed %d objects from %s" % (removed, store.root))
        return 0
    return 1


def _cmd_chaos(args):
    """Dogfood the paper's thesis: inject faults, detect, survive.

    Three sweeps over the same corpus:

    1. a **clean** baseline (no store, no faults);
    2. a **chaotic populate** pass: supervised pool + fault-wrapped
       store, fresh root — worker crashes and write faults land here;
    3. a **chaotic resume** pass over the same root — read-side
       corruption (bit flips, torn reads) hits the now-populated
       store, exercising evict-and-recompute.

    Exit 0 iff both chaotic passes produce counters bit-identical to
    the baseline and the fault plan replays deterministically.
    """
    import tempfile
    from pathlib import Path

    from repro.core.experiment import run_splice_experiment
    from repro.core.supervisor import RunHealth
    from repro.faults.injector import wrap_run_store
    from repro.faults.plan import named_plan
    from repro.store.runner import RunStore

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    config = PacketizerConfig(mss=args.mss)
    print("chaos plan         %s (fault seed %d)" % (args.plan, args.fault_seed))
    print("corpus             %s (%d bytes, %d files)" % (
        fs.name, fs.total_bytes, len(fs)))

    clean = run_splice_experiment(fs, config)

    root = Path(args.cache_dir) if args.cache_dir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    health = RunHealth()
    passes = []
    for label, workers in (("populate", args.workers), ("resume", None)):
        plan = named_plan(args.plan, seed=args.fault_seed)
        pass_health = RunHealth()
        store = wrap_run_store(RunStore(root / "store"), plan, pass_health)
        result = run_splice_experiment(
            fs, config, workers=workers, store=store,
            faults=plan, health=pass_health,
        )
        passes.append((label, result, plan, pass_health))
        health.merge(pass_health)

    replay_ok = (
        named_plan(args.plan, seed=args.fault_seed).preview()
        == named_plan(args.plan, seed=args.fault_seed).preview()
    )

    identical = True
    print("total splices      %d" % clean.counters.total)
    for label, result, plan, pass_health in passes:
        match = result.counters == clean.counters
        identical = identical and match
        print("%-18s %s (%s)" % (
            label,
            "counters identical" if match else "COUNTERS DIVERGED",
            pass_health.summary(),
        ))
    print("plan replay        %s" % ("deterministic" if replay_ok else "BROKEN"))
    print(health.render())
    print("store root         %s" % root)
    ok = identical and replay_ok
    print("verdict            %s" % (
        "faults cost time, never correctness" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_transfer(args):
    from repro.protocols.cellstream import IndependentLoss
    from repro.sim import simulate_file_transfer

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    report = None
    for file in fs:
        part = simulate_file_transfer(
            file.data, IndependentLoss(args.loss),
            use_crc=not args.no_crc, seed=args.seed,
        )
        report = part if report is None else _merge_reports(report, part)
    print("packets              %d" % report.packets)
    print("transmissions        %d (%.2f per packet)" % (
        report.transmissions, report.retransmission_ratio))
    print("frames rejected      %d" % report.frames_rejected)
    print("delivered clean      %d" % report.delivered_clean)
    print("silently corrupted   %d" % report.delivered_corrupted)
    print("gave up              %d" % report.gave_up)
    return 0


def _merge_reports(a, b):
    from repro.sim import TransferReport

    merged = TransferReport()
    for name in merged.__dataclass_fields__:
        setattr(merged, name, getattr(a, name) + getattr(b, name))
    return merged


def _dispatch(args):
    if args.command == "algorithms":
        return _cmd_algorithms()
    if args.command == "profiles":
        return _cmd_profiles()
    if args.command == "sum":
        return _cmd_sum(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "splice":
        return _cmd_splice(args)
    if args.command == "transfer":
        return _cmd_transfer(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return 1


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except RunAborted as exc:
        # Every rung of the degradation ladder failed: one line, no
        # traceback — the diagnostic is the message.
        print("repro-checksums: run aborted: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
