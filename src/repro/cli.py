"""Command-line interface: ``repro-checksums``.

Subcommands:

* ``algorithms`` -- list the registered checksum/CRC algorithms.
* ``profiles`` -- list the synthetic filesystem profiles.
* ``sum FILE [FILE...]`` -- checksum files with a chosen algorithm.
* ``run EXPERIMENT`` -- regenerate a paper table or figure (``--svg``
  writes the chart for figure experiments; ``--cache`` serves repeats
  from the artifact store, ``--workers N`` fans out splice runs).
* ``report`` -- regenerate every experiment into one Markdown file.
* ``splice`` -- run a custom splice simulation over a profile.
* ``transfer`` -- simulate a reliable transfer over a lossy link
  (exit 4 when retry exhaustion left delivery incomplete).
* ``channel run|replay|plans`` -- the timed discrete-event channel:
  sweep a corpus through a named impairment plan under ARQ recovery
  (``--trace`` records a replayable trace; exit 4 on degraded
  delivery), re-run a recorded trace and verify every event and
  checksum verdict reproduces (exit 1 on divergence, 2 on a tampered
  trace), or list the named plans.
* ``cache stats|audit|clear`` -- inspect, integrity-audit, or empty the
  content-addressed artifact store (default root
  ``~/.cache/repro-checksums``, overridable with ``--cache-dir`` or
  ``$REPRO_CHECKSUMS_CACHE``); ``stats`` includes the per-backend
  hit/miss/byte counters.
* ``store serve|scrub|flush-spool`` -- run the ``repro-store/1`` HTTP
  server over a store root (or any backend URL); the CRC scrubber:
  walk a backend re-verifying integrity trailers, quarantine corrupt
  objects, repair them from healthy replicas; and the degraded-mode
  spool drain: replay writes queued locally during a remote-store
  outage (exit 0 once the spool is empty, 1 while entries remain).
* ``chaos`` -- run a splice sweep under a named fault-injection plan
  (worker crashes, store bit rot, ENOSPC, ...) and assert the final
  counters are bit-identical to a fault-free run.
* ``bench`` -- run the fixed benchmark workload matrix (algorithms x
  placements x corpus sizes) and write a schema-versioned
  ``BENCH_<n>.json`` snapshot plus a delta table vs the previous one.
* ``lint`` -- run reprolint, the domain-aware static analysis that
  enforces the repo's determinism/concurrency/layering/crash-
  consistency invariants (``--format json|md``, ``--fix-baseline``).

``run``/``report``/``splice``/``chaos`` accept ``--metrics DEST``:
telemetry (span timings, counters, throughput meters, latency
histograms) is collected for the run and written as JSON or markdown
to stdout (``--metrics json``/``--metrics md``) or to a file path.

``run``/``splice``/``chaos``/``channel`` run under a sweep guard:
``--shard-timeout`` arms the supervisor's per-shard timeout rung,
``--deadline`` stops a sweep cleanly at a shard boundary once the time
budget is spent (partial report, exit 3), SIGINT/SIGTERM stop it
checkpointed (exit ``128 + signum``: 130/143), and — on ``run`` and
``splice`` — ``--journal`` (default on) checkpoints completed shards
so ``--resume`` continues an interrupted sweep bit-identically.

Flags shared between subcommands (``--bytes``/``--seed``,
``--workers``, ``--cache``/``--cache-dir``, ``--metrics``) are defined
once as argparse *parent* parsers -- per-subcommand defaults differ,
so the builders below take the defaults as parameters.

Layering contract (enforced by reprolint REP301): this module imports
project code only through the stable :mod:`repro.api` facade -- plus
:mod:`repro.lint`, the tooling layer above the domain code.  Only what
building the parser itself needs (subcommand ``choices``) is imported
eagerly; everything else loads inside its handler so a warm
``--cache`` hit never imports the splice engine (REP303).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    algorithm_names,
    channel_plan_names,
    experiment_ids,
    open_store,
    plan_names,
    profile_names,
    run_experiment,
    sum_file,
)

#: ``[p.value for p in ChecksumPlacement]``, spelled literally so parser
#: construction does not import the packetizer (and with it numpy) on
#: every CLI start-up; ``tests/test_cli.py`` pins the equivalence.
_PLACEMENT_CHOICES = ("header", "trailer")

#: ``repro.channel.arq.ARQ_KINDS``, spelled literally for the same
#: reason; ``tests/channel/test_cli.py`` pins the equivalence.
_ARQ_CHOICES = ("stop-and-wait", "go-back-n", "selective-repeat")

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# shared flag groups (argparse parent parsers)

def _corpus_parent(bytes_default, seed_default):
    """``--bytes``/``--seed``: the synthetic corpus of a run."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--bytes", type=int, default=bytes_default,
                        help="synthetic filesystem size in bytes")
    parent.add_argument("--seed", type=int, default=seed_default)
    return parent


def _workers_parent(default=None,
                    help_text="fan splice runs out over N processes"):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--workers", type=int, default=default,
                        help=help_text)
    return parent


def _store_url_spec(value):
    """Argparse type: syntax-check a ``--store-url`` spec at parse time.

    Mirrors the grammar of ``repro.store.backends.open_store_url`` so a
    typo'd scheme is an argparse error (exit 2, one line) instead of a
    traceback when the backend first opens.
    """
    spec = value
    if spec.startswith("stripe:"):
        spec = spec[len("stripe:"):]
    for part in spec.split(","):
        part = part.strip()
        if part.startswith("readonly+"):
            part = part[len("readonly+"):]
        if not part:
            raise argparse.ArgumentTypeError(
                "empty replica in store URL %r" % value
            )
        scheme, sep, _ = part.partition("://")
        if sep and scheme not in ("file", "http", "memory"):
            raise argparse.ArgumentTypeError(
                "unsupported store URL scheme %r (known: file, http, "
                "memory)" % scheme
            )
    return value


def _cache_parent(toggle=True):
    """``--cache``/``--cache-dir``/``--store-url``: a run's store."""
    parent = argparse.ArgumentParser(add_help=False)
    if toggle:
        parent.add_argument("--cache", action=argparse.BooleanOptionalAction,
                            default=False,
                            help="serve repeat runs from the artifact store")
    parent.add_argument("--cache-dir", default=None,
                        help="store root (default: $REPRO_CHECKSUMS_CACHE or "
                             "~/.cache/repro-checksums)")
    parent.add_argument("--store-url", default=None, metavar="SPEC",
                        type=_store_url_spec,
                        help="artifact store backend instead of a local "
                             "root: a path, file://, memory://[name], or "
                             "http:// URL; comma-separate replicas for a "
                             "resilient multiplexer, prefix 'stripe:' to "
                             "stripe (implies --cache)")
    parent.add_argument("--store-timeout", type=_positive_seconds,
                        metavar="SECONDS", default=None,
                        help="per-operation timeout for remote store "
                             "backends (default: 10 seconds)")
    return parent


def _positive_seconds(text):
    """Argparse type: a strictly positive float number of seconds."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a number of seconds, got %r" % text
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be > 0 seconds, got %s" % text
        )
    return value


def _sweep_parent(journal=True):
    """``--shard-timeout``/``--deadline`` (+ journal/resume knobs)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--shard-timeout", type=_positive_seconds,
                        metavar="SECONDS", default=None,
                        help="condemn and respawn a worker pool when one "
                             "shard exceeds this many seconds")
    parent.add_argument("--deadline", type=_positive_seconds,
                        metavar="SECONDS", default=None,
                        help="stop the sweep cleanly at a shard boundary "
                             "once this time budget is spent (partial "
                             "report, exit 3)")
    if journal:
        parent.add_argument("--journal",
                            action=argparse.BooleanOptionalAction,
                            default=True,
                            help="checkpoint completed shards so an "
                                 "interrupted sweep can --resume")
        parent.add_argument("--resume",
                            action=argparse.BooleanOptionalAction,
                            default=False,
                            help="merge a fingerprint-matching sweep "
                                 "journal before dispatching shards")
    return parent


def _engine_parent():
    """``--engine``: the splice evaluation path."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--engine", default="batch",
                        choices=["batch", "scalar", "auto"],
                        help="splice evaluation path: 'batch' (vectorized "
                             "kernels, the default), 'scalar' (byte-at-a-"
                             "time reference receiver, bit-identical and "
                             "far slower), or 'auto'")
    return parent


def _metrics_parent():
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--metrics", metavar="DEST", default=None,
                        help="collect run telemetry and write it: 'json' or "
                             "'md' print to stdout; any other value is a "
                             "file path (.json suffix -> JSON, else "
                             "markdown)")
    return parent


def _profile_parent(default):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--profile", default=default,
                        choices=profile_names())
    return parent


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-checksums",
        description="Reproduction of 'Performance of Checksums and CRCs over "
        "Real Data' (SIGCOMM 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list available checksum/CRC algorithms")

    sub.add_parser("profiles", help="list synthetic filesystem profiles")

    p_sum = sub.add_parser("sum", help="checksum one or more files")
    p_sum.add_argument("files", nargs="+")
    p_sum.add_argument("--algorithm", "-a", default="internet",
                       choices=algorithm_names())

    p_run = sub.add_parser(
        "run", help="regenerate a paper table or figure",
        parents=[_corpus_parent(None, None), _cache_parent(),
                 _workers_parent(), _engine_parent(), _metrics_parent(),
                 _sweep_parent()],
    )
    p_run.add_argument("experiment", choices=sorted(experiment_ids()))
    p_run.add_argument("--svg", metavar="PATH", default=None,
                       help="for figure experiments: also write an SVG chart")

    p_report = sub.add_parser(
        "report", help="regenerate every experiment into one Markdown file",
        parents=[_corpus_parent(400_000, 3), _cache_parent(),
                 _workers_parent(), _metrics_parent()],
    )
    p_report.add_argument("--output", "-o", default="report.md")
    p_report.add_argument("--only", nargs="*", default=None,
                          help="restrict to these experiment ids")

    p_splice = sub.add_parser(
        "splice", help="run a custom splice simulation",
        parents=[_profile_parent("stanford-u1"), _corpus_parent(500_000, 3),
                 _cache_parent(),
                 _workers_parent(help_text="fan files out over N processes"),
                 _engine_parent(), _metrics_parent(), _sweep_parent()],
    )
    p_splice.add_argument("--mss", type=int, default=256)
    p_splice.add_argument("--algorithm", default="tcp",
                          choices=["tcp", "fletcher255", "fletcher256"])
    p_splice.add_argument("--placement", default="header",
                          choices=list(_PLACEMENT_CHOICES))

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the artifact store"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", parents=[_cache_parent(toggle=False)],
                         help="per-namespace object counts")
    p_audit = cache_sub.add_parser(
        "audit", parents=[_cache_parent(toggle=False)],
        help="re-verify every stored object's integrity trailer",
    )
    p_audit.add_argument("--evict", action="store_true",
                         help="delete corrupt objects so runs recompute them")
    cache_sub.add_parser("clear", parents=[_cache_parent(toggle=False)],
                         help="delete every stored object")

    p_store = sub.add_parser(
        "store", help="network store service and CRC scrubber"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_serve = store_sub.add_parser(
        "serve", help="serve an artifact store over HTTP (repro-store/1)"
    )
    p_serve.add_argument("--root", default=None,
                         help="store root directory to serve (default: "
                              "$REPRO_CHECKSUMS_CACHE or "
                              "~/.cache/repro-checksums)")
    p_serve.add_argument("--store-url", default=None, metavar="SPEC",
                         type=_store_url_spec,
                         help="serve this backend instead of a local root "
                              "(e.g. memory://shared)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8970,
                         help="listening port (0 picks an ephemeral one)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each request to stderr")
    p_scrub = store_sub.add_parser(
        "scrub", parents=[_cache_parent(toggle=False)],
        help="re-verify every trailer; quarantine, repair from replicas",
    )
    p_scrub.add_argument("--quarantine", metavar="DIR", default=None,
                         help="salvage corrupt frames into this directory "
                              "before evicting them")
    p_scrub.add_argument("--repair", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="rewrite corrupt objects from a healthy "
                              "replica (multiplexed stores)")
    store_sub.add_parser(
        "flush-spool", parents=[_cache_parent(toggle=False)],
        help="replay writes spooled during a remote-store outage "
             "(exit 0 when the spool ends up empty, 1 otherwise)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a sweep under fault injection; verify counters survive",
        parents=[_profile_parent("stanford-u1"), _corpus_parent(120_000, 3),
                 _workers_parent(2, "pool width for the chaotic pass"),
                 _metrics_parent(), _sweep_parent(journal=False)],
    )
    p_chaos.add_argument("--mss", type=int, default=256)
    p_chaos.add_argument("--plan", default="monkey", choices=plan_names(),
                         help="named fault plan (default: monkey)")
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault schedule (replayable)")
    p_chaos.add_argument("--cache-dir", default=None,
                         help="root for the chaotic run's stores "
                              "(default: a fresh temp directory)")

    p_transfer = sub.add_parser(
        "transfer", help="simulate a reliable transfer over a lossy link",
        parents=[_profile_parent("pathological-gmon"),
                 _corpus_parent(100_000, 2)],
    )
    p_transfer.add_argument("--loss", type=float, default=0.25)
    p_transfer.add_argument("--no-crc", action="store_true",
                            help="rely on the TCP checksum alone")

    p_channel = sub.add_parser(
        "channel",
        help="timed channel simulation with ARQ recovery "
             "(run | replay | plans)",
    )
    channel_sub = p_channel.add_subparsers(dest="channel_command",
                                           required=True)
    channel_sub.add_parser("plans", help="list the named channel plans")
    p_crun = channel_sub.add_parser(
        "run",
        help="sweep a corpus through a simulated link under ARQ "
             "(exit 4 when delivery degraded)",
        parents=[_profile_parent("nsc05"), _corpus_parent(120_000, 2),
                 _cache_parent(),
                 _workers_parent(help_text="fan files out over N processes"),
                 _metrics_parent(), _sweep_parent()],
    )
    p_crun.add_argument("--plan", default="bursty-link",
                        choices=channel_plan_names(),
                        help="named channel plan (default: bursty-link)")
    p_crun.add_argument("--channel-seed", type=int, default=0,
                        help="seed of the channel's impairment streams")
    p_crun.add_argument("--arq", default="go-back-n", choices=_ARQ_CHOICES,
                        help="ARQ discipline (default: go-back-n)")
    p_crun.add_argument("--window", type=int, default=8,
                        help="sender window in frames")
    p_crun.add_argument("--timeout", type=float, default=64.0,
                        help="initial retransmission timeout in ticks")
    p_crun.add_argument("--budget", type=int, default=8,
                        help="retransmission budget per frame; exhausting "
                             "it abandons the frame (degraded, exit 4)")
    p_crun.add_argument("--algorithm", default="tcp",
                        choices=["tcp", "fletcher255", "fletcher256"])
    p_crun.add_argument("--no-crc", action="store_true",
                        help="drop the AAL5 CRC from the receiver's stack")
    p_crun.add_argument("--mss", type=int, default=256)
    p_crun.add_argument("--trace", metavar="PATH", default=None,
                        help="record the run as a replayable trace file")
    p_creplay = channel_sub.add_parser(
        "replay",
        help="re-run a recorded trace; exit 0 iff every event and "
             "verdict reproduces (1 diverged, 2 unreadable/tampered)",
        parents=[_workers_parent(help_text="worker count for the replay "
                                           "(the result must not depend "
                                           "on it)")],
    )
    p_creplay.add_argument("trace", help="trace file written by "
                                         "'channel run --trace'")

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark workload matrix, write BENCH_<n>.json",
        parents=[_engine_parent()],
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="smaller matrix for CI smoke runs")
    p_bench.add_argument("--out", default=".", metavar="DIR",
                         help="directory for BENCH_<n>.json snapshots "
                              "(default: current directory)")
    p_bench.add_argument("--check", metavar="PATH", default=None,
                         help="validate an existing snapshot against the "
                              "bench schema and exit (CI drift gate)")

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo's domain-aware static analysis",
    )
    p_lint.add_argument("paths", nargs="*", default=None,
                        help="source roots to scan (default: ./src if it "
                             "exists, else .)")
    p_lint.add_argument("--format", dest="fmt", default="text",
                        choices=["text", "json", "md", "sarif"],
                        help="report format (default: text)")
    p_lint.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: "
                             ".reprolint-baseline.json if present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore the committed baseline")
    p_lint.add_argument("--fix-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    p_lint.add_argument("--rules", metavar="IDS", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--cache", metavar="PATH", default=None,
                        help="incremental result cache: unchanged "
                             "files replay their stored findings")
    p_lint.add_argument("--contract", metavar="PATH", default=None,
                        help="layer contract for REP311 (default: "
                             ".reprolint.toml if present)")
    p_lint.add_argument("--no-contract", action="store_true",
                        help="skip the layer contract even if "
                             ".reprolint.toml exists")
    return parser


def _store_kwargs(args, url):
    """``open_store`` kwargs for a ``--store-url`` spec."""
    kwargs = {"url": url, "root": getattr(args, "cache_dir", None)}
    timeout = getattr(args, "store_timeout", None)
    if timeout is not None:
        kwargs["timeout"] = timeout
    return kwargs


def _make_store(args):
    """A RunStore when ``--cache``/``--store-url`` was requested, else None."""
    url = getattr(args, "store_url", None)
    if url:
        return open_store(**_store_kwargs(args, url))
    if not getattr(args, "cache", False):
        return None
    return open_store(args.cache_dir)


def _open_cache_store(args):
    """The store a maintenance command operates on (always opens one)."""
    url = getattr(args, "store_url", None)
    if url:
        return open_store(**_store_kwargs(args, url))
    return open_store(args.cache_dir)


def _cmd_algorithms():
    from repro.api import algorithm_summaries

    for name, width, kind in algorithm_summaries():
        print("%-14s %2d-bit %s" % (name, width, kind))
    return 0


def _cmd_profiles():
    from repro.api import profile_summaries

    for name, description in profile_summaries():
        print("%-22s %s" % (name, description))
    return 0


def _cmd_sum(args):
    from repro.api import algorithm_summaries

    width = dict(
        (name, bits) for name, bits, _ in algorithm_summaries()
    )[args.algorithm]
    hex_digits = (width + 3) // 4
    for path in args.files:
        print("%0*x  %s" % (hex_digits, sum_file(path, args.algorithm), path))
    return 0


def _cmd_run(args):
    kwargs = {}
    if args.bytes is not None and args.experiment != "epd":
        kwargs["fs_bytes"] = args.bytes
    if args.seed is not None and args.experiment != "epd":
        kwargs["seed"] = args.seed
    report = run_experiment(
        args.experiment,
        cache=_make_store(args),
        workers=args.workers,
        engine=args.engine,
        **kwargs,
    )
    print(report)
    if args.svg:
        from repro.api import write_figure_svg

        write_figure_svg(report, args.svg)
        print("\nSVG written to %s" % args.svg)
    return 0


def _cmd_report(args):
    from repro.api import generate_markdown_report

    document = generate_markdown_report(
        experiment_ids=args.only,
        fs_bytes=args.bytes,
        seed=args.seed,
        cache=_make_store(args),
        workers=args.workers,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print("wrote %s (%d bytes)" % (args.output, len(document)))
    return 0


def _cmd_splice(args):
    from repro.api import (
        ChecksumPlacement,
        PacketizerConfig,
        build_filesystem,
        run_splice_experiment,
    )

    config = PacketizerConfig(
        mss=args.mss,
        algorithm=args.algorithm,
        placement=ChecksumPlacement(args.placement),
    )
    fs = build_filesystem(args.profile, args.bytes, args.seed)
    result = run_splice_experiment(
        fs, config, workers=args.workers, store=_make_store(args),
        engine=args.engine,
    )
    c = result.counters
    print("filesystem         %s (%d bytes, %d files)" % (
        fs.name, fs.total_bytes, len(fs)))
    print("transport          %s (%s placement)" % (
        args.algorithm, args.placement))
    print("engine             %s" % result.options.engine)
    print("total splices      %d" % c.total)
    print("caught by header   %d (%.2f%%)" % (c.caught_by_header,
                                              c.caught_by_header_pct))
    print("identical data     %d" % c.identical)
    print("remaining          %d" % c.remaining)
    print("missed (transport) %d (%.4f%% of remaining)" % (
        c.missed_transport, c.miss_rate_transport))
    print("missed (CRC-32)    %d" % c.missed_crc32)
    print("effective bits     %.1f" % c.effective_bits)
    if result.health.eventful:
        print(result.health.render())
    return 0


def _cmd_cache(args):
    from repro.api import audit_run_store

    store = _open_cache_store(args)
    if args.cache_command == "stats":
        stats = store.stats()
        print("root               %s" % stats["root"])
        total_objects = total_bytes = 0
        for name, _ in store.namespaces:
            entry = stats[name]
            total_objects += entry["objects"]
            total_bytes += entry["bytes"]
            print("%-11s %8d objects %12d bytes" % (
                name, entry["objects"], entry["bytes"]))
        print("%-11s %8d objects %12d bytes" % (
            "total", total_objects, total_bytes))
        print("")
        print("backend counters (this process):")
        for name, entry in store.backend_stats().items():
            _print_backend_counters(name, entry)
        _print_resilience(store.resilience_stats())
        return 0
    if args.cache_command == "audit":
        report = audit_run_store(store, evict=args.evict)
        print(report.render())
        return 0 if report.clean else 1
    if args.cache_command == "clear":
        removed = store.clear()
        print("removed %d objects from %s" % (removed, store.describe()))
        return 0
    return 1


def _print_backend_counters(name, entry, indent=""):
    c = entry["counters"]
    print("%s%-11s %-9s %4d gets (%d hits/%d misses) %4d puts "
          "%10d B read %10d B written %d errors" % (
              indent, name, entry["kind"], c["gets"], c["hits"], c["misses"],
              c["puts"], c["bytes_read"], c["bytes_written"], c["errors"]))
    for child in entry.get("children", ()):
        _print_backend_counters("- " + child["kind"], child,
                                indent=indent + "  ")


def _print_resilience(stats):
    """Render a ``resilience_stats()`` snapshot (no-op when None)."""
    if not stats:
        return
    print("")
    print("resilience (this process):")
    for breaker in stats.get("breakers", ()):
        print("  breaker %-9s %s  (%d ok/%d failed/%d slow)" % (
            breaker["state"], breaker["name"], breaker["successes"],
            breaker["failures"], breaker["slow_reads"]))
        for transition in breaker["transitions"]:
            print("    op %-6d %s -> %s (%s)" % (
                transition["op"], transition["from"], transition["to"],
                transition["reason"]))
    spool = stats.get("spool")
    if spool is not None:
        print("  spool   %d pending write(s), %d bytes, at %s" % (
            spool["entries"], spool["bytes"], spool["dir"]))


def _cmd_store(args):
    if args.store_command == "serve":
        from repro.api import open_backend, serve_store

        backend = open_backend(args.store_url) if args.store_url else None
        server = serve_store(root=args.root, backend=backend,
                             host=args.host, port=args.port,
                             verbose=args.verbose)
        print("repro-store %s serving %s" % (
            server.url, server.backend.describe()), flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - operator stop
            pass
        finally:
            server.server_close()
        return 0
    if args.store_command == "scrub":
        from repro.api import scrub_run_store

        store = _open_cache_store(args)
        print("store              %s" % store.describe())
        report = scrub_run_store(store, repair=args.repair,
                                 quarantine=args.quarantine)
        print(report.render())
        _print_resilience(store.resilience_stats())
        return 0 if report.unrepairable == 0 else 1
    if args.store_command == "flush-spool":
        store = _open_cache_store(args)
        print("store              %s" % store.describe())
        report = store.drain_spool()
        if report is None:
            print("no write spool configured for this store")
            return 0
        print(report.render())
        return 0 if report.clean else 1
    return 1


def _cmd_chaos(args):
    """Dogfood the paper's thesis: inject faults, detect, survive.

    Three sweeps over the same corpus:

    1. a **clean** baseline (no store, no faults);
    2. a **chaotic populate** pass: supervised pool + fault-wrapped
       store, fresh root — worker crashes and write faults land here;
    3. a **chaotic resume** pass over the same root — read-side
       corruption (bit flips, torn reads) hits the now-populated
       store, exercising evict-and-recompute.

    Exit 0 iff both chaotic passes produce counters bit-identical to
    the baseline and the fault plan replays deterministically.
    """
    import tempfile
    from pathlib import Path

    from repro.api import (
        PacketizerConfig,
        RunHealth,
        build_filesystem,
        named_plan,
        run_splice_experiment,
        wrap_run_store,
    )

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    config = PacketizerConfig(mss=args.mss)
    print("chaos plan         %s (fault seed %d)" % (args.plan, args.fault_seed))
    print("corpus             %s (%d bytes, %d files)" % (
        fs.name, fs.total_bytes, len(fs)))

    clean = run_splice_experiment(fs, config)

    root = Path(args.cache_dir) if args.cache_dir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    health = RunHealth()
    passes = []
    for label, workers in (("populate", args.workers), ("resume", None)):
        plan = named_plan(args.plan, seed=args.fault_seed)
        pass_health = RunHealth()
        store = wrap_run_store(open_store(root / "store"), plan, pass_health)
        result = run_splice_experiment(
            fs, config, workers=workers, store=store,
            faults=plan, health=pass_health,
        )
        passes.append((label, result, plan, pass_health))
        health.merge(pass_health)

    replay_ok = (
        named_plan(args.plan, seed=args.fault_seed).preview()
        == named_plan(args.plan, seed=args.fault_seed).preview()
    )

    # A plan paired with a channel regime also proves the *link* is
    # replayable: two transfers under the same channel plan must agree
    # event-for-event (clean-vs-chaotic store state cannot leak in).
    channel_name = named_plan(args.plan, seed=args.fault_seed).channel
    channel_ok = True
    if channel_name:
        from repro.api import named_channel_plan, run_channel_transfer

        channel_plan = named_channel_plan(channel_name, seed=args.fault_seed)
        data = fs.files[0].data
        first_events, second_events = [], []
        first = run_channel_transfer(
            data, channel_plan, trace_events=first_events
        )
        second = run_channel_transfer(
            data, channel_plan, trace_events=second_events
        )
        channel_ok = (
            first_events == second_events
            and first.to_dict() == second.to_dict()
        )

    identical = True
    print("total splices      %d" % clean.counters.total)
    for label, result, plan, pass_health in passes:
        match = result.counters == clean.counters
        identical = identical and match
        print("%-18s %s (%s)" % (
            label,
            "counters identical" if match else "COUNTERS DIVERGED",
            pass_health.summary(),
        ))
    print("plan replay        %s" % ("deterministic" if replay_ok else "BROKEN"))
    if channel_name:
        print("channel link       %s (%s: %d frames, %d retransmissions)" % (
            "deterministic" if channel_ok else "BROKEN",
            channel_name, first.frames, first.retransmissions))
    print(health.render())
    print("store root         %s" % root)
    ok = identical and replay_ok and channel_ok
    print("verdict            %s" % (
        "faults cost time, never correctness" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_transfer(args):
    from repro.api import IndependentLoss, build_filesystem, simulate_file_transfer

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    report = None
    for file in fs:
        part = simulate_file_transfer(
            file.data, IndependentLoss(args.loss),
            use_crc=not args.no_crc, seed=args.seed,
        )
        report = part if report is None else report + part
    print("packets              %d" % report.packets)
    print("transmissions        %d (%.2f per packet)" % (
        report.transmissions, report.retransmission_ratio))
    print("frames rejected      %d" % report.frames_rejected)
    print("delivered clean      %d" % report.delivered_clean)
    print("silently corrupted   %d" % report.delivered_corrupted)
    print("gave up              %d" % report.gave_up)
    if report.health.eventful:
        print(report.health.render())
    # Retry exhaustion is incomplete delivery, not a footnote: the
    # documented degraded-delivery exit code.
    return 4 if report.gave_up else 0


def _cmd_channel(args):
    if args.channel_command == "plans":
        from repro.api import named_channel_plan

        for name in channel_plan_names():
            plan = named_channel_plan(name)
            knobs = {
                key: value for key, value in sorted(plan.to_dict().items())
                if key not in ("name", "seed") and value
                and value != getattr(type(plan)(), key, None)
            }
            print("%-18s %s" % (name, ", ".join(
                "%s=%s" % (k, v) for k, v in knobs.items()) or "(no "
                "impairments)"))
        return 0
    if args.channel_command == "replay":
        from repro.api import (
            TraceError,
            read_channel_trace,
            replay_channel_trace,
        )

        try:
            payload = read_channel_trace(args.trace)
        except TraceError as exc:
            print("repro-checksums: %s" % exc, file=sys.stderr)
            return 2
        result = replay_channel_trace(payload, workers=args.workers)
        print("trace              %s" % args.trace)
        print("corpus             %s (%s bytes, seed %s)" % (
            payload["corpus"]["profile"], payload["corpus"]["bytes"],
            payload["corpus"].get("seed", 0)))
        print("plan               %s" % payload["plan"].get("name"))
        print("events             %d recorded" % len(payload["events"]))
        print("verdict            %s" % result.describe())
        return 0 if result.identical else 1

    from repro.api import (
        ArqConfig,
        PacketizerConfig,
        RunHealth,
        build_channel_trace,
        build_filesystem,
        named_channel_plan,
        run_channel_sweep,
        write_channel_trace,
    )

    fs = build_filesystem(args.profile, args.bytes, args.seed)
    plan = named_channel_plan(args.plan, seed=args.channel_seed)
    arq = ArqConfig(kind=args.arq, window=args.window,
                    timeout=args.timeout, budget=args.budget)
    config = PacketizerConfig(mss=args.mss, algorithm=args.algorithm)
    use_crc = not args.no_crc
    health = RunHealth()
    events = [] if args.trace else None
    report = run_channel_sweep(
        fs, plan, arq=arq, config=config, use_crc=use_crc,
        workers=args.workers, health=health, store=_make_store(args),
        events_out=events,
    )
    print("corpus             %s (%d bytes, %d files)" % (
        fs.name, fs.total_bytes, len(fs)))
    print("channel plan       %s (seed %d)" % (plan.name, plan.seed))
    print("ARQ                %s (window %d, budget %d)" % (
        arq.kind, arq.window, arq.budget))
    print("frames             %d" % report.frames)
    print("transmissions      %d (%.2f per frame)" % (
        report.transmissions, report.retransmission_ratio))
    print("timeouts           %d" % report.timeouts)
    print("frames rejected    %d (checksum verdicts)" % report.frames_rejected)
    print("delivered clean    %d" % report.delivered_clean)
    print("silently corrupted %d" % report.delivered_corrupted)
    print("frames abandoned   %d" % report.frames_failed)
    print("goodput            %.3f" % report.goodput)
    print("simulated ticks    %d (%d events)" % (report.ticks, report.events))
    if args.trace:
        payload = build_channel_trace(
            plan, arq, config, use_crc,
            {"profile": args.profile, "bytes": args.bytes,
             "seed": args.seed},
            events, report,
        )
        write_channel_trace(args.trace, payload)
        print("trace              %s (%d events)" % (args.trace, len(events)))
    if health.eventful:
        print(health.render())
    # Degraded delivery (abandoned or silently corrupted frames) is
    # the documented exit 4 -- a partial result, not a failure.
    return 4 if report.degraded else 0


def _cmd_bench(args):
    import json

    from repro.api import (
        bench_delta_table,
        latest_bench_snapshot,
        run_bench,
        validate_bench_snapshot,
        write_bench_snapshot,
    )

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate_bench_snapshot(payload)
        except ValueError as exc:
            print("repro-checksums: bench schema drift in %s: %s"
                  % (args.check, exc), file=sys.stderr)
            return 1
        print("%s: schema %s ok (%d algorithms, %d engine rows)" % (
            args.check, payload["schema"],
            len(payload["algorithms"]), len(payload["engine"])))
        return 0

    previous, previous_path = latest_bench_snapshot(args.out)
    payload = run_bench(quick=args.quick, engine=args.engine)
    path = write_bench_snapshot(payload, args.out)
    print("wrote %s (schema %s, %s matrix)" % (
        path, payload["schema"], "quick" if args.quick else "full"))
    print("")
    print(bench_delta_table(previous, payload))
    if previous_path is not None:
        print("\n(delta vs %s)" % previous_path)
    return 0


def _cmd_lint(args):
    from pathlib import Path

    from repro.lint import (
        all_rules,
        load_baseline_entries,
        render_json,
        render_markdown,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )
    from repro.lint.cache import LintCache
    from repro.lint.config import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_CONTRACT_NAME,
        load_contract,
    )

    if args.list_rules:
        for rule in all_rules():
            print("%s %-32s %-8s %s" % (
                rule.id, rule.title, rule.severity, rule.invariant))
        return 0

    paths = list(args.paths or [])
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]

    baseline_path = Path(args.baseline or DEFAULT_BASELINE_NAME)
    baseline = {}
    if not args.no_baseline and not args.fix_baseline:
        try:
            baseline = load_baseline_entries(baseline_path)
        except ValueError as exc:
            print("repro-checksums: %s" % exc, file=sys.stderr)
            return 2

    contract = None
    if not args.no_contract:
        contract_path = Path(args.contract or DEFAULT_CONTRACT_NAME)
        if args.contract or contract_path.is_file():
            try:
                contract = load_contract(contract_path)
            except (OSError, ValueError) as exc:
                print("repro-checksums: %s" % exc, file=sys.stderr)
                return 2

    cache = LintCache(args.cache) if args.cache else None

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]

    try:
        result = run_lint(paths, rules=rules, baseline=baseline,
                          cache=cache, contract=contract,
                          baseline_path=baseline_path)
    except KeyError as exc:
        print("repro-checksums: %s" % exc.args[0], file=sys.stderr)
        return 2

    if args.fix_baseline:
        count = write_baseline(result.findings, baseline_path)
        print("baseline rewritten: %d finding(s) recorded in %s" % (
            count, baseline_path))
        return 0

    renderer = {"text": render_text, "json": render_json,
                "md": render_markdown, "sarif": render_sarif}[args.fmt]
    print(renderer(result))
    return result.exit_code


_COMMANDS = {
    "run": _cmd_run,
    "report": _cmd_report,
    "splice": _cmd_splice,
    "transfer": _cmd_transfer,
    "channel": _cmd_channel,
    "cache": _cmd_cache,
    "store": _cmd_store,
    "chaos": _cmd_chaos,
    "sum": _cmd_sum,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
}


def _dispatch(args):
    if args.command == "algorithms":
        return _cmd_algorithms()
    if args.command == "profiles":
        return _cmd_profiles()
    handler = _COMMANDS.get(args.command)
    return handler(args) if handler else 1


#: Commands dispatched under a sweep guard (signal + deadline control).
_GUARDED_COMMANDS = ("run", "splice", "chaos", "channel")


def _sweep_kwargs(args):
    """``sweep_guard`` kwargs for a guarded command, or None."""
    if args.command not in _GUARDED_COMMANDS:
        return None
    kwargs = {
        "deadline": getattr(args, "deadline", None),
        "shard_timeout": getattr(args, "shard_timeout", None),
        "resume": getattr(args, "resume", False),
    }
    if getattr(args, "journal", False):
        from repro.api import default_journal_dir

        kwargs["journal_dir"] = default_journal_dir(
            getattr(args, "cache_dir", None)
        )
    return kwargs


def main(argv=None):
    args = build_parser().parse_args(argv)
    metrics_dest = getattr(args, "metrics", None)
    if metrics_dest:
        from repro.api import activate_telemetry

        activate_telemetry()
    controller = None
    try:
        guard_kwargs = _sweep_kwargs(args)
        if guard_kwargs is not None:
            from repro.api import sweep_guard

            with sweep_guard(**guard_kwargs) as controller:
                code = _dispatch(args)
        else:
            code = _dispatch(args)
        if controller is not None and controller.deadline_fired and code == 0:
            # The sweep stopped on --deadline: the report above merged
            # only the completed shards; exit 3 marks it partial.
            print(
                "repro-checksums: deadline of %gs exceeded; the report "
                "above is partial (completed shards only)"
                % controller.deadline,
                file=sys.stderr,
            )
            code = 3
        if metrics_dest:
            from repro.api import current_telemetry, write_metrics

            write_metrics(current_telemetry().snapshot(), metrics_dest)
        return code
    except Exception as exc:
        from repro.api import RunAborted, SweepInterrupted

        if isinstance(exc, SweepInterrupted):
            # Stopped on an operator signal, *after* the journal flush:
            # one line saying where, then the conventional signal exit
            # code (130 for SIGINT, 143 for SIGTERM).
            print(
                "repro-checksums: %s; rerun with --resume to continue"
                % exc,
                file=sys.stderr,
            )
            return 128 + (exc.signum or 2)
        if isinstance(exc, RunAborted):
            # Every rung of the degradation ladder failed: one line, no
            # traceback — the diagnostic is the message.
            print("repro-checksums: run aborted: %s" % exc, file=sys.stderr)
            return 2
        raise
    finally:
        if metrics_dest:
            from repro.api import deactivate_telemetry

            deactivate_telemetry()


if __name__ == "__main__":
    sys.exit(main())
