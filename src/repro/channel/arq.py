"""ARQ over the simulated link: recovery driven by checksum verdicts.

The sender runs one of three classic ARQ disciplines -- stop-and-wait,
go-back-N, or selective-repeat -- over a
:class:`~repro.channel.link.ChannelLink`.  The receiver reassembles
AAL5 frames from whatever arrives and applies the *paper's* full check
stack (:func:`repro.sim.transfer.frame_acceptable`): a frame that
fails any check is silently discarded, so retransmission is triggered
by the sender's timeout -- the checksum verdict IS the recovery
decision.  A frame that *passes* every check but carries the wrong
bytes is silent corruption delivered to the application, counted and
ACKed like any clean frame (the receiver cannot know).

Robustness contract (the reason this module exists in a reproduction
about surviving corruption):

* every retransmission backs off exponentially (capped) and is
  bounded by a per-frame **budget**; exhausting it abandons the frame,
  records a degradation note, and moves on -- the session never loops;
* a hard event-count guard backstops the discrete-event loop, so no
  parameter combination (queue-overflow storms included) can hang it;
* ACKs and the explicit skip notice travel a reliable, fixed-latency
  control channel -- impairing the data path is the experiment, a lost
  ACK only re-runs the same timeout machinery.

Everything is simulated ticks and seeded draws: the same plan, ARQ
configuration, and payload produce a bit-identical
:class:`ChannelReport` and trace-event sequence on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.channel.events import EventQueue
from repro.channel.link import ChannelLink
from repro.core.engine import EngineOptions
from repro.protocols.cellstream import AAL5Reassembler, MarkedCell
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig
from repro.sim.transfer import frame_acceptable

__all__ = [
    "ARQ_KINDS",
    "ArqConfig",
    "ArqSession",
    "ChannelReport",
    "run_channel_transfer",
]

import json

#: The supported ARQ disciplines.
ARQ_KINDS = ("stop-and-wait", "go-back-n", "selective-repeat")

#: Degradation notes are canonical strings (no per-frame numbers) so
#: they merge idempotently across files and sweep passes; the counts
#: live in the report's counters.
NOTE_BUDGET = (
    "arq: retransmission budget exhausted; some frames were abandoned "
    "and delivery is incomplete"
)
NOTE_EVENT_GUARD = (
    "channel: event budget exceeded; remaining frames were abandoned"
)
NOTE_STALLED = (
    "channel: event queue drained with unresolved frames; remaining "
    "frames were abandoned"
)


@dataclass(frozen=True)
class ArqConfig:
    """One ARQ discipline, fully parameterized and JSON-portable."""

    kind: str = "go-back-n"
    #: sender window in frames (stop-and-wait forces 1).
    window: int = 8
    #: initial retransmission timeout, in simulated ticks.
    timeout: float = 64.0
    #: exponential backoff factor applied per timeout of a frame.
    backoff: float = 2.0
    #: ceiling on the backed-off timeout.
    max_timeout: float = 1024.0
    #: retransmission budget per frame; exhausting it abandons the
    #: frame (graceful degradation, never a loop).
    budget: int = 8

    def __post_init__(self):
        if self.kind not in ARQ_KINDS:
            raise ValueError(
                "unknown ARQ kind %r; available: %s"
                % (self.kind, ", ".join(ARQ_KINDS))
            )
        if self.window < 1:
            raise ValueError("window must be >= 1, got %r" % (self.window,))
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0, got %r" % (self.timeout,))
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1, got %r" % (self.backoff,))
        if self.max_timeout < self.timeout:
            raise ValueError(
                "max_timeout must be >= timeout, got %r" % (self.max_timeout,)
            )
        if self.budget < 0:
            raise ValueError("budget must be >= 0, got %r" % (self.budget,))

    def to_dict(self):
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload):
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown ArqConfig fields: %s" % ", ".join(sorted(unknown))
            )
        return cls(**payload)


@dataclass
class ChannelReport:
    """What one (or many, summed) channel transfer(s) did.

    All counters are plain ints (plus the simulated clock), so reports
    merge with ``+`` in any order and round-trip through JSON
    bit-identically -- the property the trace replayer and the
    workers-invariance tests assert.
    """

    files: int = 0
    frames: int = 0
    #: frame transmissions, first sends included.
    transmissions: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    acks: int = 0
    #: reassembled frames the check stack rejected (implicit NAKs).
    frames_rejected: int = 0
    #: accepted frames whose sequence maps to no known frame.
    alien_frames: int = 0
    #: acceptable frames discarded by a go-back-N receiver as
    #: out-of-order.
    out_of_order: int = 0
    #: acceptable frames for already-delivered positions (re-ACKed).
    duplicates_ignored: int = 0
    delivered_clean: int = 0
    delivered_corrupted: int = 0
    #: frames abandoned after the retransmission budget.
    frames_failed: int = 0
    # -- wire statistics (from ChannelStats) ---------------------------
    cells_sent: int = 0
    cells_delivered: int = 0
    cells_lost: int = 0
    cells_errored: int = 0
    bits_flipped: int = 0
    cells_overflowed: int = 0
    cells_reordered: int = 0
    cells_duplicated: int = 0
    #: simulated clock at session end (summed across files).
    ticks: float = 0.0
    #: discrete events processed (summed across files).
    events: int = 0
    #: canonical degradation notes (merged into RunHealth by callers).
    notes: list = field(default_factory=list)

    def __add__(self, other):
        merged = ChannelReport()
        for spec in fields(self):
            if spec.name == "notes":
                continue
            setattr(
                merged, spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        for note in list(self.notes) + list(other.notes):
            if note not in merged.notes:
                merged.notes.append(note)
        return merged

    # -- derived views ------------------------------------------------------

    @property
    def delivered(self):
        """Frames handed to the application (clean or not)."""
        return self.delivered_clean + self.delivered_corrupted

    @property
    def retransmission_ratio(self):
        return self.transmissions / self.frames if self.frames else 0.0

    @property
    def goodput(self):
        """Frames delivered per frame transmission."""
        return self.delivered / self.transmissions if self.transmissions else 0.0

    @property
    def delivery_ratio(self):
        return self.delivered / self.frames if self.frames else 0.0

    @property
    def silent_corruption(self):
        """Frames delivered to the application with wrong bytes."""
        return self.delivered_corrupted

    @property
    def degraded(self):
        """Did delivery fall short of 'everything, intact'?"""
        return self.frames_failed > 0 or self.delivered_corrupted > 0

    # -- serialization ------------------------------------------------------

    def to_dict(self):
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = list(value) if spec.name == "notes" else value
        return payload

    @classmethod
    def from_dict(cls, payload):
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown ChannelReport fields: %s" % ", ".join(sorted(unknown))
            )
        return cls(**payload)

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))


class ArqSession:
    """One file's transfer: sender, link, receiver, event loop."""

    def __init__(self, units, link, arq, options, use_crc=True, trace=None):
        self.link = link
        self.arq = arq
        self.options = options
        self.use_crc = use_crc
        self.trace = trace
        self.window = 1 if arq.kind == "stop-and-wait" else arq.window

        self.cells = []      # per frame: [(payload, last), ...]
        self.expected = []   # per frame: the exact bytes the sender framed
        self.seq_to_index = {}
        for index, unit in enumerate(units):
            payloads = unit.frame.cells()
            final = len(payloads) - 1
            self.cells.append(
                [(p.tobytes(), c == final) for c, p in enumerate(payloads)]
            )
            self.expected.append(unit.packet.ip_packet)
            self.seq_to_index[unit.packet.seq] = index

        count = len(units)
        self.report = ChannelReport(files=1, frames=count)
        self.queue = EventQueue()
        self.now = 0.0
        # -- sender state --
        self.acked = [False] * count
        self.failed = [False] * count
        self.tx_count = [0] * count
        self.retx = [0] * count       # timeouts charged per frame
        self.epochs = [0] * count     # invalidates stale timers
        self.base = 0
        self.next_to_send = 0
        self.tx_busy_until = 0.0
        # -- receiver state --
        self.reassembler = AAL5Reassembler()
        self.rcv_next = 0
        self.rcv_done = set()
        self.rcv_skipped = set()

    # -- plumbing -----------------------------------------------------------

    def _record(self, event, **data):
        if self.trace is not None:
            entry = {"t": round(self.now, 9), "event": event}
            entry.update(data)
            self.trace.append(entry)

    def _resolved(self, index):
        return self.acked[index] or self.failed[index]

    def _done(self):
        return self.base >= len(self.cells)

    def _note(self, note):
        if note not in self.report.notes:
            self.report.notes.append(note)

    def _event_guard(self):
        total_cells = sum(len(frame) for frame in self.cells)
        return 40 * max(total_cells, 1) * (self.arq.budget + 2) + 10_000

    # -- sender -------------------------------------------------------------

    def _send_frame(self, index):
        start = max(self.now, self.tx_busy_until)
        t = start
        for payload, last in self.cells[index]:
            for arrival, data, data_last in self.link.send(payload, last, t):
                self.queue.push(arrival, "cell", data, data_last)
            t += self.link.plan.cell_interval
        self.tx_busy_until = t
        self.tx_count[index] += 1
        self.report.transmissions += 1
        if self.tx_count[index] > 1:
            self.report.retransmissions += 1
        self.epochs[index] += 1
        rto = min(
            self.arq.timeout * self.arq.backoff ** self.retx[index],
            self.arq.max_timeout,
        )
        self.queue.push(t + rto, "timeout", index, self.epochs[index])
        self._record("send", frame=index, attempt=self.tx_count[index])

    def _advance_and_fill(self):
        count = len(self.cells)
        while self.base < count and self._resolved(self.base):
            self.base += 1
        while (
            self.next_to_send < count
            and self.next_to_send < self.base + self.window
        ):
            index = self.next_to_send
            self.next_to_send += 1
            if not self._resolved(index):
                self._send_frame(index)

    def _mark_acked(self, index):
        self.acked[index] = True
        self.epochs[index] += 1  # cancel pending timers

    def _give_up(self, index):
        self.failed[index] = True
        self.epochs[index] += 1
        self.report.frames_failed += 1
        self._note(NOTE_BUDGET)
        self._record("give-up", frame=index)
        # Tell the receiver (reliable control channel) to stop waiting
        # for this position, so in-order delivery can move past it.
        self.queue.push(self.now + self.link.plan.latency, "skip", index)
        self._advance_and_fill()

    def _on_timeout(self, index, epoch):
        if self._resolved(index) or epoch != self.epochs[index]:
            return  # stale timer
        self.report.timeouts += 1
        self.retx[index] += 1
        self._record("timeout", frame=index, count=self.retx[index])
        if self.retx[index] > self.arq.budget:
            self._give_up(index)
            return
        if self.arq.kind == "go-back-n":
            # Go back: resend every unresolved in-flight frame in order.
            for j in range(self.base, self.next_to_send):
                if not self._resolved(j):
                    self._send_frame(j)
        else:
            self._send_frame(index)

    def _on_ack(self, index, cumulative):
        self.report.acks += 1
        if index is None:
            for j in range(self.base, cumulative):
                if not self._resolved(j):
                    self._mark_acked(j)
        elif not self._resolved(index):
            self._mark_acked(index)
        self._advance_and_fill()

    # -- receiver -----------------------------------------------------------

    def _send_ack(self, index):
        """ACK frame ``index``, or cumulative (``None``) for go-back-N."""
        at = self.now + self.link.plan.ack_latency
        if index is None:
            self.queue.push(at, "ack", None, self.rcv_next)
        else:
            self.queue.push(at, "ack", index, None)

    def _advance_rcv(self):
        count = len(self.cells)
        while self.rcv_next < count and (
            self.rcv_next in self.rcv_done or self.rcv_next in self.rcv_skipped
        ):
            self.rcv_next += 1

    def _deliver(self, index, frame_bytes, length):
        self.rcv_done.add(index)
        clean = frame_bytes[:length] == self.expected[index]
        if clean:
            self.report.delivered_clean += 1
        else:
            self.report.delivered_corrupted += 1
        self._record("deliver", frame=index, clean=clean)

    def _on_cell(self, payload, last):
        frame = self.reassembler.feed(MarkedCell(payload, last))
        if frame is None:
            return
        frame_bytes = b"".join(frame)
        ok, length = frame_acceptable(frame_bytes, self.options, self.use_crc)
        if not ok:
            # The checksum verdict: discard in silence; the sender's
            # timeout is the NAK.
            self.report.frames_rejected += 1
            self._record("reject")
            return
        seq = int.from_bytes(frame_bytes[24:28], "big")
        index = self.seq_to_index.get(seq)
        if index is None:
            self.report.alien_frames += 1
            self._record("alien")
            return
        if index in self.rcv_done or index in self.rcv_skipped:
            self.report.duplicates_ignored += 1
            self._record("dup", frame=index)
            self._send_ack(None if self.arq.kind == "go-back-n" else index)
            return
        if self.arq.kind == "go-back-n":
            if index != self.rcv_next:
                self.report.out_of_order += 1
                self._record("ooo", frame=index)
                self._send_ack(None)  # re-ACK the cumulative position
                return
            self._deliver(index, frame_bytes, length)
            self._advance_rcv()
            self._send_ack(None)
        else:
            # Selective-repeat (and stop-and-wait, window 1): accept
            # and buffer out-of-order, ACK individually.
            self._deliver(index, frame_bytes, length)
            self._advance_rcv()
            self._send_ack(index)

    def _on_skip(self, index):
        if index not in self.rcv_done:
            self.rcv_skipped.add(index)
            self._record("skip", frame=index)
        self._advance_rcv()

    # -- the event loop -----------------------------------------------------

    def _abandon_unresolved(self, note):
        for index in range(len(self.cells)):
            if not self._resolved(index):
                self.failed[index] = True
                self.report.frames_failed += 1
        self.base = len(self.cells)
        self._note(note)

    def run(self):
        """Drive the transfer to completion; returns the report.

        Termination is structural: every unresolved, sent frame always
        has a live timer, timers charge a bounded budget, and budget
        exhaustion resolves the frame -- plus a hard event-count guard
        as a backstop.  This method never hangs and never raises for
        any plan/ARQ parameterization.
        """
        guard = self._event_guard()
        self._advance_and_fill()
        while not self._done():
            if not self.queue:
                self._abandon_unresolved(NOTE_STALLED)
                break
            event = self.queue.pop()
            self.now = event.time
            self.report.events += 1
            if self.report.events > guard:
                self._abandon_unresolved(NOTE_EVENT_GUARD)
                break
            if event.kind == "cell":
                self._on_cell(*event.payload)
            elif event.kind == "timeout":
                self._on_timeout(*event.payload)
            elif event.kind == "ack":
                self._on_ack(*event.payload)
            elif event.kind == "skip":
                self._on_skip(*event.payload)
        self.report.ticks = self.now
        stats = self.link.stats
        self.report.cells_sent = stats.cells_sent
        self.report.cells_delivered = stats.cells_delivered
        self.report.cells_lost = stats.cells_lost
        self.report.cells_errored = stats.cells_errored
        self.report.bits_flipped = stats.bits_flipped
        self.report.cells_overflowed = stats.cells_overflowed
        self.report.cells_reordered = stats.cells_reordered
        self.report.cells_duplicated = stats.cells_duplicated
        return self.report


def run_channel_transfer(
    data,
    plan,
    arq=None,
    config=None,
    use_crc=True,
    health=None,
    trace_events=None,
):
    """Transfer ``data`` over a simulated channel under ARQ recovery.

    ``plan`` is a :class:`~repro.channel.plan.ChannelPlan`; ``arq`` an
    :class:`ArqConfig` (go-back-N by default); ``config`` the
    :class:`PacketizerConfig` shaping packets exactly as the splice
    experiments do.  ``use_crc=False`` removes the AAL5 CRC from the
    receiver's stack, exposing the transport checksum alone.  Returns
    a :class:`ChannelReport`; degradation notes (budget exhaustion,
    event-guard trips) are folded into ``health`` when given.
    ``trace_events`` (a list) collects the replayable event record.
    """
    arq = arq or ArqConfig()
    config = config or PacketizerConfig()
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    units = FileTransferSimulator(config).transfer(data)
    session = ArqSession(
        units, ChannelLink(plan), arq, options,
        use_crc=use_crc, trace=trace_events,
    )
    report = session.run()
    if health is not None:
        for note in report.notes:
            health.degrade(note)
    return report
