"""The deterministic discrete-event core of the channel simulator.

A single :class:`EventQueue` orders everything that happens on the
simulated link -- cell arrivals, retransmission timers, control
messages -- by ``(time, seq)``, where ``seq`` is a monotonic insertion
counter.  The tie-break matters: two events scheduled for the same
tick pop in the order they were scheduled, on every run, at every
worker count.  Python's ``heapq`` never compares payloads because the
``(time, seq)`` prefix is always unique.

Time is a simulated float tick counter owned by the consumer; nothing
here (or anywhere in :mod:`repro.channel`) reads a wall clock --
reprolint REP102's discipline, extended to the channel layer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence: when, what, and its payload."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: tuple = field(compare=False, default=())


class EventQueue:
    """A seeded-simulation event queue with deterministic tie-breaks."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, time, kind, *payload):
        """Schedule an event; returns its insertion sequence number."""
        if time < 0:
            raise ValueError("event time must be >= 0, got %r" % (time,))
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, Event(float(time), seq, kind, payload))
        return seq

    def pop(self):
        """The earliest event (FIFO within a tick)."""
        return heapq.heappop(self._heap)

    def peek_time(self):
        """The next event's time, or None when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)
