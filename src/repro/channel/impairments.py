"""Pluggable link impairments, each owning a derived RNG stream.

Every process here is a small state machine driven once per
transmitted cell, in wire order, from its own
``numpy.random.default_rng(plan.derive(stream))`` generator.  Because
no two processes share a generator, the decisions of one impairment
never shift another's draw sequence -- turning jitter on cannot change
which cells the loss chain drops.  Retransmitted cells step the same
chains as first transmissions (the channel does not know about ARQ),
so a retransmission sees fresh channel state, exactly like a real
link.

The Gilbert and Gilbert-Elliott chains are the burst models Koopman's
checksum work and the Jepsen corruption study argue real links need:
errors cluster, and detection behaviour under clustered errors is the
measurement the independent-loss model cannot produce.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = [
    "BoundedQueue",
    "CellLoss",
    "DelayProcess",
    "DuplicateProcess",
    "GilbertChain",
    "GilbertElliottBitErrors",
]


class GilbertChain:
    """A two-state (good/bad) Markov chain, stepped once per cell.

    :meth:`step` returns the state that applies to the *current* cell,
    then draws exactly one uniform to decide the transition -- one draw
    per cell, always, so the chain's trajectory is a pure function of
    its seed and the number of cells seen.
    """

    def __init__(self, rng, p_enter_bad, p_exit_bad):
        self._rng = rng
        self.p_enter_bad = float(p_enter_bad)
        self.p_exit_bad = float(p_exit_bad)
        self.bad = False

    def step(self):
        current = self.bad
        roll = self._rng.random()
        if self.bad:
            if roll < self.p_exit_bad:
                self.bad = False
        elif roll < self.p_enter_bad:
            self.bad = True
        return current


class CellLoss:
    """Cell loss: an optional Gilbert burst chain plus independent loss.

    A cell sent while the burst chain is in its bad state is always
    lost (the classic Gilbert model); survivors then face the
    memoryless ``loss_rate`` coin -- the paper's own model, retained as
    the baseline regime.
    """

    def __init__(self, plan):
        self.loss_rate = plan.loss_rate
        self._rng = np.random.default_rng(plan.derive("loss"))
        self._burst = None
        if plan.burst_loss is not None:
            self._burst = GilbertChain(
                np.random.default_rng(plan.derive("burst-loss")),
                *plan.burst_loss,
            )

    def lost(self):
        """Is the current cell lost?  (Steps both processes.)"""
        burst_lost = self._burst.step() if self._burst is not None else False
        independent_lost = (
            self.loss_rate > 0.0 and self._rng.random() < self.loss_rate
        )
        return burst_lost or independent_lost


class GilbertElliottBitErrors:
    """Gilbert-Elliott bit errors: per-state BER applied per cell.

    The chain steps once per cell; the applicable state's bit-error
    rate then flips a binomially-drawn number of distinct bit
    positions in the payload.  A zero BER skips the payload draws, but
    the chain itself always advances, keeping its trajectory aligned
    with the cell stream.
    """

    def __init__(self, plan):
        p_enter, p_exit, ber_good, ber_bad = plan.bit_errors
        self._chain = GilbertChain(
            np.random.default_rng(plan.derive("bit-error-state")),
            p_enter, p_exit,
        )
        self._rng = np.random.default_rng(plan.derive("bit-error-bits"))
        self.ber_good = ber_good
        self.ber_bad = ber_bad

    def corrupt(self, payload):
        """``(payload', flipped_bits)`` for the current cell."""
        bad = self._chain.step()
        ber = self.ber_bad if bad else self.ber_good
        if ber <= 0.0:
            return payload, 0
        nbits = len(payload) * 8
        flips = int(self._rng.binomial(nbits, ber))
        if not flips:
            return payload, 0
        positions = self._rng.choice(nbits, size=flips, replace=False)
        mutated = bytearray(payload)
        for position in positions:
            mutated[int(position) >> 3] ^= 1 << (int(position) & 7)
        return bytes(mutated), flips


class BoundedQueue:
    """A deterministic bounded FIFO ahead of the wire.

    The queue is modelled by its departure times: occupancy at ``t``
    is the number of already-admitted cells that have not yet departed.
    Admission when full is an overflow drop -- the congestion regime.
    A plan without a capacity bypasses the queue entirely (cells enter
    the wire at their send time).
    """

    def __init__(self, plan):
        self.capacity = (
            int(plan.queue_capacity) if plan.queue_capacity is not None
            else None
        )
        self.service = plan.queue_service
        self._departures = deque()

    def admit(self, t):
        """Departure time of a cell arriving at ``t``, or None (drop)."""
        if self.capacity is None:
            return t
        departures = self._departures
        while departures and departures[0] <= t:
            departures.popleft()
        if len(departures) >= self.capacity:
            return None
        start = departures[-1] if departures else t
        depart = max(start, t) + self.service
        departures.append(depart)
        return depart


class DelayProcess:
    """Propagation latency, jitter, and explicit reordering.

    Every cell pays the base latency; a positive ``jitter`` adds a
    uniform draw, and with probability ``reorder_rate`` a cell is held
    back a further uniform ``[0, reorder_span)`` ticks -- enough to
    land after cells transmitted later, which is what makes frames
    interleave at the receiver.
    """

    def __init__(self, plan):
        self.latency = plan.latency
        self.jitter = plan.jitter
        self.reorder_rate = plan.reorder_rate
        self.reorder_span = plan.reorder_span
        self._jitter_rng = np.random.default_rng(plan.derive("jitter"))
        self._reorder_rng = np.random.default_rng(plan.derive("reorder"))

    def arrival(self, depart):
        """``(arrival_time, reordered?)`` for a cell leaving at ``depart``."""
        arrival = depart + self.latency
        if self.jitter > 0.0:
            arrival += self._jitter_rng.random() * self.jitter
        reordered = False
        if self.reorder_rate > 0.0:
            if self._reorder_rng.random() < self.reorder_rate:
                arrival += self._reorder_rng.random() * self.reorder_span
                reordered = True
        return arrival, reordered


class DuplicateProcess:
    """Cell duplication: a delivered cell arrives again, a bit later."""

    def __init__(self, plan):
        self.rate = plan.duplicate_rate
        self.lag = plan.duplicate_lag
        self._rng = np.random.default_rng(plan.derive("duplicate"))

    def duplicated(self):
        """Does the current delivered cell get a second copy?"""
        return self.rate > 0.0 and self._rng.random() < self.rate
