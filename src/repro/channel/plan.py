"""Declarative, replayable channel plans.

A :class:`ChannelPlan` is to the link simulator what
:class:`repro.faults.FaultPlan` is to the store: a frozen, seedable
description of *everything nondeterministic* about one simulated
channel.  Every random draw the simulator makes comes from a
per-stream RNG derived by hashing the plan seed with the stream name
(:func:`derive_seed`), so:

* two links built from the same plan produce the **exact same
  impairment sequence** when driven through the same transmissions —
  the replay property ``repro-checksums channel replay`` asserts;
* streams are independent: adding jitter draws never perturbs the
  loss sequence, because each impairment owns its own derived RNG;
* the plan is JSON round-trippable (:meth:`ChannelPlan.to_dict` /
  :meth:`ChannelPlan.from_dict`) and carries a :meth:`fingerprint`
  that names the channel in traces, journals, and shard keys.

This module is import-light on purpose (stdlib only): the CLI builds
its ``--plan`` choices from :func:`channel_plan_names` at parser
construction, which must not pay for numpy or the event engine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

__all__ = [
    "NAMED_CHANNEL_PLANS",
    "ChannelPlan",
    "channel_plan_names",
    "derive_seed",
    "named_channel_plan",
]


def derive_seed(seed, *streams):
    """A 64-bit RNG seed, a pure function of ``seed`` + stream coords.

    Mirrors :meth:`repro.faults.plan.FaultPlan._roll`'s discipline: no
    shared mutable RNG stream, just a hash of the coordinates, so any
    stream can be re-derived independently and in any order.
    """
    material = "|".join(str(part) for part in (int(seed),) + streams)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ChannelPlan:
    """One simulated link, fully described and fully seeded.

    Impairments compose in a fixed pipeline order (the order
    :class:`repro.channel.link.ChannelLink` applies them): bounded
    queue -> loss (burst, then independent) -> bit errors -> latency/
    jitter/reordering -> duplication.  All times are simulated ticks;
    there is no wall clock anywhere in the channel.
    """

    name: str = "custom"
    seed: int = 0
    #: ticks between back-to-back cell departures at the sender.
    cell_interval: float = 1.0
    #: base one-way propagation delay, in ticks.
    latency: float = 8.0
    #: uniform [0, jitter) ticks added per cell.
    jitter: float = 0.0
    #: one-way delay of the (reliable) ACK/control channel.
    ack_latency: float = 4.0
    #: independent per-cell loss probability.
    loss_rate: float = 0.0
    #: Gilbert burst loss ``(p_enter_bad, p_exit_bad)``; every cell
    #: sent while the chain is in the bad state is lost.
    burst_loss: tuple = None
    #: Gilbert-Elliott bit errors ``(p_enter_bad, p_exit_bad,
    #: ber_good, ber_bad)``: a two-state Markov chain stepped per
    #: cell, applying the state's bit-error rate to the cell payload.
    bit_errors: tuple = None
    #: probability a cell is held back (reordered past later cells).
    reorder_rate: float = 0.0
    #: maximum extra delay, in ticks, of a reordered cell.
    reorder_span: float = 6.0
    #: probability a delivered cell is delivered twice.
    duplicate_rate: float = 0.0
    #: extra delay of the duplicate copy.
    duplicate_lag: float = 3.0
    #: bounded-queue capacity in cells (None = unbounded, no queue).
    queue_capacity: int = None
    #: per-cell service time of the queue, in ticks.
    queue_service: float = 1.0

    _RATE_FIELDS = ("loss_rate", "reorder_rate", "duplicate_rate")
    _POSITIVE_FIELDS = ("cell_interval", "queue_service")
    _NONNEGATIVE_FIELDS = (
        "latency", "jitter", "ack_latency", "reorder_span", "duplicate_lag",
    )

    def __post_init__(self):
        for field_name in self._RATE_FIELDS:
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    "%s must be in [0, 1], got %r" % (field_name, value)
                )
        for field_name in self._POSITIVE_FIELDS:
            if getattr(self, field_name) <= 0:
                raise ValueError(
                    "%s must be > 0, got %r"
                    % (field_name, getattr(self, field_name))
                )
        for field_name in self._NONNEGATIVE_FIELDS:
            if getattr(self, field_name) < 0:
                raise ValueError(
                    "%s must be >= 0, got %r"
                    % (field_name, getattr(self, field_name))
                )
        if self.burst_loss is not None:
            probs = tuple(float(p) for p in self.burst_loss)
            if len(probs) != 2 or not all(0.0 <= p <= 1.0 for p in probs):
                raise ValueError(
                    "burst_loss must be (p_enter_bad, p_exit_bad) "
                    "probabilities, got %r" % (self.burst_loss,)
                )
            object.__setattr__(self, "burst_loss", probs)
        if self.bit_errors is not None:
            values = tuple(float(p) for p in self.bit_errors)
            if len(values) != 4 or not all(0.0 <= p <= 1.0 for p in values):
                raise ValueError(
                    "bit_errors must be (p_enter_bad, p_exit_bad, "
                    "ber_good, ber_bad) probabilities, got %r"
                    % (self.bit_errors,)
                )
            object.__setattr__(self, "bit_errors", values)
        if self.queue_capacity is not None and int(self.queue_capacity) < 1:
            raise ValueError(
                "queue_capacity must be a positive cell count or None, "
                "got %r" % (self.queue_capacity,)
            )

    # -- deterministic randomness ------------------------------------------

    def derive(self, stream):
        """The RNG seed of one named impairment stream."""
        return derive_seed(self.seed, "channel", stream)

    # -- identity / serialization ------------------------------------------

    def to_dict(self):
        """A JSON-native dict; inverse of :meth:`from_dict`."""
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a plan, rejecting unknown fields (schema drift)."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown ChannelPlan fields: %s" % ", ".join(sorted(unknown))
            )
        kwargs = dict(payload)
        for field_name in ("burst_loss", "bit_errors"):
            if kwargs.get(field_name) is not None:
                kwargs[field_name] = tuple(kwargs[field_name])
        return cls(**kwargs)

    def fingerprint(self):
        """Digest naming this exact channel (parameters + seed)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __repr__(self):
        return "ChannelPlan(name=%r, seed=%d, fingerprint=%s)" % (
            self.name, self.seed, self.fingerprint(),
        )


#: Named plans for the ``channel`` CLI, the chaos harness, and the
#: ``channel-*`` experiment family.  The regimes span the error models
#: the splice tables cannot express: burst bit errors (Gilbert-
#: Elliott), burst loss, reordering/duplication, and queue overflow.
NAMED_CHANNEL_PLANS = {
    # A perfect link: the control regime every table anchors on.
    "clean": dict(),
    # Memoryless cell loss -- the paper's own loss model, now under ARQ.
    "lossy-link": dict(loss_rate=0.05),
    # Bursty everything: Gilbert burst loss (mean bad run of 4 cells)
    # plus Gilbert-Elliott bit errors concentrated in the bad state.
    # Detection behaviour here diverges sharply from the independent
    # model -- the Jepsen burst-error observation this family exists
    # to measure.
    "bursty-link": dict(
        burst_loss=(0.05, 0.25),
        bit_errors=(0.02, 0.30, 0.0, 0.01),
    ),
    # Heavy jitter with explicit reordering and duplication: cells of
    # adjacent frames interleave on arrival, splicing frames exactly
    # as in the paper's model -- but produced by timing, not loss.
    # Jitter stays below the cell interval so frames mostly hold
    # together; the explicit reorder holds are what interleave cells
    # across frames and defeat AAL5 reassembly until retransmission.
    "reordering-link": dict(
        jitter=0.4,
        reorder_rate=0.08,
        reorder_span=20.0,
        duplicate_rate=0.03,
    ),
    # A sustained-overload bounded queue: service is slower than the
    # sender's cell clock, so window bursts overflow and drop tails.
    "congested-queue": dict(
        queue_capacity=16,
        queue_service=1.3,
        jitter=2.0,
    ),
}


def channel_plan_names():
    """The named channel plans, sorted (CLI ``choices``)."""
    return sorted(NAMED_CHANNEL_PLANS)


def named_channel_plan(name, seed=0):
    """Instantiate a named channel plan with the given seed."""
    if name not in NAMED_CHANNEL_PLANS:
        raise KeyError(
            "unknown channel plan %r; available: %s"
            % (name, ", ".join(channel_plan_names()))
        )
    return ChannelPlan(name=name, seed=seed, **NAMED_CHANNEL_PLANS[name])
