"""Channel transfers over a whole filesystem: the sweep layer.

One file = one shard: a pure function of ``(bytes, plan, arq, config,
use_crc)``, which is what lets the sweep ride the repo's existing
machinery unchanged -- the :class:`~repro.core.supervisor.SupervisedPool`
for fan-out, the :class:`~repro.store.journal.ShardJournal` for
interruptible checkpointing (with :class:`ChannelReport` as the
journal codec), the :class:`~repro.store.runner.RunStore` shard cache,
and the ambient :class:`~repro.core.checkpoint.SweepController` for
signals and deadlines.  Reports merge in file-index order, so the
merged report -- and the concatenated trace-event stream -- is
bit-identical at any ``--workers`` count.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.channel.arq import ArqConfig, ChannelReport, run_channel_transfer
from repro.core.checkpoint import current_controller
from repro.core.engine import EngineOptions
from repro.core.experiment import _check_stop
from repro.core.supervisor import RunHealth, SupervisedPool
from repro.protocols.packetizer import PacketizerConfig
from repro.telemetry.core import current as _telemetry

__all__ = ["channel_fingerprint", "run_channel_sweep"]

#: Bumped when the shard payload or report layout changes, so stale
#: journals and cached shards are discarded rather than misread.
SWEEP_SCHEMA = "repro-channel/1"


def _packetizer_dict(config):
    """A canonical JSON-portable view of a :class:`PacketizerConfig`."""
    from dataclasses import fields

    payload = {}
    for spec in fields(config):
        value = getattr(config, spec.name)
        payload[spec.name] = getattr(value, "value", value)
    return payload


def channel_fingerprint(files, plan, arq, config, use_crc):
    """The sweep's identity: corpus bytes + every knob that shapes it."""
    payload = {
        "schema": SWEEP_SCHEMA,
        "files": [hashlib.sha256(f.data).hexdigest() for f in files],
        "plan": plan.to_dict(),
        "arq": arq.to_dict(),
        "packetizer": _packetizer_dict(config),
        "use_crc": bool(use_crc),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _channel_shard(args):
    """Process-pool worker: one file through the channel, start to end."""
    data, plan, arq, config, use_crc, record = args
    events = [] if record else None
    report = run_channel_transfer(
        data, plan, arq=arq, config=config, use_crc=use_crc,
        trace_events=events,
    )
    return report, events


def _shard_key(fingerprint, index, data):
    """Hex shard key (store backends require hex object names)."""
    material = "channel|%s|%d|%s" % (
        fingerprint, index, hashlib.sha256(data).hexdigest()
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _account_channel_shard(telemetry, report, elapsed):
    """Parent-side accounting: amounts from the report (bit-identical
    across worker counts), only elapsed seconds vary."""
    telemetry.count("channel.files", report.files or 1)
    telemetry.count("channel.frames", report.frames)
    telemetry.count("channel.cells", report.cells_sent)
    telemetry.count("channel.retransmissions", report.retransmissions)
    telemetry.count("channel.silent_corruption", report.delivered_corrupted)
    telemetry.count("channel.frames_failed", report.frames_failed)
    telemetry.meter("channel.cells_rate", report.cells_sent, elapsed)
    telemetry.observe("channel.shard_seconds", elapsed)


def run_channel_sweep(
    filesystem,
    plan,
    arq=None,
    config=None,
    use_crc=True,
    max_files=None,
    workers=None,
    health=None,
    store=None,
    journal=None,
    resume=None,
    events_out=None,
    shard_timeout=None,
):
    """Run every file of ``filesystem`` through the simulated channel.

    Returns the merged :class:`ChannelReport`.  ``events_out`` (a
    list) collects the per-file trace events, each file's stream
    prefixed with a ``{"event": "file", "index": k}`` boundary marker,
    in file order -- the replayable record.  Recording events disables
    the store shard cache (cached shards have no event stream), but
    reports stay bit-identical either way.

    ``journal``/``resume`` follow the splice sweep's checkpoint
    contract (ambient :func:`current_controller` defaults); the
    journal revives entries through :class:`ChannelReport`, and
    signals/deadlines stop the sweep at shard boundaries with the
    usual partial-result degradation.
    """
    arq = arq or ArqConfig()
    config = config or PacketizerConfig()
    health = health if health is not None else RunHealth()
    telemetry = _telemetry()
    controller = current_controller()
    if resume is None:
        resume = controller.resume
    if shard_timeout is None:
        shard_timeout = controller.shard_timeout

    files = list(filesystem)
    if max_files is not None:
        files = files[:max_files]
    record = events_out is not None
    fingerprint = channel_fingerprint(files, plan, arq, config, use_crc)
    name = getattr(filesystem, "name", "<anonymous>")

    if journal is None and controller.journal_dir is not None:
        from repro.store.journal import ShardJournal, journal_path

        journal = ShardJournal(journal_path(
            controller.journal_dir, "channel-%s" % name, config
        ))

    keys = [
        _shard_key(fingerprint, index, file.data)
        for index, file in enumerate(files)
    ]
    done_shards = {}
    if journal is not None:
        done_shards = journal.open_run(
            fingerprint, label="channel:%s" % name, total=len(keys),
            resume=resume, codec=ChannelReport,
        )
        if done_shards:
            telemetry.count("checkpoint.resumed_shards", len(done_shards))

    # The store shard cache: reports only (event streams are never
    # cached), skipped entirely while recording a trace.
    guard = None
    if store is not None and not record:
        from repro.store.runner import _StoreGuard

        guard = _StoreGuard(store, health)

    results = {}
    pending = []
    for index, (key, file) in enumerate(zip(keys, files)):
        if key in done_shards:
            results[index] = (done_shards[key], None)
            continue
        if guard is not None:
            cached = guard._attempt(
                "channel shard read",
                lambda k=key: store.shards.get_object(
                    k, ChannelReport.from_json
                ),
            )
            if cached is not None:
                telemetry.count("channel.cached_shards")
                results[index] = (cached, None)
                continue
        pending.append(index)

    telemetry.gauge("experiment.workers", workers or 1)
    jobs = [
        (files[i].data, plan, arq, config, use_crc, record) for i in pending
    ]
    pool = SupervisedPool(
        _channel_shard, workers, health=health, timeout=shard_timeout
    )
    with telemetry.span("channel.sweep"):
        last = time.perf_counter()
        done = len(results)
        if jobs and not _check_stop(
            controller, health, telemetry, done, len(files), journal
        ):
            for position, part in pool.run(jobs):
                now = time.perf_counter()
                index = pending[position]
                report, events = part
                _account_channel_shard(telemetry, report, now - last)
                last = now
                results[index] = (report, events)
                done += 1
                if journal is not None:
                    journal.record(keys[index], report)
                if guard is not None:
                    guard._attempt(
                        "channel shard write",
                        lambda k=keys[index], r=report:
                            store.shards.put_object(k, r),
                    )
                if _check_stop(
                    controller, health, telemetry, done, len(files), journal
                ):
                    break

    merged = ChannelReport()
    for index in sorted(results):
        report, events = results[index]
        merged = merged + report
        if record:
            events_out.append({"event": "file", "index": index})
            events_out.extend(events or [])
    for note in merged.notes:
        health.degrade(note)
    if journal is not None and len(results) == len(files):
        journal.complete()
    return merged
