"""repro.channel: a seeded discrete-event link simulator with ARQ.

The splice tables measure what the checksums *can* detect; this
package measures what a protocol stack built on them actually
*delivers*.  A deterministic event-driven channel
(:mod:`repro.channel.events`) composes pluggable impairments --
Gilbert burst loss, Gilbert-Elliott bit errors, bounded queues,
jitter/reordering/duplication (:mod:`repro.channel.impairments`,
:mod:`repro.channel.link`) -- under a declarative, replayable
:class:`ChannelPlan`.  On top, an ARQ layer
(:mod:`repro.channel.arq`) retransmits on timeout with bounded
budgets, its recovery driven entirely by the paper's checksum
verdicts; :mod:`repro.channel.sweep` fans whole filesystems through
it, and :mod:`repro.channel.trace` records runs that replay
bit-identically.

Names resolve lazily (PEP 562, matching the top-level package) so
importing :mod:`repro.channel.plan` for CLI ``choices`` never drags
in NumPy or the protocol stack.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "ARQ_KINDS": "repro.channel.arq",
    "ArqConfig": "repro.channel.arq",
    "ArqSession": "repro.channel.arq",
    "ChannelLink": "repro.channel.link",
    "ChannelPlan": "repro.channel.plan",
    "ChannelReport": "repro.channel.arq",
    "ChannelStats": "repro.channel.link",
    "Event": "repro.channel.events",
    "EventQueue": "repro.channel.events",
    "NAMED_CHANNEL_PLANS": "repro.channel.plan",
    "ReplayResult": "repro.channel.trace",
    "TraceError": "repro.channel.trace",
    "build_channel_trace": "repro.channel.trace",
    "channel_plan_names": "repro.channel.plan",
    "derive_seed": "repro.channel.plan",
    "named_channel_plan": "repro.channel.plan",
    "read_channel_trace": "repro.channel.trace",
    "replay_channel_trace": "repro.channel.trace",
    "run_channel_sweep": "repro.channel.sweep",
    "run_channel_transfer": "repro.channel.arq",
    "write_channel_trace": "repro.channel.trace",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
