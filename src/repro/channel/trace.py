"""Replayable channel traces: record a run, replay it bit-identically.

A trace captures everything a channel run depends on -- the corpus
recipe (profile, bytes, seed), the :class:`ChannelPlan`, the
:class:`ArqConfig`, the packetizer configuration, the CRC toggle --
plus everything it produced: the full event stream (sends, timeouts,
checksum rejections, deliveries with their clean/corrupt verdicts) and
the merged report.  Because the simulator is a pure function of the
recorded inputs, :func:`replay_channel_trace` re-runs the sweep from
the recipe and compares event-for-event: any divergence is either
nondeterminism (a bug this file exists to catch) or a tampered trace
(caught earlier by the self-digest).

The trace file is canonical JSON with an embedded sha256 over its own
canonical form, so a flipped bit in a stored trace is a
:class:`TraceError`, not a confusing replay mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.channel.arq import ArqConfig, ChannelReport
from repro.channel.plan import ChannelPlan
from repro.channel.sweep import _packetizer_dict, run_channel_sweep
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

__all__ = [
    "ReplayResult",
    "TraceError",
    "build_channel_trace",
    "read_channel_trace",
    "replay_channel_trace",
    "write_channel_trace",
]

TRACE_SCHEMA = "repro-channel-trace/1"


class TraceError(ValueError):
    """The trace file is not a valid, intact channel trace."""


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload):
    """Self-digest over the canonical payload minus the digest field."""
    stripped = {k: v for k, v in payload.items() if k != "digest"}
    return hashlib.sha256(_canonical(stripped).encode()).hexdigest()


def build_channel_trace(plan, arq, config, use_crc, corpus, events, report):
    """Assemble the portable trace payload for one recorded run.

    ``corpus`` is the recipe dict (``profile``/``bytes``/``seed``)
    that :func:`replay_channel_trace` feeds back into
    :func:`repro.corpus.profiles.build_filesystem`.
    """
    payload = {
        "schema": TRACE_SCHEMA,
        "corpus": dict(corpus),
        "plan": plan.to_dict(),
        "arq": arq.to_dict(),
        "packetizer": _packetizer_dict(config),
        "use_crc": bool(use_crc),
        "events": list(events),
        "report": report.to_dict(),
    }
    payload["digest"] = _digest(payload)
    return payload


def write_channel_trace(path, payload):
    """Write a trace payload as canonical JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_canonical(payload))
        handle.write("\n")


def read_channel_trace(path):
    """Read and validate a trace file; raises :class:`TraceError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise TraceError("unreadable channel trace %s: %s" % (path, exc))
    if not isinstance(payload, dict):
        raise TraceError("channel trace %s: not a JSON object" % path)
    if payload.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            "channel trace %s: schema %r is not %r"
            % (path, payload.get("schema"), TRACE_SCHEMA)
        )
    for key in ("corpus", "plan", "arq", "packetizer", "use_crc",
                "events", "report", "digest"):
        if key not in payload:
            raise TraceError("channel trace %s: missing %r" % (path, key))
    if payload["digest"] != _digest(payload):
        raise TraceError(
            "channel trace %s: digest mismatch (the file was modified "
            "after it was recorded)" % path
        )
    return payload


def _packetizer_from_dict(payload):
    payload = dict(payload)
    if "placement" in payload:
        payload["placement"] = ChecksumPlacement(payload["placement"])
    return PacketizerConfig(**payload)


@dataclass
class ReplayResult:
    """The verdict of replaying a recorded trace."""

    identical: bool
    report: ChannelReport
    mismatches: list = field(default_factory=list)

    def describe(self):
        if self.identical:
            return "replay identical: every event and verdict reproduced"
        return "replay diverged: %s" % "; ".join(self.mismatches[:5])


def _diff_events(recorded, replayed):
    mismatches = []
    if len(recorded) != len(replayed):
        mismatches.append(
            "event count %d != recorded %d" % (len(replayed), len(recorded))
        )
    for position, (a, b) in enumerate(zip(recorded, replayed)):
        if a != b:
            mismatches.append(
                "event %d: recorded %s, replayed %s"
                % (position, _canonical(a), _canonical(b))
            )
            if len(mismatches) >= 5:
                break
    return mismatches


def replay_channel_trace(payload, workers=None, health=None):
    """Re-run a recorded trace and compare, event for event.

    ``payload`` is a validated trace (from :func:`read_channel_trace`).
    Returns a :class:`ReplayResult`: ``identical`` means every event
    -- including every checksum verdict and every clean/corrupt
    delivery call -- and the merged report reproduced exactly.
    """
    from repro.corpus.profiles import build_filesystem

    corpus = payload["corpus"]
    filesystem = build_filesystem(
        corpus["profile"], int(corpus["bytes"]), int(corpus.get("seed", 0))
    )
    plan = ChannelPlan.from_dict(payload["plan"])
    arq = ArqConfig.from_dict(payload["arq"])
    config = _packetizer_from_dict(payload["packetizer"])
    events = []
    report = run_channel_sweep(
        filesystem, plan, arq=arq, config=config,
        use_crc=payload["use_crc"], workers=workers, health=health,
        events_out=events,
    )
    mismatches = _diff_events(payload["events"], events)
    if report.to_dict() != payload["report"]:
        mismatches.append("merged report differs from the recorded report")
    return ReplayResult(
        identical=not mismatches, report=report, mismatches=mismatches
    )
