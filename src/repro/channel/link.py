"""One simulated link: the impairment pipeline, composed.

:class:`ChannelLink` is the wire between the ARQ sender and receiver.
``send(payload, last, t)`` pushes one AAL5 cell into the channel at
simulated time ``t`` and returns the deliveries it produces -- zero
(lost or overflowed), one, or two (duplicated) ``(arrival_time,
payload, last)`` tuples.  Impairments apply in a fixed order:

1. **bounded queue** -- admission control; overflow is a drop;
2. **loss** -- Gilbert burst chain, then independent loss;
3. **bit errors** -- Gilbert-Elliott per-state BER over the payload;
4. **delay** -- latency + jitter + explicit reordering;
5. **duplication** -- a second copy, ``duplicate_lag`` later.

Chains step *per transmitted cell in wire order* regardless of what
downstream stages decide, so the channel's trajectory is a pure
function of the plan and the number of cells pushed through it --
which is exactly why a recorded run replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.channel.impairments import (
    BoundedQueue,
    CellLoss,
    DelayProcess,
    DuplicateProcess,
    GilbertElliottBitErrors,
)

__all__ = ["ChannelLink", "ChannelStats"]


@dataclass
class ChannelStats:
    """What the wire did to the cells pushed through it."""

    cells_sent: int = 0
    cells_delivered: int = 0
    cells_lost: int = 0
    cells_errored: int = 0
    bits_flipped: int = 0
    cells_overflowed: int = 0
    cells_reordered: int = 0
    cells_duplicated: int = 0

    def to_dict(self):
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class ChannelLink:
    """A :class:`~repro.channel.plan.ChannelPlan`, running."""

    def __init__(self, plan):
        self.plan = plan
        self.stats = ChannelStats()
        self._queue = BoundedQueue(plan)
        self._loss = CellLoss(plan)
        self._bit_errors = (
            GilbertElliottBitErrors(plan) if plan.bit_errors is not None
            else None
        )
        self._delay = DelayProcess(plan)
        self._duplicate = DuplicateProcess(plan)

    def send(self, payload, last, t):
        """Push one cell into the channel at simulated time ``t``.

        Returns ``[(arrival_time, payload, last), ...]`` -- possibly
        empty (lost/overflowed), possibly two entries (duplicated).
        """
        stats = self.stats
        stats.cells_sent += 1
        depart = self._queue.admit(t)
        if depart is None:
            stats.cells_overflowed += 1
            return []
        if self._loss.lost():
            stats.cells_lost += 1
            return []
        if self._bit_errors is not None:
            payload, flipped = self._bit_errors.corrupt(payload)
            if flipped:
                stats.cells_errored += 1
                stats.bits_flipped += flipped
        arrival, reordered = self._delay.arrival(depart)
        if reordered:
            stats.cells_reordered += 1
        deliveries = [(arrival, payload, last)]
        if self._duplicate.duplicated():
            stats.cells_duplicated += 1
            deliveries.append(
                (arrival + self._duplicate.lag, payload, last)
            )
        stats.cells_delivered += len(deliveries)
        return deliveries
