"""repro: reproduction of "Performance of Checksums and CRCs over Real Data".

Stone, Greenwald, Partridge, Hughes -- SIGCOMM 1995 (corrected version).

The library has four layers:

* :mod:`repro.checksums` -- the check codes themselves (Internet
  checksum, Fletcher mod-255/mod-256, a generic CRC engine with the
  AAL5 CRC-32 and friends) plus the partial-sum/combine algebra.
* :mod:`repro.protocols` -- IPv4/TCP packet construction, ATM cells and
  AAL5 framing, and the simulated FTP transfer.
* :mod:`repro.corpus` -- deterministic synthetic filesystems with the
  statistical structure of the paper's real UNIX volumes.
* :mod:`repro.core` / :mod:`repro.analysis` / :mod:`repro.experiments`
  -- the packet-splice engine, the distribution analyses, and one
  callable per published table and figure.
* :mod:`repro.store` -- the content-addressed artifact store behind
  cached, resumable, integrity-audited experiment runs.
* :mod:`repro.faults` -- deterministic fault injection (seeded fault
  plans, store/worker injectors) behind the chaos-tested execution
  layer (:mod:`repro.core.supervisor`).
* :mod:`repro.channel` -- the seeded discrete-event link simulator
  (burst loss, bit errors, bounded queues, reordering/duplication)
  with ARQ recovery driven by checksum verdicts, replayable
  bit-identically from recorded traces.
* :mod:`repro.telemetry` -- span-based tracing, counters/meters/
  histograms, and the ``bench`` harness; a strict no-op unless enabled.
* :mod:`repro.api` -- the stable facade these lazy exports come from
  (``run_experiment``, ``open_store``, ``algorithms``, ``sum_file``,
  ``experiment_ids``, ``Telemetry``).

Quickstart::

    from repro import build_filesystem, run_splice_experiment
    fs = build_filesystem("stanford-u1", 1_000_000, seed=3)
    result = run_splice_experiment(fs)
    print(result.counters.miss_rate_transport)  # % of bad splices missed
"""

import importlib

__version__ = "1.0.0"

#: Public name -> defining submodule, resolved lazily (PEP 562) so that
#: light entry points (the CLI, a warm cache hit) do not pay for the
#: whole package import graph.  ``from repro import X`` still works.
_EXPORTS = {
    # Implementation classes re-exported for power users; everything
    # else below comes through the stable facade.
    "EngineOptions": "repro.core",
    "FaultPlan": "repro.faults",
    "RunStore": "repro.store",
    "SpliceEngine": "repro.core",
    "SupervisedPool": "repro.core",
    "get_algorithm": "repro.checksums",
    "internet_checksum": "repro.checksums",
}

#: Every facade name (``repro.api.__all__``) re-exports here too, so
#: ``repro.X is repro.api.X`` holds across the whole contract.
_FACADE_EXPORTS = (
    "ArqConfig",
    "BatchChecksumAlgorithm",
    "ChannelPlan",
    "ChannelReport",
    "ChecksumPlacement",
    "CircuitBreaker",
    "EngineKind",
    "IndependentLoss",
    "ManualClock",
    "PacketizerConfig",
    "ResilienceController",
    "RetryPolicy",
    "RunAborted",
    "RunHealth",
    "ShardJournal",
    "SweepInterrupted",
    "Telemetry",
    "TraceError",
    "TransferReport",
    "WriteSpool",
    "activate_telemetry",
    "algorithm_names",
    "algorithm_summaries",
    "algorithms",
    "audit_run_store",
    "bench_delta_table",
    "build_channel_trace",
    "build_filesystem",
    "channel_plan_names",
    "current_controller",
    "current_telemetry",
    "deactivate_telemetry",
    "default_journal_dir",
    "default_spool_dir",
    "drain_spool",
    "experiment_ids",
    "generate_markdown_report",
    "latest_bench_snapshot",
    "lint_rules",
    "named_channel_plan",
    "named_plan",
    "open_backend",
    "open_journal",
    "open_store",
    "plan_names",
    "profile_names",
    "profile_summaries",
    "read_channel_trace",
    "replay_channel_trace",
    "run_bench",
    "run_channel_sweep",
    "run_channel_transfer",
    "run_experiment",
    "run_lint",
    "run_splice_experiment",
    "scrub_run_store",
    "serve_store",
    "simulate_file_transfer",
    "sum_file",
    "supports_batch",
    "sweep_guard",
    "validate_bench_snapshot",
    "wrap_run_store",
    "write_bench_snapshot",
    "write_channel_trace",
    "write_figure_svg",
    "write_metrics",
)
for _name in _FACADE_EXPORTS:
    _EXPORTS[_name] = "repro.api"
del _name

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
