"""repro: reproduction of "Performance of Checksums and CRCs over Real Data".

Stone, Greenwald, Partridge, Hughes -- SIGCOMM 1995 (corrected version).

The library has four layers:

* :mod:`repro.checksums` -- the check codes themselves (Internet
  checksum, Fletcher mod-255/mod-256, a generic CRC engine with the
  AAL5 CRC-32 and friends) plus the partial-sum/combine algebra.
* :mod:`repro.protocols` -- IPv4/TCP packet construction, ATM cells and
  AAL5 framing, and the simulated FTP transfer.
* :mod:`repro.corpus` -- deterministic synthetic filesystems with the
  statistical structure of the paper's real UNIX volumes.
* :mod:`repro.core` / :mod:`repro.analysis` / :mod:`repro.experiments`
  -- the packet-splice engine, the distribution analyses, and one
  callable per published table and figure.

Quickstart::

    from repro import build_filesystem, run_splice_experiment
    fs = build_filesystem("stanford-u1", 1_000_000, seed=3)
    result = run_splice_experiment(fs)
    print(result.counters.miss_rate_transport)  # % of bad splices missed
"""

from repro.checksums import get_algorithm, internet_checksum
from repro.core import EngineOptions, SpliceEngine, run_splice_experiment
from repro.corpus import build_filesystem, profile_names
from repro.experiments import run_experiment
from repro.protocols import PacketizerConfig

__version__ = "1.0.0"

__all__ = [
    "EngineOptions",
    "PacketizerConfig",
    "SpliceEngine",
    "__version__",
    "build_filesystem",
    "get_algorithm",
    "internet_checksum",
    "profile_names",
    "run_experiment",
    "run_splice_experiment",
]
