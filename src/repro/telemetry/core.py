"""The process-wide telemetry registry, and its strict-no-op twin.

Instrumented code never holds a :class:`Telemetry` directly; it calls
:func:`current` (one module-global read) and uses whatever it gets:

* by default that is :data:`NULL`, a :class:`NullTelemetry` whose every
  method is a constant-returning no-op — instrumentation then costs a
  function call and an empty context manager per *batch*-level region,
  measured at well under 2% of the splice hot path (see
  ``benchmarks/test_telemetry_overhead.py`` and the ``overhead``
  section of ``repro-checksums bench`` snapshots);
* under ``--metrics`` / ``bench`` the CLI installs a real
  :class:`Telemetry` via :func:`activate` (or the :func:`collect`
  context manager) and exports a snapshot at the end.

Worker processes spawned by :class:`repro.core.supervisor
.SupervisedPool` inherit the *default* (disabled) state; countable
totals are accounted in the parent from returned results, which is
what keeps counter totals bit-identical across ``--workers`` settings.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

from repro.telemetry.metrics import Counter, Gauge, Histogram, Meter
from repro.telemetry.spans import ActiveSpan, SpanNode

__all__ = [
    "NullTelemetry",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "activate",
    "collect",
    "current",
    "deactivate",
]

#: Schema identifier stamped into every exported snapshot.
TELEMETRY_SCHEMA = "repro-telemetry/1"


class Telemetry:
    """Spans + counters + gauges + meters + histograms, one registry."""

    enabled = True

    def __init__(self):
        self._root = SpanNode("run")
        self._stack = [self._root]
        self._counters = {}
        self._gauges = {}
        self._meters = {}
        self._histograms = {}

    # -- spans -------------------------------------------------------------

    def span(self, name):
        """Context manager timing a named region under the active span."""
        return ActiveSpan(self._stack, self._stack[-1].child(name))

    # -- instruments -------------------------------------------------------

    def count(self, name, amount=1):
        """Add ``amount`` to the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        counter.add(amount)

    def gauge(self, name, value):
        """Set the gauge ``name`` to ``value``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.set(value)

    def meter(self, name, amount, seconds=0.0):
        """Feed a throughput meter with (amount, elapsed-seconds)."""
        meter = self._meters.get(name)
        if meter is None:
            meter = self._meters[name] = Meter()
        meter.mark(amount, seconds)

    def observe(self, name, seconds):
        """Record one latency observation into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(seconds)

    # -- export ------------------------------------------------------------

    def snapshot(self):
        """A JSON-native dict of everything recorded so far.

        The layout is stable under :data:`TELEMETRY_SCHEMA`; see
        ``docs/architecture.md`` ("Observability") for field meanings.
        """
        return {
            "schema": TELEMETRY_SCHEMA,
            # Span order *is* execution order.  reprolint: disable=REP103
            "spans": [node.to_dict() for node in self._root.children.values()],
            "counters": {
                name: self._counters[name].to_dict()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].to_dict()
                for name in sorted(self._gauges)
            },
            "meters": {
                name: self._meters[name].to_dict()
                for name in sorted(self._meters)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent=None):
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_markdown(self):
        """Markdown rendering of the snapshot (the ``--metrics md`` view)."""
        from repro.telemetry.export import render_markdown

        return render_markdown(self.snapshot())


class _NullSpan:
    """The shared do-nothing span context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Strict no-op twin of :class:`Telemetry` (the disabled state).

    Every method is safe to call unconditionally from hot paths; none
    allocates.  ``snapshot()`` reports an empty, schema-stamped dict so
    exporters need no special casing.
    """

    enabled = False

    __slots__ = ()

    def span(self, name):
        return _NULL_SPAN

    def count(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def meter(self, name, amount, seconds=0.0):
        pass

    def observe(self, name, seconds):
        pass

    def snapshot(self):
        return {
            "schema": TELEMETRY_SCHEMA,
            "spans": [],
            "counters": {},
            "gauges": {},
            "meters": {},
            "histograms": {},
        }

    def to_json(self, indent=None):
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)

    def render_markdown(self):
        from repro.telemetry.export import render_markdown

        return render_markdown(self.snapshot())


#: The shared disabled instance installed by default.
NULL = NullTelemetry()

_ACTIVE = NULL


def current():
    """The process-wide telemetry (the disabled :data:`NULL` by default)."""
    return _ACTIVE


def activate(telemetry=None):
    """Install (and return) a process-wide :class:`Telemetry`."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def deactivate():
    """Restore the disabled no-op state; returns the displaced registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL
    return previous


@contextmanager
def collect(telemetry=None):
    """``with collect() as tel:`` — activate for the block, then restore."""
    telemetry = activate(telemetry)
    try:
        yield telemetry
    finally:
        deactivate()
