"""Hierarchical span timers: aggregated wall + CPU time per call site.

A span is one *named region* of the run ("engine.crc32", "store.get").
Spans nest: entering a span while another is active attaches it as a
child, so the export is a tree mirroring the call structure.  Spans
with the same name under the same parent are **aggregated** into one
node (count + total wall + total CPU) rather than appended, so a hot
loop instrumented with a span costs O(1) memory no matter how many
iterations run.

Wall time comes from :func:`time.perf_counter`, CPU time from
:func:`time.process_time`; both are monotonic and unaffected by wall
clock adjustments.
"""

from __future__ import annotations

import time

__all__ = ["SpanNode"]


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "wall", "cpu", "children")

    def __init__(self, name):
        self.name = name
        #: completed enter/exit cycles aggregated into this node.
        self.count = 0
        #: total wall-clock seconds across all cycles.
        self.wall = 0.0
        #: total process CPU seconds across all cycles.
        self.cpu = 0.0
        #: child name -> :class:`SpanNode`, insertion-ordered.
        self.children = {}

    def child(self, name):
        """The (created-on-demand) child node named ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self):
        """JSON-native rendering of this node and its subtree."""
        entry = {
            "name": self.name,
            "count": self.count,
            "wall_s": round(self.wall, 9),
            "cpu_s": round(self.cpu, 9),
        }
        if self.children:
            # Span order *is* execution order -- meaningful, and
            # deterministic for a deterministic run.
            # reprolint: disable=REP103
            entry["children"] = [c.to_dict() for c in self.children.values()]
        return entry

    def render(self, indent=0):
        """Indented text lines for markdown/console export."""
        lines = [
            "%s%-*s %6d call%s %10.4fs wall %10.4fs cpu"
            % (
                "  " * indent,
                max(1, 32 - 2 * indent),
                self.name,
                self.count,
                " " if self.count == 1 else "s",
                self.wall,
                self.cpu,
            )
        ]
        # Execution order, as in to_dict().  reprolint: disable=REP103
        for node in self.children.values():
            lines.extend(node.render(indent + 1))
        return lines


class ActiveSpan:
    """Context manager timing one enter/exit cycle of a node.

    Created by :meth:`repro.telemetry.core.Telemetry.span`; accumulates
    into the aggregated :class:`SpanNode` on exit and pops itself off
    the telemetry's span stack.
    """

    __slots__ = ("_stack", "_node", "_wall0", "_cpu0")

    def __init__(self, stack, node):
        self._stack = stack
        self._node = node

    def __enter__(self):
        self._stack.append(self._node)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self._node

    def __exit__(self, exc_type, exc, tb):
        node = self._node
        node.wall += time.perf_counter() - self._wall0
        node.cpu += time.process_time() - self._cpu0
        node.count += 1
        # Pop back to this span's parent; tolerate (but do not hide)
        # mispaired exits by searching from the top of the stack.
        stack = self._stack
        for index in range(len(stack) - 1, 0, -1):
            if stack[index] is node:
                del stack[index:]
                break
        return False
