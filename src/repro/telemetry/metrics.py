"""Counters, gauges, throughput meters, and latency histograms.

All instruments are in-process, lock-free (the library is
single-threaded per process; worker processes carry their own —
usually disabled — telemetry), and JSON-native via ``to_dict``.

Design rule, load-bearing for reproducibility tests: **counter and
meter *amounts* are facts about the work done** (files processed,
splices evaluated, bytes ingested), accounted in the parent process
from returned results — so their totals are bit-identical no matter
how the run was parallelised.  Wall-clock facts (span times, meter
``seconds``, histogram observations) naturally vary run to run and are
excluded from stability guarantees.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "Meter"]


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, amount=1):
        self.value += amount

    def to_dict(self):
        return self.value


class Gauge:
    """A last-write-wins scalar (pool width, corpus size, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value

    def to_dict(self):
        return self.value


class Meter:
    """A throughput meter: accumulated amount over accumulated seconds.

    ``rate`` divides the two, so a meter fed per-batch (amount, dt)
    pairs reports the aggregate bytes/sec, cells/sec, splices/sec.
    """

    __slots__ = ("amount", "seconds")

    def __init__(self):
        self.amount = 0
        self.seconds = 0.0

    def mark(self, amount, seconds=0.0):
        self.amount += amount
        self.seconds += seconds

    @property
    def rate(self):
        return self.amount / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self):
        return {
            "amount": self.amount,
            "seconds": round(self.seconds, 9),
            "rate": round(self.rate, 3),
        }


#: Decade bucket upper bounds (seconds) for latency histograms:
#: 1µs .. 100s, plus an overflow bucket.
LATENCY_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Histogram:
    """A fixed-bucket histogram for latency observations (seconds)."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds=LATENCY_BOUNDS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        return {
            "count": self.count,
            "sum_s": round(self.total, 9),
            "min_s": round(self.min, 9) if self.min is not None else None,
            "max_s": round(self.max, 9) if self.max is not None else None,
            "bounds_s": list(self.bounds),
            "buckets": list(self.buckets),
        }
