"""repro.telemetry: span tracing, metrics, and bench snapshots.

The observability layer threaded through every major subsystem:

* :mod:`repro.telemetry.spans` -- hierarchical, aggregated wall+CPU
  span timers;
* :mod:`repro.telemetry.metrics` -- counters, gauges, throughput
  meters, latency histograms;
* :mod:`repro.telemetry.core` -- the process-wide registry
  (:func:`current` / :func:`activate` / :func:`collect`) and its
  strict no-op disabled twin;
* :mod:`repro.telemetry.export` -- JSON / markdown snapshot rendering
  (the CLI's ``--metrics``);
* :mod:`repro.telemetry.bench` -- the ``repro-checksums bench``
  workload matrix and its ``BENCH_<n>.json`` trajectory.

Telemetry is **off by default** and a strict no-op when off: hot paths
call :func:`current` and instrument unconditionally; the disabled cost
is bounded below 2% of the splice hot path (enforced by
``benchmarks/test_telemetry_overhead.py``).

The package resolves its exports lazily (PEP 562) so importing
:mod:`repro.telemetry` from hot modules stays free.
"""

import importlib

_EXPORTS = {
    "NullTelemetry": "repro.telemetry.core",
    "TELEMETRY_SCHEMA": "repro.telemetry.core",
    "Telemetry": "repro.telemetry.core",
    "activate": "repro.telemetry.core",
    "collect": "repro.telemetry.core",
    "current": "repro.telemetry.core",
    "deactivate": "repro.telemetry.core",
    "render_markdown": "repro.telemetry.export",
    "write_metrics": "repro.telemetry.export",
    "BENCH_SCHEMA": "repro.telemetry.bench",
    "run_bench": "repro.telemetry.bench",
    "validate_snapshot": "repro.telemetry.bench",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
