"""Render telemetry snapshots as JSON or markdown; write ``--metrics``.

The JSON form *is* the snapshot (schema ``repro-telemetry/1``); the
markdown form is a human-ordered digest: span tree, counters, meters
with derived rates, histogram summaries.
"""

from __future__ import annotations

import json

__all__ = ["render_markdown", "write_metrics"]


def _span_lines(entry, indent, lines):
    lines.append(
        "%s%s: %d call%s, %.4fs wall, %.4fs cpu"
        % (
            "  " * indent,
            entry["name"],
            entry["count"],
            "" if entry["count"] == 1 else "s",
            entry["wall_s"],
            entry["cpu_s"],
        )
    )
    for child in entry.get("children", ()):
        _span_lines(child, indent + 1, lines)


def render_markdown(snapshot):
    """Markdown text for one telemetry snapshot dict."""
    lines = ["# Telemetry (%s)" % snapshot.get("schema", "?"), ""]

    spans = snapshot.get("spans") or []
    if spans:
        lines.append("## Spans")
        lines.append("")
        lines.append("```")
        for entry in spans:
            _span_lines(entry, 0, lines)
        lines.append("```")
        lines.append("")

    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("## Counters")
        lines.append("")
        lines.append("| counter | total |")
        lines.append("|---|---:|")
        for name, value in sorted(counters.items()):
            lines.append("| %s | %d |" % (name, value))
        lines.append("")

    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("## Gauges")
        lines.append("")
        lines.append("| gauge | value |")
        lines.append("|---|---:|")
        for name, value in sorted(gauges.items()):
            lines.append("| %s | %s |" % (name, value))
        lines.append("")

    meters = snapshot.get("meters") or {}
    if meters:
        lines.append("## Meters")
        lines.append("")
        lines.append("| meter | amount | seconds | rate/s |")
        lines.append("|---|---:|---:|---:|")
        for name, entry in sorted(meters.items()):
            lines.append(
                "| %s | %d | %.4f | %.1f |"
                % (name, entry["amount"], entry["seconds"], entry["rate"])
            )
        lines.append("")

    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("## Histograms")
        lines.append("")
        lines.append("| histogram | count | mean | min | max |")
        lines.append("|---|---:|---:|---:|---:|")
        for name, entry in sorted(histograms.items()):
            count = entry["count"]
            mean = entry["sum_s"] / count if count else 0.0
            lines.append(
                "| %s | %d | %.6fs | %.6fs | %.6fs |"
                % (
                    name,
                    count,
                    mean,
                    entry["min_s"] or 0.0,
                    entry["max_s"] or 0.0,
                )
            )
        lines.append("")

    if len(lines) == 2:
        lines.append("*(no telemetry recorded)*")
    return "\n".join(lines).rstrip() + "\n"


def write_metrics(snapshot, destination, stream=None):
    """Emit a snapshot per the CLI ``--metrics`` argument.

    ``destination`` is ``"json"`` or ``"md"`` (write to ``stream`` /
    stdout) or a path (format chosen by suffix, ``.json`` vs anything
    else -> markdown).  Returns the text written.
    """
    if destination == "json":
        text = json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
        path = None
    elif destination == "md":
        text = render_markdown(snapshot)
        path = None
    elif destination.endswith(".json"):
        text = json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
        path = destination
    else:
        text = render_markdown(snapshot)
        path = destination
    if path is None:
        if stream is None:
            import sys

            stream = sys.stdout
        stream.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
