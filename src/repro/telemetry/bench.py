"""``repro-checksums bench``: the repo's performance trajectory.

Koopman (arXiv:2302.13432) and Nguyen (arXiv:1009.5949) argue checksum
designs with cells/sec and cycles/byte; this module does the same for
our own kernels.  One invocation runs a fixed, seeded workload matrix
and writes a schema-versioned ``BENCH_<n>.json`` snapshot:

* **per-algorithm kernels** — for every algorithm in the registry,
  cells/sec over 48-byte ATM cells (the vectorized kernel where one
  exists, the scalar ``compute`` otherwise) and splices/sec judging
  candidate splice buffers end to end;
* **engine matrix** — the full :class:`repro.core.engine.SpliceEngine`
  over transport algorithm x placement x corpus size, in splices/sec;
* **telemetry overhead** — measured cost of the *disabled* telemetry
  calls on the splice hot path, asserted <2% by
  ``benchmarks/test_telemetry_overhead.py``.

Snapshots are append-only (``BENCH_0001.json``, ``BENCH_0002.json``,
...); each run renders a delta table against the previous snapshot so
a regression is visible the moment it lands.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA",
    "delta_table",
    "latest_snapshot",
    "next_snapshot_path",
    "run_bench",
    "validate_snapshot",
    "write_snapshot",
]

#: Schema identifier; bump when the snapshot layout changes.
BENCH_SCHEMA = "repro-bench/1"

_FILE_RE = re.compile(r"^BENCH_(\d{4})\.json$")

#: Required keys, exact, at each level (schema-drift detection).
_TOP_KEYS = {
    "schema", "created_unix", "quick", "machine", "workload",
    "algorithms", "engine", "overhead",
}
_ALGORITHM_KEYS = {"width", "kind", "cells_per_sec", "splices_per_sec"}
_ENGINE_KEYS = {
    "algorithm", "placement", "corpus_bytes", "splices", "seconds",
    "splices_per_sec",
}
_OVERHEAD_KEYS = {"disabled_pct", "enabled_pct", "batches"}
#: Optional section (older snapshots predate it) -- validated when
#: present so drift cannot creep in behind the optionality.
_CHANNEL_KEYS = {"cells", "seconds", "cells_per_sec", "frames",
                 "retransmissions"}

_CELL = 48
_SEED = 1


# ----------------------------------------------------------------------
# timing helpers

def _best_seconds(fn, min_time):
    """Best (minimum) single-call wall time, sampling for >= min_time."""
    best = None
    spent = 0.0
    while spent < min_time:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        spent += dt
        if best is None or dt < best:
            best = dt
    return max(best, 1e-9)


def _cells_per_sec(name, algorithm, cells, min_time):
    """Cells/sec of the algorithm's best available per-cell kernel."""
    if hasattr(algorithm, "process_cells"):  # CRC engines
        fn = lambda: algorithm.process_cells(cells)
    elif hasattr(algorithm, "cell_sums"):  # Internet checksum
        fn = lambda: algorithm.cell_sums(cells)
    elif hasattr(algorithm, "modulus") and algorithm.modulus in (255, 256):
        from repro.checksums.fletcher import fletcher8_cells

        fn = lambda: fletcher8_cells(cells, algorithm.modulus)
    else:  # scalar fallback: one compute over the concatenated buffer
        buf = cells.tobytes()
        fn = lambda: algorithm.compute(buf)
    return len(cells) / _best_seconds(fn, min_time)


def _scalar_splices_per_sec(algorithm, candidates, min_time):
    """End-to-end splice judgements/sec: one ``compute`` per candidate."""
    def judge():
        compute = algorithm.compute
        for candidate in candidates:
            compute(candidate)

    return len(candidates) / _best_seconds(judge, min_time)


def _splices_per_sec(algorithm, candidates, min_time):
    """Judgements/sec via the batch tier (``compute_many``) when present."""
    from repro.checksums.registry import supports_batch

    if not supports_batch(algorithm):
        return _scalar_splices_per_sec(algorithm, candidates, min_time)
    import numpy as np

    blocks = np.stack(
        [np.frombuffer(c, dtype=np.uint8) for c in candidates]
    )
    return len(candidates) / _best_seconds(
        lambda: algorithm.compute_many(blocks), min_time
    )


def _splice_candidates(count, packet_bytes=1008):
    """Deterministic candidate splice buffers at cell boundaries."""
    from repro.corpus.generators import generate

    boundaries = packet_bytes // _CELL
    candidates = []
    pair = 0
    while len(candidates) < count:
        blob = generate("english", 2 * packet_bytes, _SEED + pair)
        first, second = blob[:packet_bytes], blob[packet_bytes:]
        for j in range(1, boundaries):
            if len(candidates) >= count:
                break
            candidates.append(first[: _CELL * j] + second[_CELL * j :])
        pair += 1
    return candidates


# ----------------------------------------------------------------------
# workload sections

def _algorithm_section(quick):
    import numpy as np

    from repro.checksums.crc import CRCEngine
    from repro.checksums.registry import available_algorithms, get_algorithm
    from repro.corpus.generators import generate

    n_cells = 2048 if quick else 16384
    n_candidates = 64 if quick else 256
    min_time = 0.02 if quick else 0.1

    cells = np.frombuffer(
        generate("english", _CELL * n_cells, _SEED), dtype=np.uint8
    ).reshape(-1, _CELL)
    candidates = _splice_candidates(n_candidates)

    out = {}
    for name in available_algorithms():
        algorithm = get_algorithm(name)
        out[name] = {
            "width": algorithm.width,
            "kind": "crc" if isinstance(algorithm, CRCEngine) else "checksum",
            "cells_per_sec": round(
                _cells_per_sec(name, algorithm, cells, min_time), 1
            ),
            # The batch tier where one exists; the scalar rate rides
            # along so every snapshot shows the scalar -> batch delta.
            "splices_per_sec": round(
                _splices_per_sec(algorithm, candidates, min_time), 1
            ),
            "scalar_splices_per_sec": round(
                _scalar_splices_per_sec(algorithm, candidates, min_time), 1
            ),
        }
    return out, {"cells": n_cells, "splice_candidates": n_candidates}


_ENGINE_MATRIX_QUICK = (
    ("tcp", "header"),
    ("tcp", "trailer"),
    ("fletcher255", "header"),
    ("fletcher256", "header"),
)
_ENGINE_MATRIX_FULL = _ENGINE_MATRIX_QUICK + (
    ("fletcher255", "trailer"),
    ("fletcher256", "trailer"),
)


#: Corpus for the scalar-vs-batch comparison rows: small enough that
#: the byte-at-a-time reference receiver finishes in seconds.
_COMPARE_BYTES = 8_000


def _engine_row(fs, algorithm, placement, corpus_bytes, engine):
    from repro.core.experiment import run_splice_experiment
    from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

    config = PacketizerConfig(
        algorithm=algorithm, placement=ChecksumPlacement(placement)
    )
    t0 = time.perf_counter()
    result = run_splice_experiment(fs, config, engine=engine)
    dt = max(time.perf_counter() - t0, 1e-9)
    return {
        "algorithm": algorithm,
        "placement": placement,
        "corpus_bytes": corpus_bytes,
        "engine": result.options.engine,
        "splices": result.counters.total,
        "seconds": round(dt, 6),
        "splices_per_sec": round(result.counters.total / dt, 1),
    }


def _engine_section(quick, engine="batch"):
    from repro.corpus.profiles import build_filesystem

    sizes = (60_000,) if quick else (120_000, 400_000)
    matrix = _ENGINE_MATRIX_QUICK if quick else _ENGINE_MATRIX_FULL

    rows = []
    for corpus_bytes in sizes:
        fs = build_filesystem("stanford-u1", corpus_bytes, _SEED)
        for algorithm, placement in matrix:
            rows.append(
                _engine_row(fs, algorithm, placement, corpus_bytes, engine)
            )
    # Scalar-vs-batch comparison pair on a corpus the reference
    # receiver can finish: the snapshot itself records the delta the
    # CI bench-smoke gate asserts (batch >= 5x scalar).
    fs = build_filesystem("stanford-u1", _COMPARE_BYTES, _SEED)
    for kind in ("batch", "scalar"):
        rows.append(_engine_row(fs, "tcp", "header", _COMPARE_BYTES, kind))
    return rows, {"corpus_sizes": list(sizes), "engine": engine}


def _overhead_section(quick):
    """Measured cost of disabled-telemetry calls on the splice hot path.

    ``disabled_pct`` is (per-batch null instrumentation cost x batches)
    / (hot-path wall time), i.e. the exact overhead the instrumentation
    adds when telemetry is off.  ``enabled_pct`` is the A/B cost of a
    live registry, for context.
    """
    from repro.core.engine import EngineOptions, SpliceEngine
    from repro.corpus.generators import generate
    from repro.protocols.ftpsim import FileTransferSimulator
    from repro.protocols.packetizer import PacketizerConfig
    from repro.telemetry.core import collect, current, deactivate

    data = generate("english", 60_000 if quick else 150_000, _SEED)
    units = FileTransferSimulator(PacketizerConfig()).transfer(data)
    engine = SpliceEngine(EngineOptions())

    deactivate()  # ensure the disabled state for the baseline
    t_disabled = _best_seconds(
        lambda: engine.evaluate_stream(units), 0.05 if quick else 0.2
    )

    with collect() as telemetry:
        t_enabled = _best_seconds(
            lambda: engine.evaluate_stream(units), 0.05 if quick else 0.2
        )
        stream_node = telemetry._root.children.get("engine.stream")
        batch_node = (
            stream_node.children.get("engine.batch") if stream_node else None
        )
    # _best_seconds samples several passes; normalise the recorded span
    # counts back to a single evaluate_stream pass.
    passes = stream_node.count if stream_node else 1
    batches = batch_node.count if batch_node else passes
    spans_per_batch = 1 + len(batch_node.children) if batch_node else 8
    batches_per_pass = max(1, batches // max(passes, 1))

    def null_ops():
        telemetry_ = current()
        for _ in range(spans_per_batch):
            with telemetry_.span("x"):
                pass
        telemetry_.count("x", 1)
        telemetry_.meter("x", 1, 0.0)

    reps = 2000
    t0 = time.perf_counter()
    for _ in range(reps):
        null_ops()
    per_batch_cost = (time.perf_counter() - t0) / reps

    disabled_pct = 100.0 * (batches_per_pass * per_batch_cost) / t_disabled
    enabled_pct = 100.0 * (t_enabled - t_disabled) / t_disabled
    return {
        "disabled_pct": round(disabled_pct, 4),
        "enabled_pct": round(enabled_pct, 4),
        "batches": batches_per_pass,
    }


def _channel_section(quick):
    """Simulated cells/sec of the discrete-event channel + ARQ stack.

    One english file end-to-end through each plan; the rate counts
    every cell the sender pushed into the link (retransmissions
    included), which is the work the simulator actually performed.
    """
    from repro.channel.arq import run_channel_transfer
    from repro.channel.plan import named_channel_plan
    from repro.corpus.generators import generate

    data = generate("english", 30_000 if quick else 120_000, _SEED)
    section = {}
    for plan_name in ("clean", "bursty-link"):
        plan = named_channel_plan(plan_name, seed=_SEED)
        report = run_channel_transfer(data, plan)
        seconds = _best_seconds(
            lambda: run_channel_transfer(data, plan),
            0.05 if quick else 0.2,
        )
        section[plan_name] = {
            "cells": report.cells_sent,
            "seconds": round(seconds, 6),
            "cells_per_sec": round(report.cells_sent / seconds, 2),
            "frames": report.frames,
            "retransmissions": report.retransmissions,
        }
    return section


# ----------------------------------------------------------------------
# snapshot assembly, persistence, validation, deltas

def run_bench(quick=False, engine="batch"):
    """Run the workload matrix; return the snapshot dict.

    ``engine`` selects the splice evaluation path of the engine-matrix
    rows (the scalar-vs-batch comparison pair is measured regardless).
    """
    algorithms, algo_meta = _algorithm_section(quick)
    engine, engine_meta = _engine_section(quick, engine)
    overhead = _overhead_section(quick)
    channel = _channel_section(quick)
    workload = {"seed": _SEED, "cell_bytes": _CELL}
    workload.update(algo_meta)
    workload.update(engine_meta)
    return {
        "schema": BENCH_SCHEMA,
        # Snapshot *provenance*, not result data: bench numbers are
        # timings, never compared bit-for-bit.  reprolint: disable=REP102
        "created_unix": int(time.time()),
        "quick": bool(quick),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "workload": workload,
        "algorithms": algorithms,
        "engine": engine,
        "overhead": overhead,
        "channel": channel,
    }


def validate_snapshot(payload):
    """Raise ``ValueError`` on any schema drift; return the payload."""
    if not isinstance(payload, dict):
        raise ValueError("bench snapshot must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            "bench schema mismatch: expected %r, got %r"
            % (BENCH_SCHEMA, payload.get("schema"))
        )
    # "channel" joined the layout later: optional for old snapshots,
    # but never an excuse for unknown keys.
    drift = (set(payload) - {"channel"}) ^ _TOP_KEYS
    if drift:
        raise ValueError(
            "bench snapshot top-level drift: %s" % ", ".join(sorted(drift))
        )
    algorithms = payload["algorithms"]
    if not algorithms:
        raise ValueError("bench snapshot has no algorithm entries")
    for name, entry in algorithms.items():
        missing = _ALGORITHM_KEYS - set(entry)
        if missing:
            raise ValueError(
                "algorithm %r missing keys: %s" % (name, ", ".join(sorted(missing)))
            )
        for key in ("cells_per_sec", "splices_per_sec"):
            if not isinstance(entry[key], (int, float)) or entry[key] <= 0:
                raise ValueError("algorithm %r has non-positive %s" % (name, key))
    if not payload["engine"]:
        raise ValueError("bench snapshot has no engine rows")
    for row in payload["engine"]:
        missing = _ENGINE_KEYS - set(row)
        if missing:
            raise ValueError(
                "engine row missing keys: %s" % ", ".join(sorted(missing))
            )
    missing = _OVERHEAD_KEYS - set(payload["overhead"])
    if missing:
        raise ValueError(
            "overhead section missing keys: %s" % ", ".join(sorted(missing))
        )
    for plan_name, entry in payload.get("channel", {}).items():
        drift = set(entry) ^ _CHANNEL_KEYS
        if drift:
            raise ValueError(
                "channel plan %r key drift: %s"
                % (plan_name, ", ".join(sorted(drift)))
            )
        if not isinstance(entry["cells_per_sec"], (int, float)) \
                or entry["cells_per_sec"] <= 0:
            raise ValueError(
                "channel plan %r has non-positive cells_per_sec" % plan_name
            )
    return payload


def _snapshots(directory):
    """Sorted ``[(index, path), ...]`` of snapshots in ``directory``."""
    directory = Path(directory)
    found = []
    if directory.is_dir():
        for path in directory.iterdir():
            match = _FILE_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
    return sorted(found)


def latest_snapshot(directory):
    """(payload, path) of the newest snapshot, or (None, None)."""
    found = _snapshots(directory)
    if not found:
        return None, None
    path = found[-1][1]
    return json.loads(path.read_text(encoding="utf-8")), path


def next_snapshot_path(directory):
    """The path the next snapshot should be written to."""
    found = _snapshots(directory)
    index = found[-1][0] + 1 if found else 1
    return Path(directory) / ("BENCH_%04d.json" % index)


def write_snapshot(payload, directory="."):
    """Validate and persist ``payload``; return its path."""
    validate_snapshot(payload)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = next_snapshot_path(directory)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def _pct_delta(new, old):
    if not old:
        return "n/a"
    return "%+.1f%%" % (100.0 * (new - old) / old)


def delta_table(previous, current_payload):
    """Markdown delta of ``current_payload`` against ``previous``.

    ``previous`` may be None (first snapshot): renders absolute rates
    only.
    """
    lines = ["| metric | now | previous | delta |", "|---|---:|---:|---:|"]
    prev_algorithms = (previous or {}).get("algorithms", {})
    for name, entry in sorted(current_payload["algorithms"].items()):
        for key, label in (("cells_per_sec", "cells/s"),
                           ("splices_per_sec", "splices/s")):
            old = prev_algorithms.get(name, {}).get(key)
            lines.append(
                "| %s %s | %.0f | %s | %s |"
                % (
                    name,
                    label,
                    entry[key],
                    "%.0f" % old if old else "-",
                    _pct_delta(entry[key], old),
                )
            )
    prev_engine = {
        (r["algorithm"], r["placement"], r["corpus_bytes"],
         r.get("engine", "batch")): r
        for r in (previous or {}).get("engine", [])
    }
    for row in current_payload["engine"]:
        kind = row.get("engine", "batch")
        key = (row["algorithm"], row["placement"], row["corpus_bytes"], kind)
        old = prev_engine.get(key, {}).get("splices_per_sec")
        lines.append(
            "| engine[%s] %s/%s @%d splices/s | %.0f | %s | %s |"
            % (
                kind,
                row["algorithm"],
                row["placement"],
                row["corpus_bytes"],
                row["splices_per_sec"],
                "%.0f" % old if old else "-",
                _pct_delta(row["splices_per_sec"], old),
            )
        )
    prev_channel = (previous or {}).get("channel", {})
    for plan_name, entry in sorted(current_payload.get("channel", {}).items()):
        old = prev_channel.get(plan_name, {}).get("cells_per_sec")
        lines.append(
            "| channel %s cells/s | %.0f | %s | %s |"
            % (
                plan_name,
                entry["cells_per_sec"],
                "%.0f" % old if old else "-",
                _pct_delta(entry["cells_per_sec"], old),
            )
        )
    overhead = current_payload["overhead"]
    lines.append(
        "| telemetry disabled overhead | %.3f%% | | |" % overhead["disabled_pct"]
    )
    return "\n".join(lines)
