"""IPv4 fragmentation and reassembly.

The paper's abstract calls out "fragmentation-and-reassembly error
models": when a reassembler combines fragments that did not all come
from the same datagram (IP ID wrap, buggy middlebox), the transport
checksum is the only thing left to notice.  This module provides the
substrate -- standards-shaped fragmentation (8-byte offset units, MF
flag, per-fragment header checksums) and strict reassembly -- used by
:mod:`repro.core.fragsplice` to measure that error model.
"""

from __future__ import annotations

from repro.checksums.internet import internet_checksum_field
from repro.protocols.ip import IP_HEADER_LEN, parse_ipv4_header

__all__ = [
    "FRAGMENT_UNIT",
    "FragmentationError",
    "fragment_packet",
    "reassemble_fragments",
]

#: Fragment offsets are expressed in units of 8 bytes.
FRAGMENT_UNIT = 8

_FLAG_MF = 0x2000
_FLAG_DF = 0x4000
_OFFSET_MASK = 0x1FFF


class FragmentationError(ValueError):
    """Raised on invalid fragmentation or failed reassembly."""


def _with_fragment_fields(header, payload_len, offset_units, more_fragments):
    patched = bytearray(header)
    total = IP_HEADER_LEN + payload_len
    patched[2:4] = total.to_bytes(2, "big")
    flags_fragment = (offset_units & _OFFSET_MASK) | (
        _FLAG_MF if more_fragments else 0
    )
    patched[6:8] = flags_fragment.to_bytes(2, "big")
    patched[10:12] = b"\x00\x00"
    patched[10:12] = internet_checksum_field(patched).to_bytes(2, "big")
    return bytes(patched)


def fragment_packet(ip_packet, mtu):
    """Fragment an IP packet for a link MTU.

    Every fragment but the last carries a payload that is a multiple
    of 8 bytes (the offset unit); each fragment gets its own header
    with the offset, the MF flag, and a recomputed header checksum.
    Returns the packet unchanged (as a single-element list) when it
    already fits.
    """
    header = parse_ipv4_header(ip_packet)
    if header.ihl != 5:
        raise FragmentationError("only option-less headers are supported")
    if len(ip_packet) != header.total_length:
        raise FragmentationError("packet length disagrees with its header")
    if mtu < IP_HEADER_LEN + FRAGMENT_UNIT:
        raise FragmentationError("mtu too small to carry any payload")
    if header.flags_fragment & _FLAG_DF and header.total_length > mtu:
        raise FragmentationError("DF set on a packet larger than the MTU")
    if header.total_length <= mtu:
        return [bytes(ip_packet)]

    payload = ip_packet[IP_HEADER_LEN:]
    per_fragment = (mtu - IP_HEADER_LEN) // FRAGMENT_UNIT * FRAGMENT_UNIT
    base_header = ip_packet[:IP_HEADER_LEN]
    fragments = []
    offset = 0
    while offset < len(payload):
        chunk = payload[offset : offset + per_fragment]
        more = offset + len(chunk) < len(payload)
        fragments.append(
            _with_fragment_fields(
                base_header, len(chunk), offset // FRAGMENT_UNIT, more
            )
            + chunk
        )
        offset += len(chunk)
    return fragments


def reassemble_fragments(fragments, check_header=True):
    """Strictly reassemble fragments into the original IP packet.

    Fragments may arrive in any order; holes, overlaps, a missing
    final fragment, or inconsistent headers raise
    :class:`FragmentationError`.  (A *strict* reassembler -- the
    fragment-splice error model of :mod:`repro.core.fragsplice` models
    the non-strict kind that mixes datagrams.)
    """
    if not fragments:
        raise FragmentationError("no fragments")
    parsed = []
    for fragment in fragments:
        header = parse_ipv4_header(fragment)
        if check_header:
            from repro.checksums.internet import ones_complement_sum

            if ones_complement_sum(fragment[:IP_HEADER_LEN]) != 0xFFFF:
                raise FragmentationError("fragment header checksum invalid")
        offset = (header.flags_fragment & _OFFSET_MASK) * FRAGMENT_UNIT
        more = bool(header.flags_fragment & _FLAG_MF)
        parsed.append((offset, more, header, bytes(fragment)))
    parsed.sort(key=lambda item: item[0])

    first = parsed[0][2]
    expected_offset = 0
    payload = bytearray()
    for index, (offset, more, header, raw) in enumerate(parsed):
        if (header.ident, header.src, header.dst, header.protocol) != (
            first.ident, first.src, first.dst, first.protocol,
        ):
            raise FragmentationError("fragments from different datagrams")
        if offset != expected_offset:
            raise FragmentationError(
                "hole or overlap at offset %d (expected %d)" % (offset, expected_offset)
            )
        last = index == len(parsed) - 1
        if more == last:
            raise FragmentationError("MF flag inconsistent with position")
        payload.extend(raw[IP_HEADER_LEN:])
        expected_offset += len(raw) - IP_HEADER_LEN

    rebuilt = _with_fragment_fields(
        parsed[0][3][:IP_HEADER_LEN], len(payload), 0, False
    )
    return rebuilt + bytes(payload)
