"""Protocol substrate: IPv4, TCP, ATM cells and AAL5 framing.

The paper simulates FTP file transfers over TCP/IP carried in AAL5 over
ATM.  This package builds the bytes that go "on the wire":

- :mod:`repro.protocols.ip` -- IPv4 header construction, parsing and
  header-checksum validation.
- :mod:`repro.protocols.tcp` -- TCP header construction/parsing and the
  pseudo-header checksum, for both the standard header placement and
  the paper's trailer placement, and for Fletcher check bytes.
- :mod:`repro.protocols.atm` -- the 53-byte ATM cell model, including
  the HEC (CRC-8) header check and the AAL5 last-cell marking.
- :mod:`repro.protocols.aal5` -- AAL5 CPCS framing: padding, the 8-byte
  trailer with length and CRC-32, segmentation and reassembly.
- :mod:`repro.protocols.packetizer` -- turns a file into the paper's
  packet stream (seq += payload, IP ID += 1, 256-byte segments) under a
  configurable checksum algorithm/placement.
- :mod:`repro.protocols.ftpsim` -- the simulated FTP transfer driving
  the splice experiments.
"""

from repro.protocols.aal5 import (
    AAL5_TRAILER_LEN,
    CELL_PAYLOAD,
    AAL5Error,
    AAL5Frame,
    build_aal5_frame,
    reassemble_frame,
)
from repro.protocols.atm import AtmCell, AtmCellHeader, cells_for_frame
from repro.protocols.ip import (
    IP_HEADER_LEN,
    IPv4Header,
    build_ipv4_header,
    parse_ipv4_header,
    validate_ipv4_header,
)
from repro.protocols.packetizer import (
    ChecksumPlacement,
    Packetizer,
    PacketizerConfig,
    TCPPacket,
)
from repro.protocols.ftpsim import FileTransferSimulator, TransferUnit
from repro.protocols.tcp import (
    TCP_HEADER_LEN,
    TCPHeader,
    build_tcp_header,
    parse_tcp_header,
    pseudo_header_word_sum,
    tcp_checksum_field,
    verify_tcp_checksum,
)

__all__ = [
    "AAL5Error",
    "AAL5Frame",
    "AAL5_TRAILER_LEN",
    "AtmCell",
    "AtmCellHeader",
    "CELL_PAYLOAD",
    "ChecksumPlacement",
    "FileTransferSimulator",
    "IP_HEADER_LEN",
    "IPv4Header",
    "Packetizer",
    "PacketizerConfig",
    "TCPHeader",
    "TCPPacket",
    "TCP_HEADER_LEN",
    "TransferUnit",
    "build_aal5_frame",
    "build_ipv4_header",
    "build_tcp_header",
    "cells_for_frame",
    "parse_ipv4_header",
    "parse_tcp_header",
    "pseudo_header_word_sum",
    "reassemble_frame",
    "tcp_checksum_field",
    "validate_ipv4_header",
    "verify_tcp_checksum",
]
