"""Incremental checksum maintenance in forwarding paths (RFC 1141/1624).

Routers never recompute the IP header checksum from scratch: a TTL
decrement or a NAT rewrite updates the stored field from the delta
alone.  RFC 1141's ``HC' = HC + 1`` shortcut for TTL decrements and
RFC 1624's fully-general update (with its famous -0 corner case) are
implemented here, plus a minimal forwarding hop that applies them --
and the test suite proves the incremental results byte-equal a from-
scratch recomputation on every path.
"""

from __future__ import annotations

from repro.checksums.internet import (
    fold_carries,
    update_checksum_field,
    word_sums,
)
from repro.protocols.ip import IP_HEADER_LEN, parse_ipv4_header
from repro.protocols.tcp import TCP_CHECKSUM_OFFSET

__all__ = [
    "decrement_ttl",
    "rewrite_addresses",
    "verify_ip_header",
]


def verify_ip_header(packet):
    """True when the IP header checksum verifies."""
    return int(fold_carries(word_sums(packet[:IP_HEADER_LEN]))) == 0xFFFF


def decrement_ttl(packet):
    """Forward one hop: decrement TTL, update the checksum incrementally.

    Returns the rewritten packet.  Raises ``ValueError`` when the TTL
    is already zero (the packet would be dropped, not forwarded).
    """
    header = parse_ipv4_header(packet)
    if header.ttl == 0:
        raise ValueError("TTL expired; packet must be dropped")
    patched = bytearray(packet)
    old_word = (header.ttl << 8) | header.protocol
    patched[8] = header.ttl - 1
    new_word = ((header.ttl - 1) << 8) | header.protocol
    field = update_checksum_field(header.checksum, old_word, new_word)
    patched[10:12] = field.to_bytes(2, "big")
    return bytes(patched)


def rewrite_addresses(packet, new_src=None, new_dst=None):
    """NAT-style rewrite, updating IP *and* TCP checksums incrementally.

    The TCP checksum covers the pseudo-header, so address rewrites
    must patch it too -- the bug class RFC 1624 exists to prevent.
    Only option-less TCP packets are supported.
    """
    from repro.protocols.ip import ip_to_int

    header = parse_ipv4_header(packet)
    if header.protocol != 6:
        raise ValueError("only TCP packets are supported")
    patched = bytearray(packet)
    ip_field = header.checksum
    tcp_offset = IP_HEADER_LEN + TCP_CHECKSUM_OFFSET
    tcp_field = int.from_bytes(packet[tcp_offset : tcp_offset + 2], "big")

    rewrites = []
    if new_src is not None:
        rewrites.append((12, header.src, ip_to_int(new_src)))
    if new_dst is not None:
        rewrites.append((16, header.dst, ip_to_int(new_dst)))
    for offset, old, new in rewrites:
        patched[offset : offset + 4] = new.to_bytes(4, "big")
        for shift in (16, 0):
            old_word = (old >> shift) & 0xFFFF
            new_word = (new >> shift) & 0xFFFF
            ip_field = update_checksum_field(ip_field, old_word, new_word)
            tcp_field = update_checksum_field(tcp_field, old_word, new_word)
    patched[10:12] = ip_field.to_bytes(2, "big")
    patched[tcp_offset : tcp_offset + 2] = tcp_field.to_bytes(2, "big")
    return bytes(patched)
