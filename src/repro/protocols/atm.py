"""The 53-byte ATM cell: 5-byte header (with HEC) plus 48-byte payload.

The splice experiments only need cell payloads and the AAL5 last-cell
marking, but the full cell model is provided so the library stands on
its own as an ATM substrate: UNI header layout (GFC/VPI/VCI/PTI/CLP)
and the HEC, which is the CRC-8 (polynomial x^8+x^2+x+1, XORed with
0x55 per I.432) over the first four header bytes.

The PTI least-significant bit in a user-data cell is the AAL5
"end of CPCS-PDU" marker -- the bit whose loss creates packet splices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checksums.crc import CRCEngine, CRCSpec
from repro.protocols.aal5 import CELL_PAYLOAD

__all__ = ["AtmCell", "AtmCellHeader", "HEC_SPEC", "cells_for_frame"]

#: The ATM HEC: CRC-8 over the first 4 header octets, XORed with 0x55.
HEC_SPEC = CRCSpec("atm-hec", 8, 0x07, 0x00, False, False, 0x55)

_HEC_ENGINE = CRCEngine(HEC_SPEC)


@dataclass(frozen=True)
class AtmCellHeader:
    """A UNI-format ATM cell header."""

    vpi: int = 0
    vci: int = 32
    pti: int = 0
    clp: int = 0
    gfc: int = 0

    def __post_init__(self):
        if not 0 <= self.vpi <= 0xFF:
            raise ValueError("UNI VPI must fit in 8 bits")
        if not 0 <= self.vci <= 0xFFFF:
            raise ValueError("VCI must fit in 16 bits")
        if not 0 <= self.pti <= 0x7:
            raise ValueError("PTI is a 3-bit field")
        if self.clp not in (0, 1):
            raise ValueError("CLP is a single bit")
        if not 0 <= self.gfc <= 0xF:
            raise ValueError("GFC is a 4-bit field")

    @property
    def last_cell(self):
        """The AAL5 end-of-frame marking (PTI user bit)."""
        return bool(self.pti & 0x1)

    def pack(self):
        """Serialise to the 5 header octets, computing the HEC."""
        first_four = bytes(
            [
                (self.gfc << 4) | (self.vpi >> 4),
                ((self.vpi & 0xF) << 4) | (self.vci >> 12),
                (self.vci >> 4) & 0xFF,
                ((self.vci & 0xF) << 4) | (self.pti << 1) | self.clp,
            ]
        )
        return first_four + bytes([_HEC_ENGINE.compute(first_four)])

    @classmethod
    def unpack(cls, data, check_hec=True):
        """Parse 5 header octets, optionally verifying the HEC."""
        data = bytes(data)
        if len(data) < 5:
            raise ValueError("ATM header is 5 octets")
        if check_hec and _HEC_ENGINE.compute(data[:4]) != data[4]:
            raise ValueError("HEC mismatch")
        return cls(
            gfc=data[0] >> 4,
            vpi=((data[0] & 0xF) << 4) | (data[1] >> 4),
            vci=((data[1] & 0xF) << 12) | (data[2] << 4) | (data[3] >> 4),
            pti=(data[3] >> 1) & 0x7,
            clp=data[3] & 0x1,
        )


@dataclass(frozen=True)
class AtmCell:
    """An ATM cell: header plus 48-byte payload."""

    header: AtmCellHeader
    payload: bytes

    def __post_init__(self):
        if len(self.payload) != CELL_PAYLOAD:
            raise ValueError("ATM cell payload must be exactly 48 bytes")

    @property
    def last(self):
        return self.header.last_cell

    def pack(self):
        """The full 53-byte cell."""
        return self.header.pack() + self.payload


def cells_for_frame(frame, vpi=0, vci=32):
    """Segment an :class:`~repro.protocols.aal5.AAL5Frame` into cells.

    Every cell is an ordinary user-data cell except the last, whose PTI
    user bit marks the end of the CPCS-PDU.
    """
    cells = []
    payloads = frame.cells()
    last_index = len(payloads) - 1
    for index, payload in enumerate(payloads):
        header = AtmCellHeader(
            vpi=vpi, vci=vci, pti=1 if index == last_index else 0
        )
        cells.append(AtmCell(header=header, payload=payload.tobytes()))
    return cells
