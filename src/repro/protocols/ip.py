"""IPv4 header construction, parsing and validation.

Only the 20-byte option-less header the paper's simulated transfers use
is supported; that is also the only form the splice header checks need
to recognise.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.checksums.internet import (
    internet_checksum_field,
    ones_complement_sum,
)

__all__ = [
    "IP_HEADER_LEN",
    "IPv4Header",
    "build_ipv4_header",
    "ip_to_int",
    "parse_ipv4_header",
    "validate_ipv4_header",
]

#: Length of an option-less IPv4 header.
IP_HEADER_LEN = 20

_STRUCT = struct.Struct("!BBHHHBBHII")


def ip_to_int(address):
    """Convert dotted-quad text (or an int) to a 32-bit address."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError("address out of range")
        return address
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError("expected dotted-quad IPv4 address")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("octet out of range in %r" % address)
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class IPv4Header:
    """Parsed fields of an option-less IPv4 header."""

    version: int
    ihl: int
    tos: int
    total_length: int
    ident: int
    flags_fragment: int
    ttl: int
    protocol: int
    checksum: int
    src: int
    dst: int

    @property
    def header_length(self):
        return self.ihl * 4


def build_ipv4_header(
    total_length,
    ident,
    src,
    dst,
    protocol=6,
    ttl=64,
    tos=0,
    flags_fragment=0x4000,
    fill_checksum=True,
):
    """Build a 20-byte IPv4 header.

    ``fill_checksum=False`` leaves the header-checksum field zero; this
    reproduces the SIGCOMM '95 simulator bug (Section 6.2) whose effect
    the ablation benchmarks quantify.
    """
    header = bytearray(
        _STRUCT.pack(
            0x45,
            tos,
            total_length,
            ident & 0xFFFF,
            flags_fragment,
            ttl,
            protocol,
            0,
            ip_to_int(src),
            ip_to_int(dst),
        )
    )
    if fill_checksum:
        field = internet_checksum_field(header)
        header[10:12] = field.to_bytes(2, "big")
    return bytes(header)


def parse_ipv4_header(buf):
    """Parse the first 20 bytes of ``buf`` as an IPv4 header."""
    if len(buf) < IP_HEADER_LEN:
        raise ValueError("buffer shorter than an IPv4 header")
    (
        ver_ihl,
        tos,
        total_length,
        ident,
        flags_fragment,
        ttl,
        protocol,
        checksum,
        src,
        dst,
    ) = _STRUCT.unpack_from(bytes(buf[:IP_HEADER_LEN]))
    return IPv4Header(
        version=ver_ihl >> 4,
        ihl=ver_ihl & 0xF,
        tos=tos,
        total_length=total_length,
        ident=ident,
        flags_fragment=flags_fragment,
        ttl=ttl,
        protocol=protocol,
        checksum=checksum,
        src=src,
        dst=dst,
    )


def validate_ipv4_header(buf, require_checksum=True):
    """Structural validity of ``buf``'s leading IPv4 header.

    Checks version 4, IHL 5, a plausible total length, and (unless
    ``require_checksum`` is off for the Section 6.2 ablation) that the
    header sums to 0xFFFF.
    """
    if len(buf) < IP_HEADER_LEN:
        return False
    if buf[0] != 0x45:
        return False
    header = parse_ipv4_header(buf)
    if header.total_length < IP_HEADER_LEN:
        return False
    if require_checksum and ones_complement_sum(buf[:IP_HEADER_LEN]) != 0xFFFF:
        return False
    return True
