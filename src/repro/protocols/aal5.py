"""AAL5 CPCS framing: padding, trailer, CRC-32, cells.

An AAL5 CPCS-PDU is the payload, zero padding, and an 8-byte trailer
(CPCS-UU, CPI, 16-bit Length, 32-bit CRC) sized so the whole frame is a
multiple of the 48-byte ATM cell payload.  The CRC-32 covers everything
up to but not including the CRC field and is transmitted big-endian.
The last cell of a frame is marked via the ATM header PTI user bit;
that marking is what makes the paper's packet splices possible when the
marked cell of the first packet is lost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checksums.crc import CRC32_AAL5, CRCEngine

__all__ = [
    "AAL5_TRAILER_LEN",
    "CELL_PAYLOAD",
    "AAL5Error",
    "AAL5Frame",
    "aal5_crc_engine",
    "build_aal5_frame",
    "cells_needed",
    "reassemble_frame",
]

#: ATM cell payload size in bytes.
CELL_PAYLOAD = 48

#: AAL5 CPCS trailer length (UU + CPI + Length + CRC-32).
AAL5_TRAILER_LEN = 8

_ENGINE = CRCEngine(CRC32_AAL5)


def aal5_crc_engine():
    """The shared CRC-32 engine used for AAL5 framing."""
    return _ENGINE


class AAL5Error(ValueError):
    """Raised when an AAL5 frame fails reassembly validation."""


def cells_needed(payload_len):
    """Number of 48-byte cells for a payload of ``payload_len`` bytes."""
    return -(-(payload_len + AAL5_TRAILER_LEN) // CELL_PAYLOAD)


@dataclass(frozen=True)
class AAL5Frame:
    """A framed AAL5 CPCS-PDU and its cell decomposition."""

    payload: bytes
    frame: bytes
    crc: int

    @property
    def length(self):
        """The payload length carried in the trailer."""
        return len(self.payload)

    @property
    def cell_count(self):
        return len(self.frame) // CELL_PAYLOAD

    def cells(self):
        """The frame as an ``(m, 48)`` uint8 array of cell payloads."""
        return np.frombuffer(self.frame, dtype=np.uint8).reshape(-1, CELL_PAYLOAD)


def build_aal5_frame(payload, uu=0, cpi=0):
    """Frame ``payload`` as an AAL5 CPCS-PDU."""
    payload = bytes(payload)
    if len(payload) > 0xFFFF:
        raise ValueError("AAL5 payload exceeds 65535 bytes")
    total = len(payload) + AAL5_TRAILER_LEN
    pad = (-total) % CELL_PAYLOAD
    body = payload + bytes(pad) + bytes([uu, cpi]) + len(payload).to_bytes(2, "big")
    crc = _ENGINE.compute(body)
    frame = body + crc.to_bytes(4, "big")
    return AAL5Frame(payload=payload, frame=frame, crc=crc)


def reassemble_frame(cells, check_crc=True):
    """Reassemble cell payloads into the CPCS payload.

    ``cells`` is a sequence of 48-byte cell payloads (or an ``(m, 48)``
    array), the last of which carries the trailer.  Raises
    :class:`AAL5Error` on a length or CRC mismatch -- the checks that
    catch most, but per the paper not all, packet splices.
    """
    if isinstance(cells, np.ndarray):
        data = cells.astype(np.uint8).tobytes()
    else:
        data = b"".join(bytes(c) for c in cells)
    if len(data) < CELL_PAYLOAD or len(data) % CELL_PAYLOAD:
        raise AAL5Error("frame is not a whole number of cells")
    length = int.from_bytes(data[-6:-4], "big")
    max_payload = len(data) - AAL5_TRAILER_LEN
    if not max_payload - (CELL_PAYLOAD - 1) <= length <= max_payload:
        raise AAL5Error(
            "trailer length %d inconsistent with %d cells"
            % (length, len(data) // CELL_PAYLOAD)
        )
    if check_crc:
        stored = int.from_bytes(data[-4:], "big")
        if _ENGINE.compute(data[:-4]) != stored:
            raise AAL5Error("CRC-32 mismatch")
    return data[:length]
