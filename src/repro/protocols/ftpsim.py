"""The simulated FTP transfer that feeds the splice experiments.

The paper "simulated a file transfer with FTP of all files on a file
system via TCP/IP using AAL5 over ATM".  This module composes the
packetizer and the AAL5 framer: each file becomes a list of
:class:`TransferUnit` (the TCP/IP packet plus its AAL5 frame and
cells), and the splice experiment walks every adjacent pair.

Sequence numbers and IP IDs run continuously across the packets of one
file and restart for the next, mirroring one FTP data connection per
file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.aal5 import build_aal5_frame
from repro.protocols.packetizer import Packetizer

__all__ = ["FileTransferSimulator", "TransferUnit"]


@dataclass(frozen=True)
class TransferUnit:
    """One packet of a simulated transfer, framed for the wire."""

    packet: object  # TCPPacket
    frame: object  # AAL5Frame

    @property
    def cells(self):
        return self.frame.cells()


class FileTransferSimulator:
    """Simulates per-file FTP transfers under a packetizer config."""

    def __init__(self, config=None):
        self.packetizer = Packetizer(config)

    @property
    def config(self):
        return self.packetizer.config

    def transfer(self, data):
        """Transfer one file; returns its :class:`TransferUnit` list."""
        units = []
        for packet in self.packetizer.packetize(data):
            frame = build_aal5_frame(packet.ip_packet)
            units.append(TransferUnit(packet=packet, frame=frame))
        return units

    def adjacent_pairs(self, data):
        """Yield ``(unit, next_unit)`` for each adjacent packet pair."""
        units = self.transfer(data)
        for first, second in zip(units, units[1:]):
            yield first, second
