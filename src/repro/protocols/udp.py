"""UDP header construction and checksum semantics.

The Internet checksum studied by the paper covers UDP too, with one
extra wrinkle worth modelling: UDP's checksum is optional, and a
transmitted field of 0x0000 means "no checksum".  A computed sum of
zero is therefore transmitted as 0xFFFF (the other ones-complement
zero) -- the one place the two zeros the paper keeps running into are
given distinct protocol meanings.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.tcp import pseudo_header_word_sum

__all__ = [
    "UDP_HEADER_LEN",
    "UDPHeader",
    "build_udp_datagram",
    "parse_udp_header",
    "verify_udp_datagram",
]

UDP_HEADER_LEN = 8

_STRUCT = struct.Struct("!HHHH")

UDP_PROTOCOL = 17


@dataclass(frozen=True)
class UDPHeader:
    """Parsed fields of a UDP header."""

    sport: int
    dport: int
    length: int
    checksum: int

    @property
    def checksum_present(self):
        return self.checksum != 0


def build_udp_datagram(src, dst, sport, dport, payload, with_checksum=True):
    """Build a UDP datagram (header + payload) with its checksum.

    A computed checksum of zero is sent as 0xFFFF; ``with_checksum=False``
    sends the no-checksum sentinel 0x0000.
    """
    payload = bytes(payload)
    length = UDP_HEADER_LEN + len(payload)
    if length > 0xFFFF:
        raise ValueError("UDP datagram exceeds 65535 bytes")
    header = _STRUCT.pack(sport, dport, length, 0)
    if not with_checksum:
        return header + payload
    total = pseudo_header_word_sum(src, dst, length, protocol=UDP_PROTOCOL)
    total += word_sums(header + payload)
    field = int(fold_carries(total)) ^ 0xFFFF
    if field == 0:
        field = 0xFFFF  # zero means "no checksum"; send the other zero
    return _STRUCT.pack(sport, dport, length, field) + payload


def parse_udp_header(datagram):
    """Parse the first 8 bytes of ``datagram`` as a UDP header."""
    if len(datagram) < UDP_HEADER_LEN:
        raise ValueError("buffer shorter than a UDP header")
    sport, dport, length, checksum = _STRUCT.unpack_from(bytes(datagram[:8]))
    return UDPHeader(sport=sport, dport=dport, length=length, checksum=checksum)


def verify_udp_datagram(src, dst, datagram):
    """Verify a received UDP datagram's checksum.

    Returns True for valid datagrams *and* for datagrams sent with the
    checksum disabled (field 0x0000), per the specification.
    """
    header = parse_udp_header(datagram)
    if header.length != len(datagram):
        return False
    if not header.checksum_present:
        return True
    total = pseudo_header_word_sum(src, dst, len(datagram), protocol=UDP_PROTOCOL)
    total += word_sums(datagram)
    return int(fold_carries(total)) == 0xFFFF
