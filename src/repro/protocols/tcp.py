"""TCP header construction, parsing, and checksum computation.

The TCP checksum covers a pseudo-header (source and destination
addresses, the protocol number, and the TCP length) followed by the TCP
header and payload.  The stored field is the ones complement of the sum
computed with the field itself zero, so a verifier summing everything
including the stored field obtains 0xFFFF.

This module also provides the placement-independent helpers the trailer
variant needs: a stored 16-bit value contributes to the ones-complement
sum byte-swapped when it sits at an odd byte offset (the RFC 1071
byte-order property), and :func:`solve_sum_to_target` accounts for that.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.ip import ip_to_int

__all__ = [
    "TCP_CHECKSUM_OFFSET",
    "TCP_HEADER_LEN",
    "TCPHeader",
    "build_tcp_header",
    "parse_tcp_header",
    "pseudo_header_word_sum",
    "solve_sum_to_target",
    "tcp_checksum_field",
    "verify_tcp_checksum",
]

#: Length of an option-less TCP header.
TCP_HEADER_LEN = 20

#: Byte offset of the checksum field within the TCP header.
TCP_CHECKSUM_OFFSET = 16

_STRUCT = struct.Struct("!HHIIBBHHH")

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


@dataclass(frozen=True)
class TCPHeader:
    """Parsed fields of an option-less TCP header."""

    sport: int
    dport: int
    seq: int
    ack: int
    data_offset: int
    flags: int
    window: int
    checksum: int
    urgent: int


def build_tcp_header(
    sport,
    dport,
    seq,
    ack,
    flags=FLAG_ACK,
    window=4096,
    checksum=0,
    urgent=0,
):
    """Build a 20-byte option-less TCP header."""
    return _STRUCT.pack(
        sport,
        dport,
        seq & 0xFFFFFFFF,
        ack & 0xFFFFFFFF,
        (TCP_HEADER_LEN // 4) << 4,
        flags,
        window,
        checksum,
        urgent,
    )


def parse_tcp_header(buf):
    """Parse the first 20 bytes of ``buf`` as a TCP header."""
    if len(buf) < TCP_HEADER_LEN:
        raise ValueError("buffer shorter than a TCP header")
    (
        sport,
        dport,
        seq,
        ack,
        offset_reserved,
        flags,
        window,
        checksum,
        urgent,
    ) = _STRUCT.unpack_from(bytes(buf[:TCP_HEADER_LEN]))
    return TCPHeader(
        sport=sport,
        dport=dport,
        seq=seq,
        ack=ack,
        data_offset=offset_reserved >> 4,
        flags=flags,
        window=window,
        checksum=checksum,
        urgent=urgent,
    )


def pseudo_header_word_sum(src, dst, tcp_length, protocol=6):
    """Unfolded 16-bit word sum of the TCP pseudo-header."""
    src = ip_to_int(src)
    dst = ip_to_int(dst)
    return (
        (src >> 16)
        + (src & 0xFFFF)
        + (dst >> 16)
        + (dst & 0xFFFF)
        + protocol
        + tcp_length
    )


def tcp_checksum_field(src, dst, segment, protocol=6):
    """The value for the TCP checksum field covering ``segment``.

    ``segment`` is the TCP header plus payload with the checksum field
    zeroed.
    """
    total = pseudo_header_word_sum(src, dst, len(segment), protocol)
    total += word_sums(segment)
    return fold_carries(total) ^ 0xFFFF


def verify_tcp_checksum(src, dst, segment, protocol=6):
    """True if a received ``segment`` (with stored field) verifies."""
    total = pseudo_header_word_sum(src, dst, len(segment), protocol)
    total += word_sums(segment)
    return fold_carries(total) == 0xFFFF


def solve_sum_to_target(partial_sum, field_offset, target=0xFFFF):
    """Field value making a ones-complement region fold to ``target``.

    ``partial_sum`` is the (unfolded) word sum of the covered region
    with the two field bytes zero; ``field_offset`` is the byte offset
    of the field within the summed region.  When the offset is odd the
    stored big-endian value contributes byte-swapped, which this solver
    accounts for -- the trailer checksum can land on an odd offset when
    the payload length is odd.
    """
    folded = fold_carries(partial_sum)
    needed = fold_carries(target + (folded ^ 0xFFFF))
    # ``folded + needed`` now folds to ``target`` when ``needed`` is the
    # field's *contribution*.  Undo the positional byte swap if any.
    if field_offset % 2:
        needed = ((needed & 0xFF) << 8) | (needed >> 8)
    return needed
