"""TCP options, including the Alternate Checksum option (RFC 1146).

The paper's Fletcher results build on Zweig & Partridge's "TCP
Alternate Checksum Options" (its reference [13]): two TCP options let
endpoints negotiate a checksum other than the standard ones-complement
sum.  This module implements the option encoding -- generic option
build/parse with padding, plus the Alternate Checksum Request option
(kind 14) and the algorithm numbers RFC 1146 assigns -- and a packet
builder that emits segments carrying the negotiated request.

Only option kinds relevant here are given names; unknown options
round-trip as raw (kind, data) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.tcp import TCP_HEADER_LEN, build_tcp_header

__all__ = [
    "ALTERNATE_CHECKSUM_ALGORITHMS",
    "OPT_ALTERNATE_CHECKSUM_REQUEST",
    "OPT_END",
    "OPT_MSS",
    "OPT_NOP",
    "TCPOption",
    "alternate_checksum_request",
    "build_tcp_header_with_options",
    "parse_tcp_options",
]

OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_ALTERNATE_CHECKSUM_REQUEST = 14
OPT_ALTERNATE_CHECKSUM_DATA = 15

#: RFC 1146's algorithm numbers for the Alternate Checksum Request.
ALTERNATE_CHECKSUM_ALGORITHMS = {
    0: "tcp",            # the standard ones-complement sum
    1: "fletcher255",    # 8-bit Fletcher (ones-complement flavour)
    2: "fletcher256",    # 16-bit... per RFC 1146, "8-bit Fletcher" is 1
    3: "avoid",          # redundant checksum avoidance
}

_ALGORITHM_NUMBERS = {
    "tcp": 0,
    "fletcher255": 1,
    "fletcher256": 2,
}


@dataclass(frozen=True)
class TCPOption:
    """One TCP option: a kind and its data bytes (empty for NOP/END)."""

    kind: int
    data: bytes = b""

    def encoded_length(self):
        if self.kind in (OPT_END, OPT_NOP):
            return 1
        return 2 + len(self.data)

    def encode(self):
        if self.kind in (OPT_END, OPT_NOP):
            return bytes([self.kind])
        length = 2 + len(self.data)
        if length > 255:
            raise ValueError("TCP option too long")
        return bytes([self.kind, length]) + self.data


def alternate_checksum_request(algorithm):
    """The RFC 1146 Alternate Checksum Request option for an algorithm."""
    if algorithm not in _ALGORITHM_NUMBERS:
        raise ValueError(
            "no RFC 1146 number for %r; known: %s"
            % (algorithm, ", ".join(sorted(_ALGORITHM_NUMBERS)))
        )
    return TCPOption(
        OPT_ALTERNATE_CHECKSUM_REQUEST,
        bytes([_ALGORITHM_NUMBERS[algorithm]]),
    )


def build_tcp_header_with_options(sport, dport, seq, ack, options, **kwargs):
    """A TCP header carrying ``options``, NOP-padded to 32-bit alignment.

    The data offset reflects the padded option length; the checksum
    field is left zero for the caller to fill.
    """
    encoded = b"".join(option.encode() for option in options)
    padding = (-len(encoded)) % 4
    if padding:
        encoded += bytes([OPT_NOP]) * (padding - 1) + bytes([OPT_END])
    total_len = TCP_HEADER_LEN + len(encoded)
    if total_len > 60:
        raise ValueError("options exceed the 40-byte TCP option space")
    header = bytearray(build_tcp_header(sport, dport, seq, ack, **kwargs))
    header[12] = (total_len // 4) << 4
    return bytes(header) + encoded


def parse_tcp_options(segment):
    """Parse the options of a TCP segment (header + data).

    Returns a list of :class:`TCPOption`.  NOP options are dropped; an
    END option terminates parsing.  Raises ``ValueError`` on malformed
    lengths.
    """
    data_offset = (segment[12] >> 4) * 4
    if data_offset < TCP_HEADER_LEN or data_offset > len(segment):
        raise ValueError("data offset out of range")
    buf = bytes(segment[TCP_HEADER_LEN:data_offset])
    options = []
    position = 0
    while position < len(buf):
        kind = buf[position]
        if kind == OPT_END:
            break
        if kind == OPT_NOP:
            position += 1
            continue
        if position + 1 >= len(buf):
            raise ValueError("truncated option header")
        length = buf[position + 1]
        if length < 2 or position + length > len(buf):
            raise ValueError("bad option length %d" % length)
        options.append(TCPOption(kind, buf[position + 2 : position + length]))
        position += length
    return options


def negotiated_algorithm(segment, default="tcp"):
    """The checksum algorithm a segment's options request, if any."""
    for option in parse_tcp_options(segment):
        if option.kind == OPT_ALTERNATE_CHECKSUM_REQUEST and option.data:
            return ALTERNATE_CHECKSUM_ALGORITHMS.get(option.data[0], default)
    return default
