"""Turn file bytes into the paper's simulated TCP/IP packet stream.

The paper's simulator fills TCP and IP headers "as if the file transfer
were being done over the loopback interface": for each packet the TCP
sequence number advances by the data length and the IP ID by one, and
the segment size is 256 bytes except for runts at file ends.

The packetizer supports every configuration the paper evaluates:

* checksum algorithm -- standard TCP (``"tcp"``), Fletcher mod-255 or
  mod-256 (``"fletcher255"`` / ``"fletcher256"``), or ``"none"``;
* checksum placement -- the conventional header field, or the paper's
  trailer placement where the header field stays zero and the check
  value is appended to the TCP data (Section 5.3);
* the Section 6.3 ablation (store the sum instead of its complement);
* the Section 6.2 ablation (``fill_ip_header=False``): a reconstruction
  of the SIGCOMM '95 simulator bug.  The legacy simulator left the
  mutable IP header bytes (TOS, ID, flags, TTL, header checksum) zero
  and checksummed the buffer from the start of the IP header with no
  pseudo-header, so an error-free packet summed to zero *including its
  header cell*.  For packets with all-zero payloads the header cell is
  then a non-zero cell whose checksum is zero -- interchangeable with
  the zero data cells around it, which is precisely the failure class
  Section 6.2 describes (filling in the header cured it by three orders
  of magnitude).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import word_sums
from repro.protocols.ip import IP_HEADER_LEN, build_ipv4_header
from repro.protocols.tcp import (
    FLAG_ACK,
    TCP_CHECKSUM_OFFSET,
    TCP_HEADER_LEN,
    build_tcp_header,
    pseudo_header_word_sum,
    solve_sum_to_target,
)

__all__ = ["ChecksumPlacement", "Packetizer", "PacketizerConfig", "TCPPacket"]


class ChecksumPlacement(enum.Enum):
    """Where the transport check value lives in the packet."""

    HEADER = "header"
    TRAILER = "trailer"


@dataclass(frozen=True)
class PacketizerConfig:
    """Configuration of the simulated transfer's packet construction."""

    mss: int = 256
    algorithm: str = "tcp"
    placement: ChecksumPlacement = ChecksumPlacement.HEADER
    invert: bool = True
    fill_ip_header: bool = True
    src: str = "127.0.0.1"
    dst: str = "127.0.0.1"
    sport: int = 20
    dport: int = 54321
    initial_seq: int = 1
    initial_ipid: int = 1
    window: int = 4096

    def __post_init__(self):
        if self.mss < 1:
            raise ValueError("mss must be positive")
        if self.algorithm not in ("tcp", "fletcher255", "fletcher256", "none"):
            raise ValueError("unknown checksum algorithm %r" % self.algorithm)
        if not self.fill_ip_header and (
            self.algorithm != "tcp"
            or self.placement is not ChecksumPlacement.HEADER
            or not self.invert
        ):
            raise ValueError(
                "the legacy unfilled-IP-header mode (Section 6.2) models the "
                "original TCP header-checksum simulator only"
            )

    def with_overrides(self, **kwargs):
        """A copy of this config with fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TCPPacket:
    """One simulated IP packet of the transfer."""

    ip_packet: bytes
    payload: bytes
    seq: int
    ipid: int
    config: PacketizerConfig = field(repr=False)

    @property
    def total_length(self):
        return len(self.ip_packet)

    @property
    def tcp_segment(self):
        """The TCP header plus data (including any trailer check bytes)."""
        return self.ip_packet[IP_HEADER_LEN:]


class Packetizer:
    """Builds the packet stream for one simulated file transfer."""

    def __init__(self, config=None):
        self.config = config or PacketizerConfig()
        if self.config.algorithm.startswith("fletcher"):
            self._fletcher = Fletcher8(int(self.config.algorithm[-3:]))
        else:
            self._fletcher = None

    def packetize(self, data, initial_seq=None, initial_ipid=None):
        """Segment ``data`` into packets, one per MSS-sized chunk."""
        config = self.config
        data = bytes(data)
        seq = config.initial_seq if initial_seq is None else initial_seq
        ipid = config.initial_ipid if initial_ipid is None else initial_ipid
        packets = []
        for start in range(0, len(data), config.mss):
            chunk = data[start : start + config.mss]
            packets.append(self.build_packet(chunk, seq, ipid))
            seq = (seq + len(chunk)) & 0xFFFFFFFF
            ipid = (ipid + 1) & 0xFFFF
        return packets

    def build_packet(self, chunk, seq, ipid):
        """Build one IP packet carrying ``chunk``."""
        config = self.config
        trailer = config.placement is ChecksumPlacement.TRAILER
        wire_payload = chunk + bytes(2) if trailer else chunk
        tcp_len = TCP_HEADER_LEN + len(wire_payload)

        header = build_tcp_header(
            config.sport,
            config.dport,
            seq,
            ack=1,
            flags=FLAG_ACK,
            window=config.window,
        )
        segment = bytearray(header + wire_payload)
        ip_header = build_ipv4_header(
            total_length=IP_HEADER_LEN + tcp_len,
            ident=ipid if config.fill_ip_header else 0,
            src=config.src,
            dst=config.dst,
            tos=0,
            ttl=64 if config.fill_ip_header else 0,
            flags_fragment=0x4000 if config.fill_ip_header else 0,
            fill_checksum=config.fill_ip_header,
        )
        if config.fill_ip_header:
            self._fill_check_value(segment, tcp_len)
        else:
            # Legacy (Section 6.2) coverage: the whole IP packet, no
            # pseudo-header -- an intact packet sums to 0xFFFF from
            # byte 0, making its header cell zero-congruent whenever
            # the payload is zero-congruent.
            total = word_sums(ip_header) + word_sums(segment)
            offset = IP_HEADER_LEN + TCP_CHECKSUM_OFFSET
            value = solve_sum_to_target(total, offset)
            segment[TCP_CHECKSUM_OFFSET : TCP_CHECKSUM_OFFSET + 2] = value.to_bytes(
                2, "big"
            )
        return TCPPacket(
            ip_packet=ip_header + bytes(segment),
            payload=chunk,
            seq=seq,
            ipid=ipid,
            config=config,
        )

    def _fill_check_value(self, segment, tcp_len):
        """Compute and embed the transport check value in ``segment``."""
        config = self.config
        if config.algorithm == "none":
            return
        trailer = config.placement is ChecksumPlacement.TRAILER
        offset = tcp_len - 2 if trailer else TCP_CHECKSUM_OFFSET

        if config.algorithm == "tcp":
            total = pseudo_header_word_sum(config.src, config.dst, tcp_len)
            total += word_sums(segment)
            value = solve_sum_to_target(total, offset)
            if not config.invert and not trailer:
                # Section 6.3 ablation: store the sum itself rather than
                # its complement.  The verifier must then compare the
                # recomputed sum against the stored field.
                value ^= 0xFFFF
            segment[offset : offset + 2] = value.to_bytes(2, "big")
        else:
            x, y = self._fletcher.check_bytes(segment, offset)
            segment[offset] = x
            segment[offset + 1] = y
