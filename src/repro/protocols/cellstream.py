"""Cell streams, loss processes, and AAL5 reassembly.

The splice engine enumerates splices combinatorially; this module
builds the *physical* story they abstract: a stream of ATM cells (with
AAL5 end-of-frame marking), a loss process that drops some of them,
and the receiver-side reassembler that turns whatever arrives back
into frames.  The Monte Carlo driver in :mod:`repro.core.montecarlo`
uses it to cross-validate the enumeration.

Loss processes:

* :class:`IndependentLoss` -- each cell dropped with probability ``p``
  (under which, notably, every splice of an adjacent pair is equally
  likely -- every splice keeps the same number of cells -- matching
  the paper's uniform treatment of substitutions);
* :class:`GilbertLoss` -- a two-state burst-loss channel;
* :class:`EarlyPacketDiscard` -- wraps another process and, once a
  cell of a frame is lost, drops the rest of that frame: the Section 7
  remedy that eliminates valid splices entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.protocols.aal5 import CELL_PAYLOAD

__all__ = [
    "AAL5Reassembler",
    "EarlyPacketDiscard",
    "GilbertLoss",
    "IndependentLoss",
    "MarkedCell",
    "apply_loss",
    "stream_cells",
]


@dataclass(frozen=True)
class MarkedCell:
    """A cell payload plus the AAL5 end-of-frame marking."""

    payload: bytes
    last: bool
    frame_index: int = -1


def stream_cells(units):
    """The wire cell sequence of a transfer's :class:`TransferUnit` list."""
    cells = []
    for frame_index, unit in enumerate(units):
        payloads = unit.frame.cells()
        final = len(payloads) - 1
        for cell_index, payload in enumerate(payloads):
            cells.append(
                MarkedCell(
                    payload=payload.tobytes(),
                    last=cell_index == final,
                    frame_index=frame_index,
                )
            )
    return cells


class IndependentLoss:
    """Drop each cell independently with probability ``p``."""

    def __init__(self, p):
        if not 0 <= p < 1:
            raise ValueError("loss probability must be in [0, 1)")
        self.p = p

    def keep_mask(self, n, rng):
        return rng.random(n) >= self.p


class GilbertLoss:
    """A two-state (good/bad) burst-loss channel.

    In the good state cells survive; entering the bad state (with
    probability ``p_bad``) drops cells until recovery (probability
    ``p_recover`` per cell), giving mean burst length
    ``1 / p_recover``.
    """

    def __init__(self, p_bad, p_recover):
        if not 0 < p_bad < 1 or not 0 < p_recover <= 1:
            raise ValueError("transition probabilities must be in (0, 1]")
        self.p_bad = p_bad
        self.p_recover = p_recover

    def keep_mask(self, n, rng):
        mask = np.ones(n, dtype=bool)
        bad = False
        draws = rng.random(n)
        for i in range(n):
            if bad:
                mask[i] = False
                bad = draws[i] >= self.p_recover
            else:
                if draws[i] < self.p_bad:
                    mask[i] = False
                    bad = True
        return mask


class EarlyPacketDiscard:
    """Wrap a loss process with per-frame tail dropping (Section 7)."""

    def __init__(self, inner):
        self.inner = inner

    def apply(self, cells, rng):
        mask = self.inner.keep_mask(len(cells), rng)
        discarding = False
        for i, cell in enumerate(cells):
            if discarding:
                mask[i] = False
            elif not mask[i]:
                discarding = True
            if cell.last:
                discarding = False
        return mask


def apply_loss(cells, model, rng):
    """Return the delivered subsequence of ``cells`` under ``model``."""
    if isinstance(model, EarlyPacketDiscard):
        mask = model.apply(cells, rng)
    else:
        mask = model.keep_mask(len(cells), rng)
    return [cell for cell, kept in zip(cells, mask) if kept]


class AAL5Reassembler:
    """Receiver-side AAL5 reassembly over a (possibly lossy) stream.

    Cells accumulate until a marked cell arrives, at which point the
    accumulated payloads form one candidate CPCS-PDU.  Real receivers
    bound the reassembly buffer; frames exceeding ``max_cells`` are
    discarded (and counted) rather than grown without limit.
    """

    def __init__(self, max_cells=1366):  # 65535-byte SDU limit
        self.max_cells = max_cells
        self._pending = []
        self.oversized_discards = 0

    def feed(self, cell):
        """Feed one delivered cell; returns a frame's cells or None."""
        self._pending.append(cell.payload)
        if len(self._pending) > self.max_cells:
            self._pending.clear()
            self.oversized_discards += 1
            return None
        if cell.last:
            frame, self._pending = self._pending, []
            return frame
        return None

    def feed_all(self, cells):
        """Feed a delivered sequence; returns the list of frames."""
        frames = []
        for cell in cells:
            frame = self.feed(cell)
            if frame is not None:
                frames.append(frame)
        return frames

    @property
    def pending_cells(self):
        return len(self._pending)


def frame_bytes(frame_cells):
    """Concatenate a reassembled frame's cell payloads."""
    return b"".join(frame_cells)


def frame_cell_count(frame_cells):
    return len(frame_cells)


def frame_is_whole_cells(frame_cells):
    return all(len(c) == CELL_PAYLOAD for c in frame_cells)
