"""The stable public API of the ``repro`` package.

Everything a downstream script (or the CLI) needs lives behind this
facade; the implementation modules behind it may move between
releases, this module will not.  Import either way::

    from repro.api import run_experiment, sum_file
    from repro import run_experiment            # same objects, lazily

Each function imports its implementation on first call, and the names
in :data:`_LAZY` resolve on first attribute access (PEP 562), so
importing :mod:`repro.api` costs nothing beyond the interpreter seeing
this file -- the CLI's ``--help`` and a warm cache hit stay fast.
reprolint rules REP301 (the CLI imports only this facade) and REP303
(no eager engine imports on cold paths) enforce both halves of that
contract.
"""

from __future__ import annotations

import importlib

__all__ = [
    # run / store / algorithm entry points
    "Telemetry",
    "algorithm_names",
    "algorithm_summaries",
    "algorithms",
    "experiment_ids",
    "open_store",
    "run_experiment",
    "sum_file",
    # corpus / profiles
    "build_filesystem",
    "profile_names",
    "profile_summaries",
    # splice runs and their configuration
    "BatchChecksumAlgorithm",
    "ChecksumPlacement",
    "EngineKind",
    "PacketizerConfig",
    "RunAborted",
    "RunHealth",
    "run_splice_experiment",
    "supports_batch",
    # checkpointed interruption and resume
    "ShardJournal",
    "SweepInterrupted",
    "current_controller",
    "default_journal_dir",
    "open_journal",
    "sweep_guard",
    # transfer simulation
    "IndependentLoss",
    "TransferReport",
    "simulate_file_transfer",

    "ArqConfig",
    "ChannelPlan",
    "ChannelReport",
    "TraceError",
    "build_channel_trace",
    "channel_plan_names",
    "named_channel_plan",
    "read_channel_trace",
    "replay_channel_trace",
    "run_channel_sweep",
    "run_channel_transfer",
    "write_channel_trace",
    # store backends, network service, maintenance
    "audit_run_store",
    "open_backend",
    "scrub_run_store",
    "serve_store",
    # fault injection / chaos
    "named_plan",
    "plan_names",
    "wrap_run_store",
    # store resilience: retries, breakers, degraded-mode spool
    "CircuitBreaker",
    "ManualClock",
    "ResilienceController",
    "RetryPolicy",
    "WriteSpool",
    "default_spool_dir",
    "drain_spool",
    # reporting and rendering
    "generate_markdown_report",
    "write_figure_svg",
    # static analysis
    "lint_rules",
    "run_lint",
    # telemetry and bench
    "activate_telemetry",
    "bench_delta_table",
    "current_telemetry",
    "deactivate_telemetry",
    "latest_bench_snapshot",
    "run_bench",
    "validate_bench_snapshot",
    "write_bench_snapshot",
    "write_metrics",
]

#: Facade name -> ``(module, attribute)``, resolved lazily so the
#: import bill of each subsystem is paid only by callers that use it.
_LAZY = {
    "BatchChecksumAlgorithm": (
        "repro.checksums.batch", "BatchChecksumAlgorithm"),
    "ChecksumPlacement": ("repro.protocols.packetizer", "ChecksumPlacement"),
    "EngineKind": ("repro.checksums.batch", "EngineKind"),
    "supports_batch": ("repro.checksums.registry", "supports_batch"),
    "CircuitBreaker": ("repro.store.resilience", "CircuitBreaker"),
    "ManualClock": ("repro.store.resilience", "ManualClock"),
    "ResilienceController": ("repro.store.resilience", "ResilienceController"),
    "RetryPolicy": ("repro.store.resilience", "RetryPolicy"),
    "WriteSpool": ("repro.store.spool", "WriteSpool"),
    "default_spool_dir": ("repro.store.spool", "default_spool_dir"),
    "drain_spool": ("repro.store.spool", "drain_spool"),
    "ArqConfig": ("repro.channel.arq", "ArqConfig"),
    "ChannelPlan": ("repro.channel.plan", "ChannelPlan"),
    "ChannelReport": ("repro.channel.arq", "ChannelReport"),
    "TraceError": ("repro.channel.trace", "TraceError"),
    "build_channel_trace": ("repro.channel.trace", "build_channel_trace"),
    "channel_plan_names": ("repro.channel.plan", "channel_plan_names"),
    "named_channel_plan": ("repro.channel.plan", "named_channel_plan"),
    "read_channel_trace": ("repro.channel.trace", "read_channel_trace"),
    "replay_channel_trace": ("repro.channel.trace", "replay_channel_trace"),
    "run_channel_sweep": ("repro.channel.sweep", "run_channel_sweep"),
    "run_channel_transfer": ("repro.channel.arq", "run_channel_transfer"),
    "write_channel_trace": ("repro.channel.trace", "write_channel_trace"),
    "IndependentLoss": ("repro.protocols.cellstream", "IndependentLoss"),
    "PacketizerConfig": ("repro.protocols.packetizer", "PacketizerConfig"),
    "RunAborted": ("repro.core.supervisor", "RunAborted"),
    "RunHealth": ("repro.core.supervisor", "RunHealth"),
    "ShardJournal": ("repro.store.journal", "ShardJournal"),
    "SweepInterrupted": ("repro.core.checkpoint", "SweepInterrupted"),
    "current_controller": ("repro.core.checkpoint", "current_controller"),
    "default_journal_dir": ("repro.store.journal", "default_journal_dir"),
    "open_journal": ("repro.store.journal", "open_journal"),
    "sweep_guard": ("repro.core.checkpoint", "sweep_guard"),
    "Telemetry": ("repro.telemetry.core", "Telemetry"),
    "TransferReport": ("repro.sim.transfer", "TransferReport"),
    "activate_telemetry": ("repro.telemetry.core", "activate"),
    "audit_run_store": ("repro.store.audit", "audit_run_store"),
    "bench_delta_table": ("repro.telemetry.bench", "delta_table"),
    "build_filesystem": ("repro.corpus.profiles", "build_filesystem"),
    "current_telemetry": ("repro.telemetry.core", "current"),
    "deactivate_telemetry": ("repro.telemetry.core", "deactivate"),
    "generate_markdown_report": (
        "repro.experiments.markdown", "generate_markdown_report"),
    "latest_bench_snapshot": ("repro.telemetry.bench", "latest_snapshot"),
    "named_plan": ("repro.faults.plan", "named_plan"),
    "open_backend": ("repro.store.backends", "open_backend"),
    "plan_names": ("repro.faults.plan", "plan_names"),
    "scrub_run_store": ("repro.store.scrub", "scrub_run_store"),
    "serve_store": ("repro.store.api.server", "serve_store"),
    "lint_rules": ("repro.lint.engine", "all_rules"),
    "run_lint": ("repro.lint.engine", "run_lint"),
    "run_bench": ("repro.telemetry.bench", "run_bench"),
    "run_splice_experiment": (
        "repro.core.experiment", "run_splice_experiment"),
    "simulate_file_transfer": ("repro.sim.transfer", "simulate_file_transfer"),
    "validate_bench_snapshot": ("repro.telemetry.bench", "validate_snapshot"),
    "wrap_run_store": ("repro.faults.injector", "wrap_run_store"),
    "write_bench_snapshot": ("repro.telemetry.bench", "write_snapshot"),
    "write_figure_svg": ("repro.experiments.svg", "write_figure_svg"),
    "write_metrics": ("repro.telemetry.export", "write_metrics"),
}


def run_experiment(
    experiment_id, cache=None, workers=None, store=None, engine=None, **kwargs
):
    """Run a registered experiment; returns its ``ExperimentReport``.

    ``cache`` may be a ``ResultCache`` or a ``RunStore`` (from
    :func:`open_store`); ``workers`` fans splice runs over a process
    pool; ``store`` makes them resumable; ``engine`` selects the
    splice evaluation path (``"batch"``/``"scalar"``/``"auto"``) for
    experiments that run the splice engine -- results are bit-identical
    either way.  See :func:`repro.experiments.registry.run_experiment`.
    """
    from repro.experiments.registry import run_experiment as _run

    return _run(
        experiment_id,
        cache=cache,
        workers=workers,
        store=store,
        engine=engine,
        **kwargs,
    )


def experiment_ids():
    """All registered experiment ids (paper tables first)."""
    from repro.experiments.registry import experiment_ids as _ids

    return _ids()


def algorithms():
    """Name -> :class:`~repro.checksums.registry.ChecksumAlgorithm`.

    Every value conforms to the protocol (``compute``/``field``/
    ``verify``/``width``/``name``); iteration order is sorted by name.
    """
    from repro.checksums.registry import available_algorithms, get_algorithm

    return {name: get_algorithm(name) for name in available_algorithms()}


def algorithm_names():
    """Sorted names of every registered check code."""
    from repro.checksums.registry import available_algorithms

    return available_algorithms()


def algorithm_summaries():
    """``[(name, width_bits, kind), ...]`` sorted by name.

    ``kind`` is ``"CRC"`` or ``"checksum"`` -- what the ``algorithms``
    CLI listing shows.
    """
    from repro.checksums.crc import CRCEngine
    from repro.checksums.registry import available_algorithms, get_algorithm

    summaries = []
    for name in available_algorithms():
        algorithm = get_algorithm(name)
        kind = "CRC" if isinstance(algorithm, CRCEngine) else "checksum"
        summaries.append((name, algorithm.width, kind))
    return summaries


def profile_names():
    """Names of the synthetic filesystem profiles."""
    from repro.corpus.profiles import profile_names as _names

    return _names()


def profile_summaries():
    """``[(name, description), ...]`` for the synthetic profiles."""
    from repro.corpus.profiles import PROFILES, profile_names

    return [(name, PROFILES[name].description) for name in profile_names()]


def sum_file(path, algorithm="internet"):
    """The check value of the file at ``path`` as an ``int``."""
    from repro.checksums.registry import get_algorithm

    engine = get_algorithm(algorithm)
    with open(path, "rb") as handle:
        return engine.compute(handle.read())


def open_store(root=None, algorithm=None, url=None, timeout=10.0):
    """A :class:`~repro.store.runner.RunStore` rooted at ``root``.

    ``root`` defaults to ``$REPRO_CHECKSUMS_CACHE`` or
    ``~/.cache/repro-checksums``; ``algorithm`` names the integrity-
    trailer check code (default CRC-32/AAL5).  ``url`` instead selects
    a backend by ``--store-url`` spec (``file://``, ``memory://``,
    ``http://``, comma-separated replicas for a resilient multiplexer,
    ``stripe:`` for striping — see :mod:`repro.store.backends`);
    remote specs get per-replica circuit breakers and a degraded-mode
    write spool (under ``root`` when given, the default store root
    otherwise).  ``timeout`` bounds each remote operation (the
    ``--store-timeout`` flag).  Pass the result as
    ``cache=``/``store=`` to :func:`run_experiment`.
    """
    from repro.store.objstore import DEFAULT_ALGORITHM
    from repro.store.runner import RunStore

    algorithm = algorithm or DEFAULT_ALGORITHM
    if url is not None:
        from repro.store.backends import open_store_url

        spool_dir = None
        if root is not None:
            from repro.store.spool import default_spool_dir

            spool_dir = default_spool_dir(root)
        return RunStore(
            algorithm=algorithm,
            backend=open_store_url(url, timeout=timeout,
                                   spool_dir=spool_dir),
        )
    return RunStore(root, algorithm)


def __getattr__(name):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *__all__})
