"""The stable public API of the ``repro`` package.

Everything a downstream script (or the CLI) needs lives behind the six
names in ``__all__``; the implementation modules behind them may move
between releases, this facade will not.  Import either way::

    from repro.api import run_experiment, sum_file
    from repro import run_experiment            # same objects, lazily

Each function imports its implementation on first call, so importing
:mod:`repro.api` costs nothing beyond the interpreter seeing this file
-- the CLI's ``--help`` and a warm cache hit stay fast.
"""

from __future__ import annotations

__all__ = [
    "Telemetry",
    "algorithms",
    "experiment_ids",
    "open_store",
    "run_experiment",
    "sum_file",
]


def run_experiment(experiment_id, cache=None, workers=None, store=None, **kwargs):
    """Run a registered experiment; returns its ``ExperimentReport``.

    ``cache`` may be a ``ResultCache`` or a ``RunStore`` (from
    :func:`open_store`); ``workers`` fans splice runs over a process
    pool; ``store`` makes them resumable.  See
    :func:`repro.experiments.registry.run_experiment`.
    """
    from repro.experiments.registry import run_experiment as _run

    return _run(
        experiment_id, cache=cache, workers=workers, store=store, **kwargs
    )


def experiment_ids():
    """All registered experiment ids (paper tables first)."""
    from repro.experiments.registry import experiment_ids as _ids

    return _ids()


def algorithms():
    """Name -> :class:`~repro.checksums.registry.ChecksumAlgorithm`.

    Every value conforms to the protocol (``compute``/``field``/
    ``verify``/``width``/``name``); iteration order is sorted by name.
    """
    from repro.checksums.registry import available_algorithms, get_algorithm

    return {name: get_algorithm(name) for name in available_algorithms()}


def sum_file(path, algorithm="internet"):
    """The check value of the file at ``path`` as an ``int``."""
    from repro.checksums.registry import get_algorithm

    engine = get_algorithm(algorithm)
    with open(path, "rb") as handle:
        return engine.compute(handle.read())


def open_store(root=None, algorithm=None):
    """A :class:`~repro.store.runner.RunStore` rooted at ``root``.

    ``root`` defaults to ``$REPRO_CHECKSUMS_CACHE`` or
    ``~/.cache/repro-checksums``; ``algorithm`` names the integrity-
    trailer check code (default CRC-32/AAL5).  Pass the result as
    ``cache=``/``store=`` to :func:`run_experiment`.
    """
    from repro.store.objstore import DEFAULT_ALGORITHM
    from repro.store.runner import RunStore

    return RunStore(root, algorithm or DEFAULT_ALGORITHM)


def __getattr__(name):
    if name == "Telemetry":
        from repro.telemetry.core import Telemetry

        globals()["Telemetry"] = Telemetry
        return Telemetry
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted({*globals(), *__all__})
