"""Tables 4-6: match probabilities, locality, and the colouring model.

These are the paper's diagnostic tables explaining *why* the splice
failure rates are what they are:

* Table 4 -- P[two k-cell blocks have congruent checksums]: the
  uniform-data expectation, the i.i.d. convolution prediction from the
  single-cell distribution, and the measured value.
* Table 5 -- the same probability measured globally, locally (blocks
  within 512 bytes), and locally excluding byte-identical pairs.
* Table 6 -- per-filesystem comparison of those sample statistics with
  the *actual* splice failure rate by substitution length, including
  the Section 5.4 cell-colouring correction that reconciles them.
"""

from __future__ import annotations

from repro.analysis.convolution import class_pmf, predicted_match_probability
from repro.analysis.distribution import block_checksum_values, cell_checksum_values
from repro.analysis.locality import locality_statistics
from repro.analysis.theory import coloring_correction
from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.experiments.render import TextTable, fmt_pct
from repro.experiments.report import ExperimentReport
from repro.protocols.packetizer import PacketizerConfig

__all__ = ["table4_matchprob", "table5_locality", "table6_local_vs_actual"]

DEFAULT_FS_BYTES = 1_000_000
DEFAULT_SEED = 3
_KS = (1, 2, 3, 4, 5)
_UNIFORM_PCT = 100.0 / 65536


def _measured_match_pct(fs, k):
    """Measured congruence probability of k-cell blocks, in percent."""
    if k == 1:
        values = cell_checksum_values(fs, "internet")
    else:
        values = block_checksum_values(fs, k)
    pmf = class_pmf(values)
    return 100.0 * float((pmf * pmf).sum())


def table4_matchprob(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1"):
    """Table 4: checksum match probability for k-cell substitutions."""
    fs = build_filesystem(system, fs_bytes, seed)
    cell_values = cell_checksum_values(fs, "internet")
    table = TextTable(["length (cells)", "uniform", "predicted", "measured"])
    rows = []
    for k in _KS:
        predicted = 100.0 * predicted_match_probability(cell_values, k)
        measured = _measured_match_pct(fs, k)
        table.add_row(k, fmt_pct(_UNIFORM_PCT), fmt_pct(predicted), fmt_pct(measured))
        rows.append(
            dict(k=k, uniform_pct=_UNIFORM_PCT, predicted_pct=predicted,
                 measured_pct=measured)
        )
    return ExperimentReport(
        "table4",
        "Probability of checksum match for substitutions of length k (%s)" % system,
        table.render(),
        {"rows": rows, "system": system},
    )


def table5_locality(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1"):
    """Table 5: global vs local congruence, with identical exclusion."""
    fs = build_filesystem(system, fs_bytes, seed)
    stats = locality_statistics(fs, ks=_KS)
    table = TextTable(
        ["length (cells)", "globally congruent", "locally congruent",
         "excluding identical"]
    )
    rows = []
    for k in _KS:
        g, local, excl = stats[k].as_percentages()
        table.add_row(k, fmt_pct(g), fmt_pct(local), fmt_pct(excl))
        rows.append(dict(k=k, global_pct=g, local_pct=local, excl_identical_pct=excl))
    return ExperimentReport(
        "table5",
        "Checksum match probability from local data (%s)" % system,
        table.render(),
        {"rows": rows, "system": system},
    )


def table6_local_vs_actual(
    fs_bytes=DEFAULT_FS_BYTES,
    seed=DEFAULT_SEED,
    systems=("stanford-u1", "sics-opt", "sics-src1", "sics-src2"),
):
    """Table 6: sample congruence statistics vs actual splice failures.

    The "colour-corrected" row applies Section 5.4's factor
    ``(m - k) / (m - 1)``: only substitutions avoiding the second
    packet's header cell can fail at the local-data rate.
    """
    config = PacketizerConfig()
    m = (40 + config.mss + 8 + 47) // 48  # cells per full-size frame
    sections = []
    data = {}
    for system in systems:
        fs = build_filesystem(system, fs_bytes, seed)
        cell_values = cell_checksum_values(fs, "internet")
        stats = locality_statistics(fs, ks=_KS)
        counters = run_splice_experiment(fs, config).counters
        table = TextTable(["k"] + [str(k) for k in _KS])
        predicted = [100.0 * predicted_match_probability(cell_values, k) for k in _KS]
        global_row = [stats[k].as_percentages()[0] for k in _KS]
        local_row = [stats[k].as_percentages()[1] for k in _KS]
        excl_row = [stats[k].as_percentages()[2] for k in _KS]
        corrected = [
            excl_row[i] * coloring_correction(m, k) for i, k in enumerate(_KS)
        ]
        actual = [counters.miss_rate_by_len(k) for k in _KS]
        for label, row in (
            ("predicted (iid)", predicted),
            ("measured global", global_row),
            ("local congruence", local_row),
            ("exclude identical", excl_row),
            ("colour-corrected", corrected),
            ("actual", actual),
        ):
            table.add_row(label, *[fmt_pct(v) for v in row])
        sections.append("%s\n%s" % (system, table.render(indent="  ")))
        data[system] = dict(
            ks=list(_KS), predicted_pct=predicted, global_pct=global_row,
            local_pct=local_row, excl_identical_pct=excl_row,
            corrected_pct=corrected, actual_pct=actual,
        )
    return ExperimentReport(
        "table6",
        "Checksum congruence samples vs actual splice failures (Section 4.6/5.4)",
        "\n\n".join(sections),
        data,
    )
