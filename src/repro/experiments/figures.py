"""Figures 2 and 3: checksum value distributions over real data.

Figure 2 plots the frequency-sorted PDF and CDF of the TCP checksum
over k-cell blocks (k = 1, 2, 4, 5) of one filesystem, against the
i.i.d. convolution prediction and the uniform line.  Figure 3 compares
the single-cell PDFs of the TCP checksum and both Fletcher variants.

The reports carry the sorted series in ``data`` and render a small
ASCII log-plot plus the headline statistics (most common value share,
top-0.1% coverage) in ``text``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.convolution import predicted_block_distribution
from repro.analysis.distribution import distribution_over
from repro.corpus.profiles import build_filesystem
from repro.experiments.render import TextTable, ascii_series, fmt_pct
from repro.experiments.report import ExperimentReport

__all__ = ["figure2_distribution", "figure3_fletcher_pdf"]

DEFAULT_FS_BYTES = 1_000_000
DEFAULT_SEED = 3
_TOP = 65  # the most common 0.1% of a 16-bit space, as in the paper


def figure2_distribution(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1", ks=(1, 2, 4, 5)
):
    """Figure 2: TCP checksum distribution over k-cell blocks."""
    fs = build_filesystem(system, fs_bytes, seed)
    series_pdf = []
    series_cdf = []
    data = {"system": system, "ks": list(ks)}
    single = distribution_over(fs, "internet", 1)
    cell_values = None
    for k in ks:
        dist = distribution_over(fs, "internet", k=k)
        pdf = dist.sorted_pmf()[:_TOP]
        cdf = dist.sorted_cdf()[:_TOP]
        series_pdf.append(("k=%d" % k, pdf.tolist()))
        series_cdf.append(("k=%d" % k, cdf.tolist()))
        data["pdf_k%d" % k] = pdf.tolist()
        data["cdf_k%d" % k] = cdf.tolist()
    # The i.i.d. prediction for 2-cell blocks (the paper's dotted line).
    from repro.analysis.distribution import cell_checksum_values

    cell_values = cell_checksum_values(fs, "internet")
    predict = np.sort(predicted_block_distribution(cell_values, 2))[::-1][:_TOP]
    series_pdf.append(("predict k=2", predict.tolist()))
    data["predict_k2"] = predict.tolist()
    data["uniform"] = 1.0 / 65536
    data["pmax_pct"] = 100.0 * single.pmax
    data["top_0p1pct_share_pct"] = 100.0 * single.top_value_share(_TOP)

    stats = TextTable(["statistic", "value"])
    stats.add_row("cells measured", single.observations)
    stats.add_row("most common value share", fmt_pct(data["pmax_pct"]))
    stats.add_row(
        "top 0.1% of values cover", fmt_pct(data["top_0p1pct_share_pct"], 2)
    )
    stats.add_row("uniform per-value share", fmt_pct(100.0 / 65536))
    text = "\n\n".join(
        [
            ascii_series(
                series_pdf, title="sorted PDF, %d most common values (log y)" % _TOP
            ),
            ascii_series(
                series_cdf, logy=False, title="CDF over the %d most common" % _TOP
            ),
            stats.render(),
        ]
    )
    return ExperimentReport(
        "figure2",
        "Distribution of the TCP checksum over k-cell blocks (%s)" % system,
        text,
        data,
    )


def figure3_fletcher_pdf(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1", top=256
):
    """Figure 3: single-cell PDFs of TCP, Fletcher-255 and Fletcher-256."""
    fs = build_filesystem(system, fs_bytes, seed)
    series = []
    data = {"system": system, "top": top}
    match = {}
    for label, algorithm in (
        ("IP/TCP", "internet"),
        ("F255", "fletcher255"),
        ("F256", "fletcher256"),
    ):
        dist = distribution_over(fs, algorithm, 1)
        pdf = dist.sorted_pmf()[:top]
        series.append((label, pdf.tolist()))
        data["pdf_%s" % label.lower().replace("/", "_")] = pdf.tolist()
        match[label] = 100.0 * dist.match_probability()
    data["match_pct"] = match

    stats = TextTable(["checksum", "P[two cells match]"])
    for label in ("IP/TCP", "F255", "F256"):
        stats.add_row(label, fmt_pct(match[label]))
    text = "\n\n".join(
        [
            ascii_series(
                series,
                title="sorted single-cell PDF, %d most common values (log y)" % top,
            ),
            stats.render(),
        ]
    )
    return ExperimentReport(
        "figure3",
        "PDF of TCP, F-255 and F-256 checksums over 48-byte cells (%s)" % system,
        text,
        data,
    )
