"""Plain-text rendering for experiment tables and figure series."""

from __future__ import annotations

__all__ = ["TextTable", "ascii_series", "fmt_count", "fmt_pct"]


def fmt_pct(value, digits=4):
    """Format a percentage with sensible precision for tiny rates."""
    if value == 0:
        return "0"
    if value < 10 ** -digits:
        return "%.2e%%" % value
    return "%.*f%%" % (digits, value)


def fmt_count(value):
    """Thousands-separated integer."""
    return format(int(value), ",")


class TextTable:
    """A minimal right-aligned text table builder."""

    def __init__(self, headers):
        self.headers = [str(h) for h in headers]
        self.rows = []

    def add_row(self, *cells):
        self.rows.append([str(c) for c in cells])

    def render(self, indent=""):
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells, pad=" "):
            out = []
            for i, cell in enumerate(cells):
                if i == 0:
                    out.append(cell.ljust(widths[i], pad))
                else:
                    out.append(cell.rjust(widths[i], pad))
            return indent + "  ".join(out)

        parts = [line(self.headers), line(["-" * w for w in widths], pad="-")]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)


def ascii_series(series, width=60, height=12, logy=True, title=""):
    """A tiny ASCII plot of one or more (label, y-values) series.

    Used by the figure experiments so their shape is visible in a
    terminal without any plotting dependency.
    """
    import math

    points = []
    for _, ys in series:
        points.extend(y for y in ys if y > 0)
    if not points:
        return title + "\n(no data)"
    ymin, ymax = min(points), max(points)
    if logy:
        ymin, ymax = math.log10(ymin), math.log10(ymax)
    span = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox#@"
    for index, (_, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        n = len(ys)
        for col in range(width):
            src = min(n - 1, int(col / max(width - 1, 1) * (n - 1))) if n > 1 else 0
            y = ys[src]
            if y <= 0:
                continue
            value = math.log10(y) if logy else y
            row = int((value - ymin) / span * (height - 1))
            grid[height - 1 - row][col] = marker

    legend = "   ".join(
        "%s %s" % (markers[i % len(markers)], label) for i, (label, _) in enumerate(series)
    )
    lines = [title, legend] if title else [legend]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)
