"""The result container shared by all experiment functions."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """One regenerated paper table or figure.

    ``text`` renders like the published table; ``data`` carries the
    machine-readable rows/series (used by tests and EXPERIMENTS.md).
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    #: supervision record of the generating run, as a JSON-native dict
    #: (see :class:`repro.core.supervisor.RunHealth`); None for runs
    #: that never needed intervention.
    health: dict = None
    #: telemetry snapshot of the generating run (see
    #: :meth:`repro.telemetry.Telemetry.snapshot`); None unless the run
    #: was executed with telemetry enabled (``--metrics``).  Never
    #: persisted to the result cache — cached reports replay without
    #: stale timings.
    metrics: dict = None
    #: run-shaping knobs of the generating invocation (see
    #: :meth:`repro.core.checkpoint.SweepController.provenance`:
    #: shard timeout, deadline, resume).  Attached after the cache
    #: put, like ``metrics``, so cached entries stay invocation-free.
    provenance: dict = None

    def __str__(self):
        return "%s -- %s\n\n%s" % (self.experiment_id, self.title, self.text)

    # -- serialization (the repro.store result cache's wire format) --------

    def to_json(self):
        """JSON text of the report; inverse of :meth:`from_json`.

        ``data`` values must be JSON-representable (every experiment's
        ``data`` dict is, by construction); tuples come back as lists
        and non-finite floats use Python's ``Infinity``/``NaN``
        extension, which round-trips through :func:`json.loads`.  The
        ``health`` record is included only when the run was eventful,
        so uneventful reports serialize exactly as before.
        """
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "text": self.text,
            "data": self.data,
        }
        if self.health is not None:
            payload["health"] = self.health
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.provenance is not None:
            payload["provenance"] = self.provenance
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        """Rebuild a report from :meth:`to_json` output."""
        payload = json.loads(text)
        missing = {"experiment_id", "title", "text"} - set(payload)
        if missing:
            raise ValueError(
                "report JSON missing fields: %s" % ", ".join(sorted(missing))
            )
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            text=payload["text"],
            data=payload.get("data", {}),
            health=payload.get("health"),
            metrics=payload.get("metrics"),
            provenance=payload.get("provenance"),
        )
