"""The result container shared by all experiment functions."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """One regenerated paper table or figure.

    ``text`` renders like the published table; ``data`` carries the
    machine-readable rows/series (used by tests and EXPERIMENTS.md).
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self):
        return "%s -- %s\n\n%s" % (self.experiment_id, self.title, self.text)
