"""One callable per paper table/figure, emitting the published rows.

Every experiment returns an :class:`ExperimentReport` whose ``text`` is
a rendered table matching the paper's layout and whose ``data`` holds
the machine-readable rows/series.  The registry maps experiment ids
(``table1``, ``figure2``, ...) to their functions; the CLI, the
examples and the benchmark harness all go through it.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentReport,
    experiment_ids,
    run_experiment,
)
from repro.experiments.render import TextTable, fmt_pct

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "TextTable",
    "experiment_ids",
    "fmt_pct",
    "run_experiment",
]
