"""Extension experiments beyond the paper's tables.

These probe the questions the paper raises but does not measure:

* :func:`error_models` -- detection rates under the Section 7
  "alternative error models" (bit flips, bursts, word swaps, 0x00/0xFF
  runs, garbage), empirically confirming the Section 2 guarantees.
* :func:`mss_sweep` -- how the splice miss rate changes with segment
  size (more cells per packet -> more convolved sums -> closer to
  uniform, per Corollary 3).
* :func:`loss_models` -- the Section 4.6 caveat quantified: weighted
  splice statistics under independent vs bursty cell loss, plus the
  fact that independent loss makes every splice equally likely.
* :func:`monte_carlo_crosscheck` -- the physical simulation (drop
  cells, reassemble, judge) agreeing with the exact enumeration.
"""

from __future__ import annotations

from repro.core.biterrors import (
    BitFlips,
    BurstError,
    GarbageRun,
    RunOverwrite,
    WordSwap,
    error_detection_experiment,
)
from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.lossmodel import weighted_splice_rates
from repro.core.montecarlo import run_monte_carlo
from repro.corpus.profiles import build_filesystem
from repro.experiments.render import TextTable, fmt_pct
from repro.experiments.report import ExperimentReport
from repro.protocols.cellstream import GilbertLoss, IndependentLoss
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig

__all__ = [
    "corpus_stats",
    "error_models",
    "failure_locality",
    "fragment_splices",
    "loss_models",
    "monte_carlo_crosscheck",
    "mss_sweep",
    "uniformity_checks",
]

DEFAULT_FS_BYTES = 300_000
DEFAULT_SEED = 3


def error_models(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1"):
    """Detection rates under alternative error models (Section 7)."""
    fs = build_filesystem(system, fs_bytes, seed)
    injectors = [
        BitFlips(1),
        BitFlips(3),
        BurstError(15),
        BurstError(16),
        BurstError(33),
        WordSwap(),
        RunOverwrite(32, 0x00),
        RunOverwrite(32, 0xFF),
        GarbageRun(48),
    ]
    data = {}
    table = TextTable(
        ["error model", "TCP detect %", "F-256 detect %", "CRC-32 detect %"]
    )
    tcp_rows = error_detection_experiment(
        fs, PacketizerConfig(), injectors, trials_per_packet=2, seed=seed
    )
    f256_rows = error_detection_experiment(
        fs, PacketizerConfig(algorithm="fletcher256"), injectors,
        trials_per_packet=2, seed=seed,
    )
    for injector in injectors:
        name = injector.name
        tcp = tcp_rows[name]
        f256 = f256_rows[name]
        table.add_row(
            name,
            fmt_pct(tcp.transport_rate(), 3),
            fmt_pct(f256.transport_rate(), 3),
            fmt_pct(tcp.crc32_rate(), 3),
        )
        data[name] = dict(
            tcp_pct=tcp.transport_rate(),
            f256_pct=f256.transport_rate(),
            crc32_pct=tcp.crc32_rate(),
            trials=tcp.trials,
        )
    return ExperimentReport(
        "error-models",
        "Detection rates under alternative error models (Sections 2 and 7)",
        table.render(),
        data,
    )


def mss_sweep(
    fs_bytes=DEFAULT_FS_BYTES,
    seed=DEFAULT_SEED,
    system="sics-opt",
    sizes=(128, 256, 536, 1024),
    sample=20_000,
):
    """Splice miss rate vs segment size.

    Larger segments mean more cells per packet, hence block sums
    convolved over more cells (Corollary 3 pushes them toward
    uniform); splice counts explode combinatorially, so pairs beyond
    ``sample`` splices are sampled uniformly.
    """
    fs = build_filesystem(system, fs_bytes, seed)
    table = TextTable(
        ["MSS", "cells/packet", "splices judged", "TCP miss %"]
    )
    data = {"system": system, "rows": []}
    for mss in sizes:
        config = PacketizerConfig(mss=mss)
        simulator = FileTransferSimulator(config)
        options = EngineOptions.from_packetizer(
            config, sample_splices=sample, aux_crcs=()
        )
        engine = SpliceEngine(options)
        counters = None
        for file in fs:
            units = simulator.transfer(file.data)
            if len(units) < 2:
                continue
            result = engine.evaluate_stream(units)
            counters = result if counters is None else counters + result
        cells = (40 + mss + 8 + 47) // 48
        row = dict(
            mss=mss,
            cells=cells,
            splices=counters.total if counters else 0,
            miss_pct=counters.miss_rate_transport if counters else 0.0,
        )
        data["rows"].append(row)
        table.add_row(mss, cells, row["splices"], fmt_pct(row["miss_pct"]))
    return ExperimentReport(
        "mss-sweep",
        "Splice miss rate vs segment size (%s)" % system,
        table.render(),
        data,
    )


def loss_models(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="sics-opt"):
    """Weighted splice statistics under different loss processes."""
    fs = build_filesystem(system, fs_bytes, seed)
    config = PacketizerConfig()
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    simulator = FileTransferSimulator(config)
    models = [
        ("independent p=0.1", IndependentLoss(0.1)),
        ("independent p=0.3", IndependentLoss(0.3)),
        ("Gilbert bursty (0.05, 0.3)", GilbertLoss(0.05, 0.3)),
        ("Gilbert bursty (0.02, 0.15)", GilbertLoss(0.02, 0.15)),
    ]
    table = TextTable(
        ["loss process", "P[corrupted]/pair", "P[TCP miss]/pair",
         "conditional miss %"]
    )
    data = {"system": system}
    for label, model in models:
        totals = {"pairs": 0, "p_corrupted": 0.0, "p_transport_miss": 0.0}
        weighted_missed = weighted_remaining = 0.0
        for file in fs:
            units = simulator.transfer(file.data)
            if len(units) < 2:
                continue
            rates = weighted_splice_rates(units, model, options)
            totals["pairs"] += rates["pairs"]
            weighted_remaining += rates["p_corrupted"] * rates["pairs"]
            weighted_missed += rates["p_transport_miss"] * rates["pairs"]
        pairs = max(totals["pairs"], 1)
        conditional = (
            100.0 * weighted_missed / weighted_remaining if weighted_remaining else 0.0
        )
        table.add_row(
            label,
            "%.3e" % (weighted_remaining / pairs),
            "%.3e" % (weighted_missed / pairs),
            fmt_pct(conditional),
        )
        data[label] = dict(
            p_corrupted=weighted_remaining / pairs,
            p_transport_miss=weighted_missed / pairs,
            conditional_miss_pct=conditional,
        )
    return ExperimentReport(
        "loss-models",
        "Splice statistics weighted by cell-loss process (Section 4.6)",
        table.render(),
        data,
    )


def monte_carlo_crosscheck(
    fs_bytes=120_000, seed=DEFAULT_SEED, system="pathological-gmon", trials=40
):
    """Physical drop-and-reassemble simulation vs exact enumeration."""
    fs = build_filesystem(system, fs_bytes, seed)
    config = PacketizerConfig()
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    simulator = FileTransferSimulator(config)
    engine = SpliceEngine(options)

    tally = None
    counters = None
    for index, file in enumerate(fs):
        units = simulator.transfer(file.data)
        if len(units) < 2:
            continue
        part = run_monte_carlo(
            units, IndependentLoss(0.25), options, trials=trials, seed=seed + index
        )
        tally = part if tally is None else tally + part
        result = engine.evaluate_stream(units)
        counters = result if counters is None else counters + result

    table = TextTable(["statistic", "Monte Carlo", "enumeration"])
    table.add_row("corrupted frames judged", tally.corrupted_frames,
                  counters.remaining)
    table.add_row("transport miss rate", fmt_pct(tally.transport_miss_rate, 3),
                  fmt_pct(counters.miss_rate_transport, 3))
    table.add_row("undetected corruption", tally.undetected_corruption,
                  "n/a (CRC covers)")
    spans = ", ".join(
        "%d frames: %d" % (span, count)
        for span, count in sorted(tally.corrupted_by_span.items())
    )
    table.add_row("corrupted-frame spans", spans or "none", "2 frames only")
    data = dict(
        mc_miss_pct=tally.transport_miss_rate,
        enum_miss_pct=counters.miss_rate_transport,
        mc_corrupted=tally.corrupted_frames,
        undetected=tally.undetected_corruption,
        frames=tally.frames_received,
        corrupted_by_span={int(k): v for k, v in tally.corrupted_by_span.items()},
    )
    return ExperimentReport(
        "montecarlo",
        "Monte Carlo cell loss vs exact splice enumeration (%s)" % system,
        table.render(),
        data,
    )


def fragment_splices(
    fs_bytes=150_000, seed=DEFAULT_SEED, system="sics-opt", mtu=92, engine=None
):
    """The fragmentation-and-reassembly error model vs the cell model.

    Same-offset fragment substitutions do not shift any byte, so
    Fletcher's positional term loses the "colouring" advantage it has
    against cell splices -- the abstract's offset-colouring claim
    measured from the other direction.
    """
    from repro.core.fragsplice import run_fragment_splice_experiment
    from repro.core.experiment import run_splice_experiment

    fs = build_filesystem(system, fs_bytes, seed)
    base = PacketizerConfig()
    fragment_results = run_fragment_splice_experiment(
        fs, base, mtu=mtu, engine=engine or "auto"
    )

    cell_rates = {}
    for algorithm in ("tcp", "fletcher255", "fletcher256"):
        counters = run_splice_experiment(
            fs, base.with_overrides(algorithm=algorithm), engine=engine
        ).counters
        cell_rates[algorithm] = counters.miss_rate_transport

    table = TextTable(
        ["checksum", "cell-splice miss %", "fragment-splice miss %"]
    )
    data = {"system": system, "mtu": mtu}
    for algorithm in ("tcp", "fletcher255", "fletcher256"):
        fragment = fragment_results[algorithm]
        table.add_row(
            algorithm,
            fmt_pct(cell_rates[algorithm]),
            fmt_pct(fragment.miss_rate(algorithm)),
        )
        data[algorithm] = dict(
            cell_pct=cell_rates[algorithm],
            fragment_pct=fragment.miss_rate(algorithm),
            fragment_remaining=fragment.remaining,
        )
    return ExperimentReport(
        "fragment-splices",
        "Cell splices (shifted) vs fragment splices (same offset)",
        table.render(),
        data,
    )


def failure_locality(fs_bytes=600_000, seed=DEFAULT_SEED, system="stanford-u1"):
    """Section 5.5's locality of failure: misses spike in a few files."""
    from repro.core.experiment import run_per_file_experiment

    fs = build_filesystem(system, fs_bytes, seed)
    per_file = run_per_file_experiment(fs, PacketizerConfig())
    total_missed = sum(c.missed_transport for _, c in per_file)
    total_bytes = sum(f.size for f, _ in per_file)
    ranked = sorted(per_file, key=lambda item: item[1].missed_transport,
                    reverse=True)

    table = TextTable(["file", "kind", "bytes", "missed", "miss %"])
    for file, counters in ranked[:8]:
        table.add_row(
            file.name.split("/")[-1], file.kind, file.size,
            counters.missed_transport, fmt_pct(counters.miss_rate_transport),
        )
    top = ranked[: max(1, len(ranked) // 20)]
    top_missed = sum(c.missed_transport for _, c in top)
    top_bytes = sum(f.size for f, _ in top)
    share = 100.0 * top_missed / total_missed if total_missed else 0.0
    byte_share = 100.0 * top_bytes / total_bytes if total_bytes else 0.0
    text = table.render() + (
        "\n\ntop 5%% of files (%.1f%% of bytes) account for %.1f%% of all "
        "TCP misses" % (byte_share, share)
    )
    return ExperimentReport(
        "failure-locality",
        "Locality of checksum failure (Section 5.5)",
        text,
        dict(
            system=system,
            files=len(per_file),
            total_missed=total_missed,
            top_share_pct=share,
            top_byte_share_pct=byte_share,
            worst=[
                dict(name=f.name, kind=f.kind, missed=c.missed_transport)
                for f, c in ranked[:8]
            ],
        ),
    )


def uniformity_checks(samples=150_000, seed=2024, fs_bytes=None):
    """Theorems 6/7 verified statistically against the implementations.

    ``fs_bytes`` is accepted (and ignored) for registry uniformity.
    """
    from repro.analysis.uniformity import (
        checksum_uniformity_test,
        fletcher_component_test,
    )

    table = TextTable(["test", "samples", "chi-square", "p-value", "uniform?"])
    data = {}
    results = [
        checksum_uniformity_test("internet", samples=samples, seed=seed),
        checksum_uniformity_test("fletcher255", samples=samples, seed=seed),
        checksum_uniformity_test("fletcher256", samples=samples, seed=seed),
        fletcher_component_test(255, samples=samples, seed=seed),
        fletcher_component_test(256, samples=samples, seed=seed),
    ]
    for result in results:
        table.add_row(
            result.algorithm, result.samples, "%.1f" % result.statistic,
            "%.4f" % result.p_value,
            "yes" if result.consistent_with_uniform else "NO",
        )
        data[result.algorithm] = result.p_value
    return ExperimentReport(
        "uniformity",
        "Checksum uniformity over uniform data (Theorems 6 and 7)",
        table.render(),
        data,
    )


def corpus_stats(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="stanford-u1"):
    """Per-family corpus statistics: the entropy chain behind the misses.

    Byte entropy -> cell-checksum concentration (Renyi-2 "effective
    bits") -> splice miss rate.  Documents what the synthetic corpus
    actually looks like to a checksum.
    """
    from repro.analysis.entropy import corpus_statistics

    fs = build_filesystem(system, fs_bytes, seed)
    table = TextTable(
        ["family", "bytes", "byte entropy", "zero frac",
         "checksum pmax", "effective bits"]
    )
    data = {}
    for stats in corpus_statistics(fs):
        table.add_row(
            stats.name,
            stats.sample_bytes,
            "%.2f b/B" % stats.byte_entropy_bits,
            "%.3f" % stats.zero_fraction,
            fmt_pct(stats.checksum_pmax_pct, 3),
            "%.1f" % stats.checksum_effective_bits,
        )
        data[stats.name] = dict(
            byte_entropy=stats.byte_entropy_bits,
            zero_fraction=stats.zero_fraction,
            pmax_pct=stats.checksum_pmax_pct,
            effective_bits=stats.checksum_effective_bits,
        )
    return ExperimentReport(
        "corpus-stats",
        "Per-family corpus statistics (%s)" % system,
        table.render(),
        data,
    )
