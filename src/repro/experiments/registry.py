"""Registry mapping experiment ids to their functions."""

from __future__ import annotations

from repro.experiments.ablations import (
    ablation_add_constant,
    ablation_inverted_checksum,
    ablation_unfilled_ip_header,
    early_packet_discard,
    pathological_families,
)
from repro.experiments.distribution_tables import (
    table4_matchprob,
    table5_locality,
    table6_local_vs_actual,
)
from repro.experiments.extensions import (
    corpus_stats,
    error_models,
    failure_locality,
    fragment_splices,
    loss_models,
    monte_carlo_crosscheck,
    mss_sweep,
    uniformity_checks,
)
from repro.experiments.figures import figure2_distribution, figure3_fletcher_pdf
from repro.experiments.report import ExperimentReport
from repro.experiments.splice_tables import (
    table1_nsc,
    table2_sics,
    table3_stanford,
    table7_compressed,
    table8_fletcher,
    table9_trailer,
    table10_header_vs_trailer,
)

__all__ = ["EXPERIMENTS", "ExperimentReport", "experiment_ids", "run_experiment"]

EXPERIMENTS = {
    "table1": table1_nsc,
    "table2": table2_sics,
    "table3": table3_stanford,
    "table4": table4_matchprob,
    "table5": table5_locality,
    "table6": table6_local_vs_actual,
    "table7": table7_compressed,
    "table8": table8_fletcher,
    "table9": table9_trailer,
    "table10": table10_header_vs_trailer,
    "figure2": figure2_distribution,
    "figure3": figure3_fletcher_pdf,
    "pathological": pathological_families,
    "ablation-inverted": ablation_inverted_checksum,
    "ablation-unfilled-header": ablation_unfilled_ip_header,
    "ablation-add-constant": ablation_add_constant,
    "epd": early_packet_discard,
    "error-models": error_models,
    "mss-sweep": mss_sweep,
    "loss-models": loss_models,
    "montecarlo": monte_carlo_crosscheck,
    "fragment-splices": fragment_splices,
    "failure-locality": failure_locality,
    "uniformity": uniformity_checks,
    "corpus-stats": corpus_stats,
}


def experiment_ids():
    """All registered experiment ids, tables first."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id, **kwargs):
    """Run a registered experiment and return its report."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            "unknown experiment %r; available: %s"
            % (experiment_id, ", ".join(EXPERIMENTS))
        )
    return EXPERIMENTS[experiment_id](**kwargs)
