"""Registry mapping experiment ids to their functions.

:func:`run_experiment` is the single entry point the CLI and the
Markdown report generator go through, so it is also where the
``repro.store`` persistence layer hooks in:

* ``cache=`` consults the experiment-level result cache: a verified
  hit deserializes the stored :class:`ExperimentReport` (bit-identical
  rendered text); a miss runs the experiment and stores it; a corrupt
  entry is evicted and recomputed.
* ``workers=`` / ``store=`` are forwarded only to experiments whose
  signatures accept them (the splice tables), and never enter cache
  keys — neither can change a result.

The registry maps ids to ``"module:function"`` spec strings resolved
on first use, so importing it (e.g. to build CLI ``choices``) does not
drag in every experiment module — a warm ``--cache`` hit deserializes
a stored report without ever importing the splice engine.
"""

from __future__ import annotations

import importlib
import inspect

from repro.experiments.report import ExperimentReport

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "experiment_ids",
    "resolve",
    "run_experiment",
]

_ABLATIONS = "repro.experiments.ablations"
_CHANNEL = "repro.experiments.channel_tables"
_DIST = "repro.experiments.distribution_tables"
_EXT = "repro.experiments.extensions"
_FIGURES = "repro.experiments.figures"
_SPLICE = "repro.experiments.splice_tables"

#: Experiment id -> ``"module:function"`` spec, resolved lazily.
#: Iteration/membership still works as an id set for CLI choices and
#: the Markdown generator's selection logic.
EXPERIMENTS = {
    "table1": _SPLICE + ":table1_nsc",
    "table2": _SPLICE + ":table2_sics",
    "table3": _SPLICE + ":table3_stanford",
    "table4": _DIST + ":table4_matchprob",
    "table5": _DIST + ":table5_locality",
    "table6": _DIST + ":table6_local_vs_actual",
    "table7": _SPLICE + ":table7_compressed",
    "table8": _SPLICE + ":table8_fletcher",
    "table9": _SPLICE + ":table9_trailer",
    "table10": _SPLICE + ":table10_header_vs_trailer",
    "figure2": _FIGURES + ":figure2_distribution",
    "figure3": _FIGURES + ":figure3_fletcher_pdf",
    "pathological": _ABLATIONS + ":pathological_families",
    "ablation-inverted": _ABLATIONS + ":ablation_inverted_checksum",
    "ablation-unfilled-header": _ABLATIONS + ":ablation_unfilled_ip_header",
    "ablation-add-constant": _ABLATIONS + ":ablation_add_constant",
    "epd": _ABLATIONS + ":early_packet_discard",
    "error-models": _EXT + ":error_models",
    "mss-sweep": _EXT + ":mss_sweep",
    "loss-models": _EXT + ":loss_models",
    "montecarlo": _EXT + ":monte_carlo_crosscheck",
    "fragment-splices": _EXT + ":fragment_splices",
    "failure-locality": _EXT + ":failure_locality",
    "uniformity": _EXT + ":uniformity_checks",
    "corpus-stats": _EXT + ":corpus_stats",
    "channel-regimes": _CHANNEL + ":channel_regimes",
    "channel-goodput": _CHANNEL + ":channel_goodput",
    "channel-arq": _CHANNEL + ":channel_arq",
}


def resolve(experiment_id):
    """Import and return the function behind ``experiment_id``."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            "unknown experiment %r; available: %s"
            % (experiment_id, ", ".join(EXPERIMENTS))
        )
    module_name, _, attribute = EXPERIMENTS[experiment_id].partition(":")
    return getattr(importlib.import_module(module_name), attribute)


def experiment_ids():
    """All registered experiment ids, tables first."""
    return list(EXPERIMENTS)


def _accepts(function, name):
    """True if ``function`` takes a ``name`` keyword."""
    try:
        return name in inspect.signature(function).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False


def run_experiment(
    experiment_id, cache=None, workers=None, store=None, engine=None, **kwargs
):
    """Run a registered experiment and return its report.

    ``cache`` is a :class:`repro.store.cache.ResultCache` (or a
    :class:`repro.store.runner.RunStore`, whose ``results`` cache and
    ``store`` hook are both used).  ``workers`` fans splice runs over a
    process pool; ``store`` makes them resumable at shard granularity;
    ``engine`` selects the splice evaluation path
    (``batch``/``scalar``/``auto``).  None of the three enters the
    cache key — cached, direct, scalar and batch runs are all
    bit-identical by construction (the conformance suite asserts the
    engine half).
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            "unknown experiment %r; available: %s"
            % (experiment_id, ", ".join(EXPERIMENTS))
        )

    if cache is not None and store is None and hasattr(cache, "results"):
        store = cache  # a RunStore doubles as shard store + result cache
    result_cache = getattr(cache, "results", cache)

    key = None
    if result_cache is not None:
        from repro.store.keys import experiment_key

        key = experiment_key(experiment_id, kwargs)
        try:
            report = result_cache.get_object(key, ExperimentReport.from_json)
        except OSError:
            # A failing cache root must never fail the experiment; a
            # read error is just a miss.
            report = None
        if report is not None:
            from repro.telemetry.core import current as _telemetry

            telemetry = _telemetry()
            if telemetry.enabled and report.metrics is None:
                report.metrics = telemetry.snapshot()
            _attach_provenance(report)
            return report

    function = resolve(experiment_id)
    call_kwargs = dict(kwargs)
    if workers is not None and _accepts(function, "workers"):
        call_kwargs["workers"] = workers
    if store is not None and _accepts(function, "store"):
        call_kwargs["store"] = store
    if engine is not None and _accepts(function, "engine"):
        call_kwargs["engine"] = engine

    health = None
    if _accepts(function, "health"):
        from repro.core.supervisor import RunHealth

        health = RunHealth()
        call_kwargs["health"] = health
    report = function(**call_kwargs)

    # Attach the supervision record so reports say what they survived.
    if health is not None and health.eventful and report.health is None:
        report.health = health.to_dict()

    if result_cache is not None:
        try:
            result_cache.put_object(key, report)
        except OSError as exc:
            import warnings

            warnings.warn(
                "could not cache report for %r (%s); result is unaffected"
                % (experiment_id, exc),
                RuntimeWarning,
                stacklevel=2,
            )

    # Ride the telemetry snapshot alongside the health record — but only
    # after the cache put, so persisted reports never carry the (run-
    # specific, timing-laden) metrics of the run that produced them.
    from repro.telemetry.core import current as _telemetry

    telemetry = _telemetry()
    if telemetry.enabled and report.metrics is None:
        report.metrics = telemetry.snapshot()
    _attach_provenance(report)
    return report


def _attach_provenance(report):
    """Record the ambient run-shaping knobs on ``report`` (post-cache).

    Like ``metrics``, provenance describes the *invocation* rather than
    the result, so it is attached only after the cache put — persisted
    reports stay knob-free and replay identically under any flags.
    """
    from repro.core.checkpoint import current_controller

    provenance = current_controller().provenance()
    if provenance and report.provenance is None:
        report.provenance = provenance
