"""Section 5.5 / 6.x studies: pathological data and design ablations.

* :func:`pathological_families` -- Section 5.5: data patterns that
  defeat specific checksums (PBM 0/255 bitmaps vs Fletcher-255,
  hex-encoded PostScript bitmaps vs F-256 and TCP, gmon-style sparse
  profiles vs TCP).
* :func:`ablation_inverted_checksum` -- Section 6.3: storing the sum
  instead of its complement leaves the miss rate essentially unchanged
  (for TCP/IP, because the filled IP header already distinguishes the
  header cell).
* :func:`ablation_unfilled_ip_header` -- Section 6.2: the SIGCOMM '95
  simulator bug.  Leaving the IP ID/TTL/checksum bytes zero makes the
  header cell of an all-zero-payload packet zero-congruent, inflating
  the miss count by orders of magnitude.
* :func:`ablation_add_constant` -- Section 6.1: adding a constant to
  every word permutes the checksum distribution but leaves the failure
  rate roughly unchanged -- zero is frequent, not special.
* :func:`early_packet_discard` -- Section 7: with EPD-style tail
  dropping, no valid splice can form at all.
"""

from __future__ import annotations

from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.corpus.transforms import add_constant_to_words
from repro.experiments.render import TextTable, fmt_count, fmt_pct
from repro.experiments.report import ExperimentReport
from repro.protocols.packetizer import PacketizerConfig

__all__ = [
    "ablation_add_constant",
    "ablation_inverted_checksum",
    "ablation_unfilled_ip_header",
    "early_packet_discard",
    "pathological_families",
]

DEFAULT_FS_BYTES = 600_000
DEFAULT_SEED = 3

PATHOLOGICAL_SYSTEMS = (
    "pathological-pbm",
    "pathological-hexps",
    "pathological-gmon",
    "pathological-binhex",
    "uniform",
)


def pathological_families(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED):
    """Section 5.5: per-family miss rates for TCP, F-255 and F-256."""
    base = PacketizerConfig()
    configs = [
        ("TCP", base),
        ("F-255", base.with_overrides(algorithm="fletcher255")),
        ("F-256", base.with_overrides(algorithm="fletcher256")),
    ]
    table = TextTable(["family", "TCP miss %", "F-255 miss %", "F-256 miss %"])
    data = {}
    for system in PATHOLOGICAL_SYSTEMS:
        fs = build_filesystem(system, fs_bytes, seed)
        rates = {}
        for label, config in configs:
            c = run_splice_experiment(fs, config).counters
            rates[label] = c.miss_rate_transport
        table.add_row(
            system, fmt_pct(rates["TCP"]), fmt_pct(rates["F-255"]),
            fmt_pct(rates["F-256"]),
        )
        data[system] = rates
    return ExperimentReport(
        "pathological",
        "Pathological data patterns (Section 5.5)",
        table.render(),
        data,
    )


def ablation_inverted_checksum(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="sics-opt"
):
    """Section 6.3: inverted vs non-inverted stored checksum."""
    fs = build_filesystem(system, fs_bytes, seed)
    base = PacketizerConfig()
    inverted = run_splice_experiment(fs, base).counters
    plain = run_splice_experiment(fs, base.with_overrides(invert=False)).counters
    table = TextTable(["stored value", "missed", "remaining", "miss %"])
    table.add_row("~sum (standard)", fmt_count(inverted.missed_transport),
                  fmt_count(inverted.remaining), fmt_pct(inverted.miss_rate_transport))
    table.add_row("sum (ablation)", fmt_count(plain.missed_transport),
                  fmt_count(plain.remaining), fmt_pct(plain.miss_rate_transport))
    return ExperimentReport(
        "ablation-inverted",
        "Inverted vs non-inverted stored checksum (Section 6.3)",
        table.render(),
        dict(
            inverted_pct=inverted.miss_rate_transport,
            plain_pct=plain.miss_rate_transport,
        ),
    )


def ablation_unfilled_ip_header(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="sics-opt"
):
    """Section 6.2: the unfilled-IP-header simulator bug."""
    fs = build_filesystem(system, fs_bytes, seed)
    base = PacketizerConfig()
    filled = run_splice_experiment(fs, base).counters
    unfilled = run_splice_experiment(
        fs, base.with_overrides(fill_ip_header=False)
    ).counters
    ratio = (
        unfilled.miss_rate_transport / filled.miss_rate_transport
        if filled.miss_rate_transport
        else float("inf")
    )
    table = TextTable(["IP header", "missed", "remaining", "miss %"])
    table.add_row("filled (correct)", fmt_count(filled.missed_transport),
                  fmt_count(filled.remaining), fmt_pct(filled.miss_rate_transport))
    table.add_row("unfilled (1995 bug)", fmt_count(unfilled.missed_transport),
                  fmt_count(unfilled.remaining), fmt_pct(unfilled.miss_rate_transport))
    return ExperimentReport(
        "ablation-unfilled-header",
        "Filled vs unfilled IP header bytes (Section 6.2)",
        table.render() + "\ninflation factor: %.1fx" % ratio,
        dict(
            filled_pct=filled.miss_rate_transport,
            unfilled_pct=unfilled.miss_rate_transport,
            inflation=ratio,
        ),
    )


def ablation_add_constant(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, system="sics-opt", constant=1
):
    """Section 6.1: is zero special?  Shift every word and re-measure."""
    fs = build_filesystem(system, fs_bytes, seed)
    shifted = add_constant_to_words(fs, constant)
    config = PacketizerConfig()
    original = run_splice_experiment(fs, config).counters
    moved = run_splice_experiment(shifted, config).counters
    table = TextTable(["corpus", "missed", "remaining", "miss %"])
    table.add_row("original", fmt_count(original.missed_transport),
                  fmt_count(original.remaining), fmt_pct(original.miss_rate_transport))
    table.add_row("+%d per word" % constant, fmt_count(moved.missed_transport),
                  fmt_count(moved.remaining), fmt_pct(moved.miss_rate_transport))
    return ExperimentReport(
        "ablation-add-constant",
        "Adding a constant to every word (Section 6.1)",
        table.render(),
        dict(
            original_pct=original.miss_rate_transport,
            shifted_pct=moved.miss_rate_transport,
        ),
    )


def early_packet_discard(mss=256):
    """Section 7: EPD-style tail dropping admits no valid splice.

    Under Early Packet Discard a switch that drops one cell of a frame
    drops every subsequent cell of that frame too.  The deliverable
    cell sequences are then a *prefix* of the first frame's unmarked
    cells followed by the intact second frame; any non-empty prefix
    makes the cell count exceed the AAL5 length check, so the count of
    undetectable splices is identically zero.
    """
    cells = (40 + mss + 8 + 47) // 48
    # Prefix lengths 1 .. cells-1 each add that many cells to the
    # second frame's n2; the length check requires exactly n2 cells.
    reachable = [p for p in range(1, cells) if p + cells == cells]
    table = TextTable(["prefix cells kept", "frame cells", "passes length check"])
    for p in range(0, cells):
        table.add_row(p, p + cells, "yes" if p == 0 else "no")
    text = table.render() + (
        "\nEPD-reachable splices passing the AAL5 length check: %d"
        % len(reachable)
    )
    return ExperimentReport(
        "epd",
        "Early Packet Discard eliminates valid splices (Section 7)",
        text,
        dict(reachable_splices=len(reachable)),
    )
