"""The channel-resilience experiment family.

The splice tables ask "what fraction of corrupted frames does each
checksum miss?"; these experiments ask the operational question behind
it: **when a protocol stack actually retransmits on those verdicts,
what reaches the application?**  Three views:

* :func:`channel_regimes` -- undetected-corruption rate per checksum
  algorithm across channel regimes, with the AAL5 CRC removed so the
  transport checksum is the last line of defence (the paper's
  Section 4 scenario, now under a timed channel with burst errors);
* :func:`channel_goodput` -- goodput and retransmission overhead as
  the channel degrades (independent loss swept from clean to awful);
* :func:`channel_arq` -- the ARQ disciplines compared on the same
  bursty link: transmissions, timeouts, out-of-order discards, and
  what each delivered.

Every run is a seeded simulation; the tables are bit-identical across
runs and ``--workers`` settings.
"""

from __future__ import annotations

from repro.channel.arq import ArqConfig
from repro.channel.plan import ChannelPlan, named_channel_plan
from repro.channel.sweep import run_channel_sweep
from repro.corpus.profiles import build_filesystem
from repro.experiments.render import TextTable, fmt_count, fmt_pct
from repro.experiments.report import ExperimentReport

__all__ = ["channel_arq", "channel_goodput", "channel_regimes"]

DEFAULT_FS_BYTES = 400_000
DEFAULT_SEED = 3


def _row_data(report):
    return dict(
        frames=report.frames,
        transmissions=report.transmissions,
        retransmissions=report.retransmissions,
        timeouts=report.timeouts,
        frames_rejected=report.frames_rejected,
        out_of_order=report.out_of_order,
        delivered_clean=report.delivered_clean,
        delivered_corrupted=report.delivered_corrupted,
        frames_failed=report.frames_failed,
        goodput=report.goodput,
        delivery_ratio=report.delivery_ratio,
        retransmission_ratio=report.retransmission_ratio,
        cells_sent=report.cells_sent,
        ticks=report.ticks,
    )


def channel_regimes(
    fs_bytes=DEFAULT_FS_BYTES,
    seed=DEFAULT_SEED,
    system="nsc05",
    workers=None,
    store=None,
    health=None,
):
    """Silent corruption per checksum algorithm x channel regime.

    The AAL5 CRC is disabled (``use_crc=False``) so acceptance rests
    on the transport checksum alone -- the configuration in which the
    paper's miss rates translate directly into corrupted frames handed
    to the application.  Burst regimes are where the algorithms
    separate: clustered bit errors produce exactly the structured
    differences weak checksums miss.
    """
    fs = build_filesystem(system, fs_bytes, seed)
    regimes = ("clean", "lossy-link", "bursty-link", "congested-queue")
    algorithms = ("tcp", "fletcher255", "fletcher256")
    table = TextTable(
        ["regime", "algorithm", "delivered", "corrupted", "failed",
         "silent corruption %"]
    )
    data = {"system": system, "rows": []}
    from repro.protocols.packetizer import PacketizerConfig

    for regime in regimes:
        plan = named_channel_plan(regime, seed=seed)
        for algorithm in algorithms:
            report = run_channel_sweep(
                fs, plan, arq=ArqConfig(),
                config=PacketizerConfig(algorithm=algorithm),
                use_crc=False, workers=workers, health=health, store=store,
            )
            rate = (
                report.delivered_corrupted / report.delivered
                if report.delivered else 0.0
            )
            table.add_row(
                regime, algorithm,
                fmt_count(report.delivered),
                fmt_count(report.delivered_corrupted),
                fmt_count(report.frames_failed),
                fmt_pct(rate * 100, 4),
            )
            data["rows"].append(dict(
                regime=regime, algorithm=algorithm,
                silent_corruption_rate=rate, **_row_data(report),
            ))
    return ExperimentReport(
        "channel-regimes",
        "Silent corruption by checksum algorithm across channel regimes "
        "(no CRC)",
        table.render(),
        data,
    )


def channel_goodput(
    fs_bytes=DEFAULT_FS_BYTES,
    seed=DEFAULT_SEED,
    system="nsc05",
    loss_rates=(0.0, 0.02, 0.05, 0.1, 0.2),
    workers=None,
    store=None,
    health=None,
):
    """Goodput and retransmission overhead vs channel badness."""
    fs = build_filesystem(system, fs_bytes, seed)
    table = TextTable(
        ["loss rate", "transmissions", "retx ratio", "goodput",
         "delivered %", "ticks"]
    )
    data = {"system": system, "rows": []}
    for loss_rate in loss_rates:
        plan = ChannelPlan(
            name="goodput-%g" % loss_rate, seed=seed, loss_rate=loss_rate
        )
        report = run_channel_sweep(
            fs, plan, arq=ArqConfig(), workers=workers, health=health,
            store=store,
        )
        table.add_row(
            "%.2f" % loss_rate,
            fmt_count(report.transmissions),
            "%.2f" % report.retransmission_ratio,
            "%.3f" % report.goodput,
            fmt_pct(report.delivery_ratio * 100, 2),
            fmt_count(int(report.ticks)),
        )
        data["rows"].append(dict(loss_rate=loss_rate, **_row_data(report)))
    return ExperimentReport(
        "channel-goodput",
        "Goodput and retransmission overhead vs channel loss rate",
        table.render(),
        data,
    )


def channel_arq(
    fs_bytes=DEFAULT_FS_BYTES,
    seed=DEFAULT_SEED,
    system="nsc05",
    workers=None,
    store=None,
    health=None,
):
    """The three ARQ disciplines on the same bursty link."""
    fs = build_filesystem(system, fs_bytes, seed)
    plan = named_channel_plan("bursty-link", seed=seed)
    table = TextTable(
        ["ARQ", "transmissions", "timeouts", "out-of-order", "delivered %",
         "failed", "ticks"]
    )
    data = {"system": system, "plan": plan.to_dict(), "rows": []}
    for kind in ("stop-and-wait", "go-back-n", "selective-repeat"):
        report = run_channel_sweep(
            fs, plan, arq=ArqConfig(kind=kind), workers=workers,
            health=health, store=store,
        )
        table.add_row(
            kind,
            fmt_count(report.transmissions),
            fmt_count(report.timeouts),
            fmt_count(report.out_of_order),
            fmt_pct(report.delivery_ratio * 100, 2),
            fmt_count(report.frames_failed),
            fmt_count(int(report.ticks)),
        )
        data["rows"].append(dict(arq=kind, **_row_data(report)))
    return ExperimentReport(
        "channel-arq",
        "ARQ disciplines compared on the bursty link",
        table.render(),
        data,
    )
