"""A small dependency-free SVG line-chart writer for the figures.

The figure experiments carry their series in ``report.data``; this
module renders them as publication-style log-y line charts so the
reproduction can emit actual Figure 2 / Figure 3 artefacts without any
plotting dependency.  ``repro-checksums run figure2 --svg out.svg``
wires it up from the CLI.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

__all__ = ["render_line_chart", "figure_svg", "write_figure_svg"]

_PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#9c6b4e", "#97bbf5"]

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 40, 48


def _log_ticks(lo, hi):
    ticks = []
    exponent = math.floor(math.log10(lo))
    while 10 ** exponent <= hi * 1.0001:
        if 10 ** exponent >= lo * 0.9999:
            ticks.append(10.0 ** exponent)
        exponent += 1
    return ticks or [lo, hi]


def render_line_chart(series, title="", x_label="", y_label="", logy=True):
    """Render ``[(label, [y...]), ...]`` as an SVG line chart string.

    X is the index (1-based); Y is linear or log10.  Zero/negative
    values are skipped in log mode.
    """
    values = [y for _, ys in series for y in ys if (y > 0 or not logy)]
    if not values:
        raise ValueError("no plottable values")
    y_lo, y_hi = min(values), max(values)
    if logy:
        y_lo_t, y_hi_t = math.log10(y_lo), math.log10(y_hi)
    else:
        y_lo_t, y_hi_t = y_lo, y_hi
    if y_hi_t == y_lo_t:
        y_hi_t = y_lo_t + 1.0
    n = max(len(ys) for _, ys in series)

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def x_pos(i):
        return _MARGIN_L + (i / max(n - 1, 1)) * plot_w

    def y_pos(y):
        t = math.log10(y) if logy else y
        return _MARGIN_T + (1 - (t - y_lo_t) / (y_hi_t - y_lo_t)) * plot_h

    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'font-family="sans-serif" font-size="12">' % (_WIDTH, _HEIGHT),
        '<rect width="%d" height="%d" fill="white"/>' % (_WIDTH, _HEIGHT),
        '<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>'
        % (_MARGIN_L, escape(title)),
    ]

    # Axes box.
    parts.append(
        '<rect x="%d" y="%d" width="%d" height="%d" fill="none" '
        'stroke="#888"/>' % (_MARGIN_L, _MARGIN_T, plot_w, plot_h)
    )
    # Y ticks.
    ticks = _log_ticks(y_lo, y_hi) if logy else [
        y_lo + k * (y_hi - y_lo) / 4 for k in range(5)
    ]
    for tick in ticks:
        y = y_pos(tick)
        parts.append(
            '<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>'
            % (_MARGIN_L, y, _WIDTH - _MARGIN_R, y)
        )
        label = "%.0e" % tick if (tick < 0.01 or tick >= 1e4) else "%g" % tick
        parts.append(
            '<text x="%d" y="%.1f" text-anchor="end" fill="#444">%s</text>'
            % (_MARGIN_L - 6, y + 4, escape(label))
        )
    # X label / Y label.
    if x_label:
        parts.append(
            '<text x="%d" y="%d" text-anchor="middle" fill="#444">%s</text>'
            % (_MARGIN_L + plot_w // 2, _HEIGHT - 12, escape(x_label))
        )
    if y_label:
        parts.append(
            '<text x="16" y="%d" text-anchor="middle" fill="#444" '
            'transform="rotate(-90 16 %d)">%s</text>'
            % (_MARGIN_T + plot_h // 2, _MARGIN_T + plot_h // 2, escape(y_label))
        )

    # Series.
    for index, (label, ys) in enumerate(series):
        colour = _PALETTE[index % len(_PALETTE)]
        points = [
            "%.1f,%.1f" % (x_pos(i), y_pos(y))
            for i, y in enumerate(ys)
            if y > 0 or not logy
        ]
        if points:
            parts.append(
                '<polyline fill="none" stroke="%s" stroke-width="1.5" '
                'points="%s"/>' % (colour, " ".join(points))
            )
        # Legend entry.
        ly = _MARGIN_T + 14 * index + 4
        lx = _WIDTH - _MARGIN_R - 150
        parts.append(
            '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" '
            'stroke-width="2"/>' % (lx, ly, lx + 18, ly, colour)
        )
        parts.append(
            '<text x="%d" y="%d" fill="#222">%s</text>'
            % (lx + 24, ly + 4, escape(str(label)))
        )

    parts.append("</svg>")
    return "\n".join(parts)


def figure_svg(report):
    """Build the SVG for a ``figure2``/``figure3`` experiment report."""
    data = report.data
    if report.experiment_id == "figure2":
        series = [
            ("k=%d" % k, data["pdf_k%d" % k]) for k in data["ks"]
        ] + [("predict k=2", data["predict_k2"]),
             ("uniform", [data["uniform"]] * len(data["pdf_k1"]))]
        return render_line_chart(
            series,
            title="TCP checksum PDF over k-cell blocks (%s)" % data["system"],
            x_label="checksum values, most common first",
            y_label="probability (log)",
        )
    if report.experiment_id == "figure3":
        series = [
            ("IP/TCP", data["pdf_ip_tcp"]),
            ("F255", data["pdf_f255"]),
            ("F256", data["pdf_f256"]),
        ]
        return render_line_chart(
            series,
            title="Single-cell checksum PDFs (%s)" % data["system"],
            x_label="checksum values, most common first",
            y_label="probability (log)",
        )
    raise ValueError("no SVG renderer for experiment %r" % report.experiment_id)


def write_figure_svg(report, path):
    """Write a figure report's SVG to ``path``."""
    svg = figure_svg(report)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path
