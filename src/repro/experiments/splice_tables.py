"""Tables 1-3, 7, 8, 9 and 10: the splice simulation tables.

Each function materialises the named synthetic filesystems, runs the
splice simulation under the relevant packetizer configuration, and
renders rows in the paper's layout.  Sizes default to about a million
bytes per filesystem -- large enough for every observable rate, small
enough to regenerate a table in seconds; pass ``fs_bytes`` to scale up.
"""

from __future__ import annotations

from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.corpus.transforms import compress_filesystem
from repro.experiments.render import TextTable, fmt_count, fmt_pct
from repro.experiments.report import ExperimentReport
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig

__all__ = [
    "table1_nsc",
    "table2_sics",
    "table3_stanford",
    "table7_compressed",
    "table8_fletcher",
    "table9_trailer",
    "table10_header_vs_trailer",
]

DEFAULT_FS_BYTES = 1_000_000
DEFAULT_SEED = 3

_UNIFORM_MISS_PCT = 100.0 / 65536  # the 2^-16 expectation, in percent

TABLE1_SYSTEMS = ("nsc05", "nsc11", "nsc23", "nsc25")
TABLE2_SYSTEMS = ("sics-src1", "sics-src2", "sics-opt", "sics-solaris")
TABLE3_SYSTEMS = ("stanford-u1", "stanford-usr-local")
FLETCHER_SYSTEMS = (
    "sics-opt",
    "stanford-u1",
    "stanford-usr-local",
    "sics-src1",
    "sics-src2",
)


def _splice_rows(systems, fs_bytes, seed, config, workers=None, store=None, health=None, engine=None):
    rows = []
    for name in systems:
        fs = build_filesystem(name, fs_bytes, seed)
        result = run_splice_experiment(fs, config, workers=workers, store=store, health=health, engine=engine)
        rows.append((name, result.counters))
    return rows


def _render_splice_table(rows):
    table = TextTable(
        ["system", "total", "hdr-caught", "identical", "remaining",
         "CRC misses", "TCP misses", "TCP miss %"]
    )
    data = []
    for name, c in rows:
        table.add_row(
            name,
            fmt_count(c.total),
            fmt_count(c.caught_by_header),
            fmt_count(c.identical),
            fmt_count(c.remaining),
            fmt_count(c.missed_crc32),
            fmt_count(c.missed_transport),
            fmt_pct(c.miss_rate_transport),
        )
        data.append(
            dict(
                system=name,
                total=c.total,
                caught_by_header=c.caught_by_header,
                identical=c.identical,
                remaining=c.remaining,
                missed_crc32=c.missed_crc32,
                missed_tcp=c.missed_transport,
                miss_rate_tcp_pct=c.miss_rate_transport,
                miss_rate_crc16_pct=c.miss_rate_aux("crc16-ccitt"),
                effective_bits=c.effective_bits,
            )
        )
    footer = (
        "\nuniform-data expectation: TCP %s, CRC-32 %.2e%%"
        % (fmt_pct(_UNIFORM_MISS_PCT), 100 * 2**-32)
    )
    return table.render() + footer, data


def _splice_table_report(
    experiment_id, title, systems, fs_bytes, seed, workers=None, store=None, health=None, engine=None
):
    rows = _splice_rows(
        systems, fs_bytes, seed, PacketizerConfig(),
        workers=workers, store=store, health=health, engine=engine,
    )
    text, data = _render_splice_table(rows)
    return ExperimentReport(experiment_id, title, text, {"rows": data})


def table1_nsc(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 1: CRC and TCP checksum results, NSC-profile systems."""
    return _splice_table_report(
        "table1", "Splice results, 256-byte packets (NSC profiles)",
        TABLE1_SYSTEMS, fs_bytes, seed, workers=workers, store=store, health=health, engine=engine,
    )


def table2_sics(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 2: CRC and TCP checksum results, SICS-profile systems."""
    return _splice_table_report(
        "table2", "Splice results, 256-byte packets (SICS profiles)",
        TABLE2_SYSTEMS, fs_bytes, seed, workers=workers, store=store, health=health, engine=engine,
    )


def table3_stanford(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 3: CRC and TCP checksum results, Stanford-profile systems."""
    return _splice_table_report(
        "table3", "Splice results, 256-byte packets (Stanford profiles)",
        TABLE3_SYSTEMS, fs_bytes, seed, workers=workers, store=store, health=health, engine=engine,
    )


def table7_compressed(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 7: the Section 5.1 compression counterfactual.

    Compressing the worst filesystem (sics-opt) restores a near-uniform
    distribution, so the TCP miss rate should fall back to ~2^-16.
    """
    fs = build_filesystem("sics-opt", fs_bytes, seed)
    config = PacketizerConfig()
    before = run_splice_experiment(fs, config, workers=workers, store=store, health=health, engine=engine).counters
    after = run_splice_experiment(
        compress_filesystem(fs), config,
        workers=workers, store=store, health=health, engine=engine,
    ).counters
    table = TextTable(["corpus", "remaining", "TCP misses", "TCP miss %"])
    for label, c in (("sics-opt", before), ("sics-opt compressed", after)):
        table.add_row(
            label, fmt_count(c.remaining), fmt_count(c.missed_transport),
            fmt_pct(c.miss_rate_transport),
        )
    text = table.render() + "\nuniform-data expectation: %s" % fmt_pct(
        _UNIFORM_MISS_PCT
    )
    return ExperimentReport(
        "table7",
        "TCP checksum results on compressed data (Section 5.1)",
        text,
        {
            "miss_rate_before_pct": before.miss_rate_transport,
            "miss_rate_after_pct": after.miss_rate_transport,
            "uniform_pct": _UNIFORM_MISS_PCT,
            "remaining_after": after.remaining,
        },
    )


def table8_fletcher(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 8: Fletcher mod-255 / mod-256 vs the TCP checksum."""
    base = PacketizerConfig()
    configs = [
        ("TCP", base),
        ("F-255", base.with_overrides(algorithm="fletcher255")),
        ("F-256", base.with_overrides(algorithm="fletcher256")),
    ]
    table = TextTable(["system", "checksum", "missed", "remaining", "miss %"])
    data = []
    for name in FLETCHER_SYSTEMS:
        fs = build_filesystem(name, fs_bytes, seed)
        for label, config in configs:
            c = run_splice_experiment(
                fs, config,
                workers=workers, store=store, health=health, engine=engine,
            ).counters
            table.add_row(
                name if label == "TCP" else "",
                label,
                fmt_count(c.missed_transport),
                fmt_count(c.remaining),
                fmt_pct(c.miss_rate_transport),
            )
            data.append(
                dict(
                    system=name,
                    checksum=label,
                    missed=c.missed_transport,
                    remaining=c.remaining,
                    miss_rate_pct=c.miss_rate_transport,
                )
            )
    return ExperimentReport(
        "table8", "Fletcher's checksum results (256-byte packets)",
        table.render(), {"rows": data},
    )


def table9_trailer(fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None):
    """Table 9: trailer-placed TCP checksum vs the header placement."""
    base = PacketizerConfig()
    trailer = base.with_overrides(placement=ChecksumPlacement.TRAILER)
    table = TextTable(
        ["system", "TCP miss %", "trailer miss %", "uniform %", "improvement"]
    )
    data = []
    for name in FLETCHER_SYSTEMS:
        fs = build_filesystem(name, fs_bytes, seed)
        header_c = run_splice_experiment(fs, base, workers=workers, store=store, health=health, engine=engine).counters
        trailer_c = run_splice_experiment(fs, trailer, workers=workers, store=store, health=health, engine=engine).counters
        ratio = (
            header_c.miss_rate_transport / trailer_c.miss_rate_transport
            if trailer_c.miss_rate_transport
            else float("inf")
        )
        table.add_row(
            name,
            fmt_pct(header_c.miss_rate_transport),
            fmt_pct(trailer_c.miss_rate_transport),
            fmt_pct(_UNIFORM_MISS_PCT),
            "%.0fx" % ratio if ratio != float("inf") else "inf",
        )
        data.append(
            dict(
                system=name,
                tcp_miss_pct=header_c.miss_rate_transport,
                trailer_miss_pct=trailer_c.miss_rate_transport,
                improvement=ratio,
            )
        )
    return ExperimentReport(
        "table9", "Trailer checksum results (256-byte packets)",
        table.render(), {"rows": data},
    )


def table10_header_vs_trailer(
    fs_bytes=DEFAULT_FS_BYTES, seed=DEFAULT_SEED, workers=None, store=None, health=None, engine=None
):
    """Table 10: false positives/negatives, header vs trailer placement."""
    fs = build_filesystem("stanford-u1", fs_bytes, seed)
    base = PacketizerConfig()
    header_c = run_splice_experiment(fs, base, workers=workers, store=store, health=health, engine=engine).counters
    trailer_c = run_splice_experiment(
        fs, base.with_overrides(placement=ChecksumPlacement.TRAILER),
        workers=workers, store=store, health=health, engine=engine,
    ).counters

    def pct(count, total):
        return 100.0 * count / total if total else 0.0

    table = TextTable(["outcome", "header", "trailer"])
    table.add_row(
        "fails checksum, data identical",
        fmt_count(header_c.identical_rejected),
        fmt_count(trailer_c.identical_rejected),
    )
    table.add_row(
        "passes checksum, data changed",
        fmt_count(header_c.missed_transport),
        fmt_count(trailer_c.missed_transport),
    )
    table.add_row(
        "fails checksum, data identical (%)",
        fmt_pct(pct(header_c.identical_rejected, header_c.total)),
        fmt_pct(pct(trailer_c.identical_rejected, trailer_c.total)),
    )
    table.add_row(
        "passes checksum, data changed (%)",
        fmt_pct(header_c.miss_rate_transport),
        fmt_pct(trailer_c.miss_rate_transport),
    )
    data = dict(
        header_identical_rejected=header_c.identical_rejected,
        trailer_identical_rejected=trailer_c.identical_rejected,
        header_missed=header_c.missed_transport,
        trailer_missed=trailer_c.missed_transport,
        header_miss_pct=header_c.miss_rate_transport,
        trailer_miss_pct=trailer_c.miss_rate_transport,
    )
    return ExperimentReport(
        "table10",
        "Header vs trailer checksum failure modes (Section 5.3)",
        table.render(),
        data,
    )
