"""Whole-filesystem transforms used by the paper's counterfactuals.

* :func:`compress_filesystem` -- the Section 5.1 experiment: compress
  every file, which restores a near-uniform byte distribution and with
  it the expected 2^-16 TCP miss rate.  The paper used UNIX
  ``compress`` (LZW); we use DEFLATE, which serves the same purpose
  (any competent entropy coder produces near-uniform output).
* :func:`add_constant_to_words` -- the Section 6.1 thought experiment
  ("is zero special?"): adding a constant to every 16-bit word permutes
  the checksum distribution without changing match probabilities.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.corpus.filesystem import Filesystem, SyntheticFile

__all__ = ["add_constant_to_words", "compress_filesystem"]


def compress_filesystem(fs, level=6):
    """A copy of ``fs`` with every file DEFLATE-compressed."""
    out = Filesystem(name=fs.name + "-compressed")
    for file in fs:
        out.add(
            SyntheticFile(
                name=file.name + ".z",
                data=zlib.compress(file.data, level),
                kind=file.kind + "+compressed",
            )
        )
    return out


def add_constant_to_words(fs, constant):
    """A copy of ``fs`` with ``constant`` added to every 16-bit word.

    Odd-length files keep their final byte unchanged.  Used to verify
    the paper's claim that zero's high frequency, not its being the
    additive identity, drives the failure rate.
    """
    constant &= 0xFFFF
    out = Filesystem(name=fs.name + "+%#06x" % constant)
    for file in fs:
        buf = np.frombuffer(file.data, dtype=np.uint8)
        even = buf.size - (buf.size % 2)
        words = buf[:even].reshape(-1, 2).astype(np.uint16)
        values = ((words[:, 0].astype(np.uint32) << 8) | words[:, 1]) + constant
        values &= 0xFFFF
        shifted = np.empty_like(words)
        shifted[:, 0] = values >> 8
        shifted[:, 1] = values & 0xFF
        data = shifted.astype(np.uint8).tobytes() + file.data[even:]
        out.add(SyntheticFile(name=file.name, data=data, kind=file.kind))
    return out
