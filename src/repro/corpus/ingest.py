"""Ingest real files from disk into a :class:`Filesystem`.

Lets the experiments run over *your* data -- the closest a user today
can get to the paper's original setup of pointing the simulator at a
live volume.  A light content/extension heuristic labels each file so
the per-kind reporting stays meaningful.
"""

from __future__ import annotations

import os
import time
import warnings

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.telemetry.core import current as _telemetry

__all__ = ["guess_kind", "ingest_paths"]

_TEXT_EXTENSIONS = {
    ".txt", ".md", ".rst", ".tex", ".html", ".htm", ".xml", ".json",
    ".yml", ".yaml", ".cfg", ".ini", ".csv",
}
_SOURCE_EXTENSIONS = {
    ".c", ".h", ".cc", ".cpp", ".hpp", ".py", ".rs", ".go", ".java",
    ".js", ".ts", ".sh", ".pl", ".mk",
}
_IMAGE_EXTENSIONS = {".pbm", ".pgm", ".ppm", ".bmp"}


def guess_kind(name, data):
    """A best-effort file-family label for reporting purposes."""
    extension = os.path.splitext(name)[1].lower()
    if extension in _SOURCE_EXTENSIONS:
        return "source"
    if extension in _TEXT_EXTENSIONS:
        return "text"
    if extension in _IMAGE_EXTENSIONS or data[:2] in (b"P4", b"P5", b"P6"):
        return "image"
    if data[:4] == b"\x7fELF" or data[:2] == b"MZ":
        return "executable"
    sample = data[:4096]
    if sample and sum(1 for b in sample if 9 <= b <= 126) / len(sample) > 0.95:
        return "text"
    if sample and sample.count(0) / len(sample) > 0.3:
        return "zero-heavy"
    return "binary"


def ingest_paths(paths, limit=10_000_000, name="user-data", min_size=1,
                 health=None):
    """Read files (or walk directories) into a :class:`Filesystem`.

    A live volume misbehaves in ways a synthetic corpus never does:
    files vanish between the directory walk and the ``open``, walks hit
    permission-denied subtrees, reads fail mid-stream.  None of that
    aborts an ingest — every unreadable entry (and every directory the
    walk could not enter) is skipped, counted, and summarized in **one**
    aggregated :class:`RuntimeWarning` at the end, and when ``health``
    (a :class:`repro.core.supervisor.RunHealth`) is supplied the skip
    count and a degradation note ride into the run's report footnotes.
    Ingestion stops once ``limit`` bytes have been collected; walk
    order is sorted for determinism.
    """
    telemetry = _telemetry()
    fs = Filesystem(name)
    total = 0
    skipped = []

    def note_skip(path, exc):
        skipped.append((str(path), exc.__class__.__name__))
        telemetry.count("corpus.ingest_skipped")

    t0 = time.perf_counter()
    with telemetry.span("corpus.ingest"):
        for path in paths:
            candidates = []
            if os.path.isdir(path):
                walk = os.walk(
                    path,
                    onerror=lambda exc: note_skip(
                        getattr(exc, "filename", None) or path, exc
                    ),
                )
                for root, dirs, names in walk:
                    dirs.sort()
                    candidates.extend(
                        os.path.join(root, n) for n in sorted(names)
                    )
            else:
                candidates.append(path)
            for candidate in candidates:
                if total >= limit:
                    break
                try:
                    with open(candidate, "rb") as handle:
                        data = handle.read(limit - total)
                except OSError as exc:
                    note_skip(candidate, exc)
                    continue
                if len(data) < min_size:
                    continue
                fs.add(
                    SyntheticFile(candidate, data, guess_kind(candidate, data))
                )
                telemetry.count("corpus.ingest_files")
                total += len(data)
            if total >= limit:
                break
    telemetry.meter("corpus.ingest_bytes", total, time.perf_counter() - t0)
    if skipped:
        _report_skips(skipped, health)
    return fs


def _report_skips(skipped, health):
    """One aggregated warning (plus the RunHealth record) per ingest."""
    preview = ", ".join(
        "%s (%s)" % entry for entry in skipped[:3]
    )
    if len(skipped) > 3:
        preview += ", ... and %d more" % (len(skipped) - 3)
    warnings.warn(
        "corpus ingest skipped %d unreadable entr%s: %s"
        % (len(skipped), "y" if len(skipped) == 1 else "ies", preview),
        RuntimeWarning,
        stacklevel=3,
    )
    if health is not None:
        health.files_skipped += len(skipped)
        health.degrade(
            "ingest skipped %d unreadable file(s)" % len(skipped)
        )
