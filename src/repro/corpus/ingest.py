"""Ingest real files from disk into a :class:`Filesystem`.

Lets the experiments run over *your* data -- the closest a user today
can get to the paper's original setup of pointing the simulator at a
live volume.  A light content/extension heuristic labels each file so
the per-kind reporting stays meaningful.
"""

from __future__ import annotations

import os
import time

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.telemetry.core import current as _telemetry

__all__ = ["guess_kind", "ingest_paths"]

_TEXT_EXTENSIONS = {
    ".txt", ".md", ".rst", ".tex", ".html", ".htm", ".xml", ".json",
    ".yml", ".yaml", ".cfg", ".ini", ".csv",
}
_SOURCE_EXTENSIONS = {
    ".c", ".h", ".cc", ".cpp", ".hpp", ".py", ".rs", ".go", ".java",
    ".js", ".ts", ".sh", ".pl", ".mk",
}
_IMAGE_EXTENSIONS = {".pbm", ".pgm", ".ppm", ".bmp"}


def guess_kind(name, data):
    """A best-effort file-family label for reporting purposes."""
    extension = os.path.splitext(name)[1].lower()
    if extension in _SOURCE_EXTENSIONS:
        return "source"
    if extension in _TEXT_EXTENSIONS:
        return "text"
    if extension in _IMAGE_EXTENSIONS or data[:2] in (b"P4", b"P5", b"P6"):
        return "image"
    if data[:4] == b"\x7fELF" or data[:2] == b"MZ":
        return "executable"
    sample = data[:4096]
    if sample and sum(1 for b in sample if 9 <= b <= 126) / len(sample) > 0.95:
        return "text"
    if sample and sample.count(0) / len(sample) > 0.3:
        return "zero-heavy"
    return "binary"


def ingest_paths(paths, limit=10_000_000, name="user-data", min_size=1):
    """Read files (or walk directories) into a :class:`Filesystem`.

    Unreadable entries are skipped; ingestion stops once ``limit``
    bytes have been collected.  Walk order is sorted for determinism.
    """
    telemetry = _telemetry()
    fs = Filesystem(name)
    total = 0
    t0 = time.perf_counter()
    with telemetry.span("corpus.ingest"):
        for path in paths:
            candidates = []
            if os.path.isdir(path):
                for root, dirs, names in os.walk(path):
                    dirs.sort()
                    candidates.extend(
                        os.path.join(root, n) for n in sorted(names)
                    )
            else:
                candidates.append(path)
            for candidate in candidates:
                if total >= limit:
                    break
                try:
                    with open(candidate, "rb") as handle:
                        data = handle.read(limit - total)
                except OSError:
                    telemetry.count("corpus.ingest_skipped")
                    continue
                if len(data) < min_size:
                    continue
                fs.add(
                    SyntheticFile(candidate, data, guess_kind(candidate, data))
                )
                telemetry.count("corpus.ingest_files")
                total += len(data)
            if total >= limit:
                break
    telemetry.meter("corpus.ingest_bytes", total, time.perf_counter() - t0)
    return fs
