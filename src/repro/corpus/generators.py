"""Generators for the file families the paper's filesystems contain.

Each generator is a function ``(rng, size) -> bytes`` taking a NumPy
``Generator`` and a byte count.  The families deliberately reproduce the
data properties the paper identifies as driving checksum behaviour --
see the module docstring of :mod:`repro.corpus`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GENERATORS", "generate"]


# ---------------------------------------------------------------------------
# English-like text (Markov chain over an embedded seed passage)
# ---------------------------------------------------------------------------

_SEED_TEXT = """\
The behaviour of checksum and cyclic redundancy check algorithms has
historically been studied under the assumption that the data fed to the
algorithms was uniformly distributed. In the real world, communications
data is rarely random. Much of the data is character data, which has a
distinct skew towards certain values, and binary data has a similarly
non random distribution of values, such as a propensity to contain long
runs of zeros. When a file system is measured over many millions of
packets, the distribution of checksum values over small cells of data
shows sharp hotspots, and the most common value occurs far more often
than a uniform model would suggest. The sum of a set of sixteen bit
values is the same regardless of the order in which the values appear,
and this is precisely the weakness that a packet splice probes. If the
replacement cells carry the same sum as the cells that were dropped,
the checksum cannot see the difference, and the corrupted packet is
delivered to the application as if nothing had happened on the wire.
"""

_MARKOV_ORDER = 2
_MARKOV_MODEL = None


def _markov_model():
    """Order-2 character Markov model over the embedded seed passage."""
    global _MARKOV_MODEL
    if _MARKOV_MODEL is None:
        text = _SEED_TEXT
        model = {}
        for i in range(len(text) - _MARKOV_ORDER):
            state = text[i : i + _MARKOV_ORDER]
            model.setdefault(state, []).append(text[i + _MARKOV_ORDER])
        _MARKOV_MODEL = {state: "".join(chars) for state, chars in model.items()}
    return _MARKOV_MODEL


_BOILERPLATE = (
    "This document is part of the measurement corpus. Redistribution and\n"
    "use in source and binary forms, with or without modification, are\n"
    "permitted provided that the above notice and this paragraph are\n"
    "duplicated in all such forms and that any documentation and other\n"
    "materials related to such distribution and use acknowledge the work.\n\n"
)


def english_text(rng, size):
    """English-like prose with realistic letter skew and correlation.

    Files open with a shared boilerplate paragraph (as README/licence
    headers do on real filesystems) and occasionally repeat an earlier
    sentence verbatim, reproducing the block-level self-similarity the
    paper's locality analysis depends on.
    """
    model = _markov_model()
    states = list(model)
    out = [_BOILERPLATE]
    produced = len(_BOILERPLATE)
    sentences = []
    current = []
    state = states[rng.integers(len(states))]
    current.append(state)
    produced += _MARKOV_ORDER
    while produced < size:
        if sentences and rng.random() < 0.002:
            repeat = sentences[int(rng.integers(len(sentences)))]
            out.append("".join(current))
            current = []
            out.append(repeat)
            produced += len(repeat)
            continue
        choices = model.get(state)
        if not choices:
            state = states[rng.integers(len(states))]
            current.append(" ")
            produced += 1
            continue
        char = choices[rng.integers(len(choices))]
        current.append(char)
        produced += 1
        state = state[1:] + char
        if char == "." and len(current) > 40:
            sentence = "".join(current)
            if len(sentences) < 32:
                sentences.append(sentence)
            out.append(sentence)
            current = []
    out.append("".join(current))
    return "".join(out).encode("ascii")[:size]


# ---------------------------------------------------------------------------
# C source code (templated, heavy on repeated idioms and indentation)
# ---------------------------------------------------------------------------

_C_HEADERS = [
    "#include <stdio.h>\n",
    "#include <stdlib.h>\n",
    "#include <string.h>\n",
    "#include <sys/types.h>\n",
    '#include "config.h"\n',
]

_C_FUNCTIONS = [
    "static int %(name)s_init(struct %(name)s *sp)\n{\n"
    "\tint i;\n\n\tif (sp == NULL)\n\t\treturn (-1);\n"
    "\tfor (i = 0; i < %(n)d; i++)\n\t\tsp->slots[i] = 0;\n"
    "\tsp->count = 0;\n\treturn (0);\n}\n\n",
    "int %(name)s_insert(struct %(name)s *sp, int value)\n{\n"
    "\tif (sp->count >= %(n)d) {\n\t\terrno = ENOSPC;\n\t\treturn (-1);\n\t}\n"
    "\tsp->slots[sp->count++] = value;\n\treturn (0);\n}\n\n",
    "static void %(name)s_dump(const struct %(name)s *sp, FILE *fp)\n{\n"
    "\tint i;\n\n\tfor (i = 0; i < sp->count; i++)\n"
    '\t\tfprintf(fp, "%%d: %%d\\n", i, sp->slots[i]);\n}\n\n',
    "struct %(name)s {\n\tint count;\n\tint slots[%(n)d];\n};\n\n",
]

_C_NAMES = ["table", "queue", "cache", "ring", "pool", "hash", "list", "heap"]


_C_LICENSE = (
    "/*\n * Copyright (c) 1990, 1993\n"
    " *\tThe Regents of the University. All rights reserved.\n"
    " *\n * Redistribution and use in source and binary forms, with or\n"
    " * without modification, are permitted provided that the following\n"
    " * conditions are met: see the accompanying file LICENSE.\n */\n\n"
)


def c_source(rng, size):
    """C source: repeated idioms, tabs, and a small identifier pool.

    Every file opens with the same licence banner and functions repeat
    verbatim within a file (as generated accessors and copied idioms do
    in real trees), giving the strong local self-similarity the paper
    measures on the SICS source volumes.
    """
    parts = [_C_LICENSE]
    parts += [_C_HEADERS[i] for i in range(int(rng.integers(2, len(_C_HEADERS))))]
    parts.append("\n")
    produced = sum(len(p) for p in parts)
    emitted = []
    while produced < size:
        if emitted and rng.random() < 0.25:
            chunk = emitted[int(rng.integers(len(emitted)))]
        else:
            name = _C_NAMES[rng.integers(len(_C_NAMES))]
            template = _C_FUNCTIONS[rng.integers(len(_C_FUNCTIONS))]
            chunk = template % {"name": name, "n": int(rng.integers(8, 128))}
            if len(emitted) < 16:
                emitted.append(chunk)
        parts.append(chunk)
        produced += len(chunk)
    return "".join(parts).encode("ascii")[:size]


# ---------------------------------------------------------------------------
# Executables (ELF-like: skewed opcode bytes, zero runs, string tables)
# ---------------------------------------------------------------------------

_OPCODES = np.array(
    [0x00, 0x48, 0x89, 0x8B, 0xE8, 0xFF, 0x0F, 0x83, 0x85, 0xC3, 0x55, 0x5D,
     0x90, 0x74, 0x75, 0xEB, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80],
    dtype=np.uint8,
)
_OPCODE_WEIGHTS = np.array(
    [20, 12, 10, 8, 5, 5, 4, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1],
    dtype=np.float64,
)
_OPCODE_WEIGHTS /= _OPCODE_WEIGHTS.sum()

_SYMBOL_PREFIXES = [b"_init", b"_fini", b"main", b"malloc", b"memcpy",
                    b"printf", b"strlen", b"sys_", b"lib_", b"do_"]


def executable(rng, size):
    """Executable-like binary: code, zero-padded sections, strings."""
    parts = [b"\x7fELF\x02\x01\x01\x00" + bytes(8)]
    produced = len(parts[0])
    while produced < size:
        section = rng.random()
        if section < 0.55:  # machine-code-like bytes
            n = int(rng.integers(256, 4096))
            code = rng.choice(_OPCODES, size=n, p=_OPCODE_WEIGHTS)
            chunk = code.tobytes()
        elif section < 0.70:  # bss / page-alignment zero run
            chunk = bytes(int(rng.integers(128, 1024)))
        else:  # string table with repeated prefixes
            names = []
            for _ in range(int(rng.integers(8, 64))):
                prefix = _SYMBOL_PREFIXES[rng.integers(len(_SYMBOL_PREFIXES))]
                names.append(prefix + b"%d" % int(rng.integers(1000)) + b"\x00")
            chunk = b"".join(names)
        parts.append(chunk)
        produced += len(chunk)
    return b"".join(parts)[:size]


# ---------------------------------------------------------------------------
# PBM/PGM black-and-white plots (Section 5.5's Fletcher-255 killer)
# ---------------------------------------------------------------------------

def pbm_plot(rng, size):
    """8-bit greymap plots whose bytes are all 0 or 255.

    Mimics the Stanford directory of RTT measurement graphs: a white
    (255) background with black (0) axes and a black measurement trace.
    Every data byte is 0 or 255, the pattern that defeats the mod-255
    Fletcher sum outright.
    """
    width = 256
    height = max(4, -(-(size - 16) // width))
    header = b"P5\n%d %d\n255\n" % (width, height)
    raster = np.full((height, width), 255, dtype=np.uint8)
    raster[:, 16] = 0  # y axis
    if height > 16:
        raster[height - 16, :] = 0  # x axis
    # A bounded random-walk trace.
    level = int(rng.integers(height // 4, 3 * height // 4)) if height > 4 else 0
    for x in range(width):
        level = int(np.clip(level + rng.integers(-2, 3), 0, height - 1))
        raster[level, x] = 0
    data = header + raster.tobytes()
    if len(data) < size:  # tiny sizes where the header dominates
        data += b"\xff" * (size - len(data))
    return data[:size]


# ---------------------------------------------------------------------------
# Hex-encoded PostScript bitmaps (Section 5.5's F-256 and TCP killer)
# ---------------------------------------------------------------------------

def hex_postscript(rng, size):
    """ASCII-hex bitmap data with power-of-two line widths.

    Each encoded line is ``2 * width`` hex digits plus a newline, so
    near-identical lines repeat exactly ``2 * width + 1`` bytes apart --
    the periodicity the paper isolates in font and solid-colour bitmaps.
    """
    width = int(2 ** rng.integers(5, 8))  # 32, 64, or 128 bytes per row
    header = b"%!PS-Adobe-2.0\n/picstr 256 string def\nimage\n"
    base_row = bytearray(b"FF" * width)
    # A couple of fixed blemishes, as in repeated glyph rows.
    for _ in range(int(rng.integers(1, 4))):
        pos = int(rng.integers(width)) * 2
        base_row[pos : pos + 2] = b"F7"
    rows = [header]
    produced = len(header)
    while produced < size:
        if rng.random() < 0.1:  # occasionally a different row
            row = bytearray(base_row)
            pos = int(rng.integers(width)) * 2
            row[pos : pos + 2] = b"00"
        else:
            row = base_row
        chunk = bytes(row) + b"\n"
        rows.append(chunk)
        produced += len(chunk)
    return b"".join(rows)[:size]


# ---------------------------------------------------------------------------
# BinHex-style encodings (64-byte lines)
# ---------------------------------------------------------------------------

_BINHEX_ALPHABET = (
    b"!\"#$%&'()*+,-012345689@ABCDEFGHIJKLMNPQRSTUVXYZ[`abcdefhijklmpqr"
)


def binhex_like(rng, size):
    """BinHex-style text: very similar 64-character lines."""
    header = b"(This file must be converted with BinHex 4.0)\n:"
    line = bytes(
        np.asarray(memoryview(_BINHEX_ALPHABET), dtype=np.uint8)[
            rng.integers(0, len(_BINHEX_ALPHABET), size=64)
        ]
    )
    parts = [header]
    produced = len(header)
    while produced < size:
        row = bytearray(line)
        for _ in range(int(rng.integers(0, 3))):  # small per-line variation
            row[int(rng.integers(64))] = _BINHEX_ALPHABET[
                int(rng.integers(len(_BINHEX_ALPHABET)))
            ]
        chunk = bytes(row) + b"\n"
        parts.append(chunk)
        produced += len(chunk)
    return b"".join(parts)[:size]


# ---------------------------------------------------------------------------
# gmon.out-style sparse profiles (Section 5.5's TCP killer)
# ---------------------------------------------------------------------------

def gmon_profile(rng, size):
    """Profiling data: mostly zero counters, sparse identical values.

    Packetizing this yields very few distinct checksums, so a large
    fraction of splices pass the Internet checksum.
    """
    entries = np.zeros(max(1, size // 2), dtype=">u2")
    hot = rng.random(entries.size) < 0.02
    values = np.asarray([1, 1, 1, 2, 2, 3, 5, 17], dtype=">u2")
    entries[hot] = values[rng.integers(0, len(values), size=int(hot.sum()))]
    header = b"gmon\x00\x01\x00\x00"
    return (header + entries.tobytes())[:size]


# ---------------------------------------------------------------------------
# Word-processor documents with 0x00 / 0xFF run separators
# ---------------------------------------------------------------------------

def wordproc(rng, size):
    """Document sections separated by ~200-byte runs of 0x00 then 0xFF."""
    parts = []
    produced = 0
    while produced < size:
        text = english_text(rng, int(rng.integers(400, 1200)))
        zeros = bytes(int(rng.integers(150, 250)))
        ones = b"\xff" * int(rng.integers(150, 250))
        chunk = text + zeros + ones
        parts.append(chunk)
        produced += len(chunk)
    return b"".join(parts)[:size]


# ---------------------------------------------------------------------------
# Zero-heavy data and controls
# ---------------------------------------------------------------------------

def zero_heavy(rng, size):
    """Sparse binary data: zero blocks with occasional records.

    Models the UNIX-filesystem optimisation the paper notes: wholly
    zero blocks are never written to disk, so sparse files read back
    as long zero runs.
    """
    parts = []
    produced = 0
    while produced < size:
        if rng.random() < 0.45:
            chunk = bytes(int(rng.integers(192, 1024)))
        else:
            chunk = rng.integers(0, 256, size=int(rng.integers(32, 256))).astype(
                np.uint8
            ).tobytes()
        parts.append(chunk)
        produced += len(chunk)
    return b"".join(parts)[:size]


def record_table(rng, size):
    """Fixed-size binary records with field-swapped near-duplicates.

    Databases, index files and araay dumps repeat a record layout with
    most bytes identical across rows; reordered rows and swapped
    fields produce cells whose bytes differ but whose 16-bit word
    *sums* agree -- the order-independence of the Internet checksum
    made flesh, and a major source of congruent-but-unequal cells.
    """
    record_len = 96  # two cells, keeping records cell-aligned
    words = rng.integers(0, 256, size=record_len).astype(np.uint8)
    base = words.reshape(-1, 2)
    parts = [b"IDX1" + bytes(44)]  # header padding to a cell boundary
    produced = len(parts[0])
    while produced < size:
        record = base.copy()
        roll = rng.random()
        if roll < 0.4:
            # Swap two 16-bit fields: different bytes, same checksum.
            i, j = rng.integers(0, record.shape[0], size=2)
            record[[i, j]] = record[[j, i]]
        elif roll < 0.6:
            # Update a counter field: a genuinely different record.
            pos = int(rng.integers(record.shape[0]))
            record[pos] = rng.integers(0, 256, size=2)
        chunk = record.tobytes()
        parts.append(chunk)
        produced += len(chunk)
    return b"".join(parts)[:size]


def log_text(rng, size):
    """Syslog-style lines: long shared prefixes, small varying fields."""
    hosts = [b"gw0", b"gw1", b"fafner", b"smeg", b"pompano"]
    parts = []
    produced = 0
    tick = 0
    while produced < size:
        tick += int(rng.integers(1, 30))
        host = hosts[int(rng.integers(len(hosts)))]
        line = b"Jul  7 04:%02d:%02d %s kernel: le0: RTT %d ms, window %d\n" % (
            (tick // 60) % 60,
            tick % 60,
            host,
            int(rng.integers(1, 400)),
            int(rng.integers(512, 32768)),
        )
        parts.append(line)
        produced += len(line)
    return b"".join(parts)[:size]


def uniform_random(rng, size):
    """Uniformly random bytes (the classical analyses' assumption)."""
    return rng.integers(0, 256, size=size).astype(np.uint8).tobytes()


GENERATORS = {
    "english": english_text,
    "c-source": c_source,
    "executable": executable,
    "pbm-plot": pbm_plot,
    "hex-postscript": hex_postscript,
    "binhex": binhex_like,
    "gmon": gmon_profile,
    "wordproc": wordproc,
    "zero-heavy": zero_heavy,
    "records": record_table,
    "log": log_text,
    "uniform": uniform_random,
}


def generate(kind, size, rng):
    """Generate ``size`` bytes of the named file family."""
    if kind not in GENERATORS:
        raise KeyError(
            "unknown generator %r; available: %s" % (kind, ", ".join(sorted(GENERATORS)))
        )
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)
    return GENERATORS[kind](rng, int(size))
