"""Filesystem profiles mirroring the paper's measured volumes.

Each profile is a weighted mix of file families plus a file-size
distribution.  The names follow the paper's "system codes" so that the
reproduced Tables 1-3 and 8-9 read like the originals:

* ``nsc*`` -- general-purpose volumes at Network Systems Corp.
* ``sics-src*`` -- source trees at SICS (C-source heavy).
* ``sics-opt`` -- the /opt volume the paper singles out for its high
  executable share and worst TCP miss rate.
* ``stanford-u1`` -- the user volume containing, among other things,
  the directory of black-and-white PBM RTT plots that defeats
  Fletcher-255.
* ``stanford-usr-local`` -- binaries plus documentation.
* ``pathological-*`` -- single-family volumes for the Section 5.5
  studies, and ``uniform`` as the classical-assumption control.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.corpus.generators import GENERATORS

__all__ = ["PROFILES", "FilesystemProfile", "build_filesystem", "profile_names"]


@dataclass(frozen=True)
class FilesystemProfile:
    """A named mix of file families.

    ``mix`` maps generator kind to weight (relative probability of the
    next file being of that kind); ``size_range`` bounds individual
    file sizes in bytes.
    """

    name: str
    mix: dict
    size_range: tuple = (2_000, 60_000)
    description: str = ""

    def __post_init__(self):
        unknown = set(self.mix) - set(GENERATORS)
        if unknown:
            raise ValueError("unknown generator kinds: %s" % sorted(unknown))
        if not self.mix:
            raise ValueError("profile mix must not be empty")


PROFILES = {
    profile.name: profile
    for profile in [
        # Weights are byte-share weights; the pathological families get
        # directory-sized fractions, as on the measured volumes, which
        # places each profile's TCP miss rate inside the paper's
        # 0.008%-0.22% band (see EXPERIMENTS.md for the calibration).
        FilesystemProfile(
            "nsc05",
            {"english": 40, "c-source": 25, "log": 15, "executable": 15,
             "zero-heavy": 2, "gmon": 0.05},
            description="clean text/source volume (low end of the band)",
        ),
        FilesystemProfile(
            "nsc11",
            {"executable": 45, "zero-heavy": 12, "english": 15, "wordproc": 5,
             "gmon": 0.3},
            description="binary-heavy volume",
        ),
        FilesystemProfile(
            "nsc23",
            {"english": 25, "log": 30, "zero-heavy": 25, "wordproc": 8,
             "gmon": 1.0},
            description="logs and profiling output (high end of the band)",
        ),
        FilesystemProfile(
            "nsc25",
            {"c-source": 45, "english": 25, "executable": 15, "binhex": 10,
             "zero-heavy": 4},
            description="development volume",
        ),
        FilesystemProfile(
            "sics-src1",
            {"c-source": 60, "english": 10, "zero-heavy": 5, "gmon": 0.9},
            description="source tree",
        ),
        FilesystemProfile(
            "sics-src2",
            {"c-source": 55, "log": 10, "zero-heavy": 7, "gmon": 1.2},
            description="source tree",
        ),
        FilesystemProfile(
            "sics-opt",
            {"executable": 50, "zero-heavy": 25, "english": 8, "wordproc": 6,
             "gmon": 1.6},
            description="the high-executable /opt volume (worst TCP miss rate)",
        ),
        FilesystemProfile(
            "sics-solaris",
            {"executable": 50, "zero-heavy": 15, "english": 15, "c-source": 10,
             "gmon": 0.25},
            description="OS install image",
        ),
        FilesystemProfile(
            "stanford-u1",
            {"english": 30, "c-source": 18, "executable": 12, "log": 8,
             "records": 5, "wordproc": 2, "zero-heavy": 1, "binhex": 3,
             "pbm-plot": 0.3, "hex-postscript": 0.25, "gmon": 0.15},
            description="user volume with the PBM RTT-plot directory",
        ),
        FilesystemProfile(
            "stanford-usr-local",
            {"executable": 50, "english": 20, "c-source": 12, "binhex": 8,
             "zero-heavy": 2, "gmon": 0.35},
            description="/usr/local binaries and docs",
        ),
        FilesystemProfile(
            "pathological-pbm",
            {"pbm-plot": 1},
            description="Section 5.5: all bytes 0/255 (Fletcher-255 killer)",
        ),
        FilesystemProfile(
            "pathological-hexps",
            {"hex-postscript": 1},
            description="Section 5.5: hex bitmaps with power-of-two widths",
        ),
        FilesystemProfile(
            "pathological-gmon",
            {"gmon": 1},
            description="Section 5.5: sparse profile counters (TCP killer)",
        ),
        FilesystemProfile(
            "pathological-binhex",
            {"binhex": 1},
            description="Section 5.5: 64-byte-period encoded text",
        ),
        FilesystemProfile(
            "uniform",
            {"uniform": 1},
            description="uniformly random control",
        ),
    ]
}


def profile_names():
    """Sorted names of every built-in filesystem profile."""
    return sorted(PROFILES)


def _stable_profile_seed(name):
    """A deterministic 31-bit seed derived from the profile name."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) & 0x7FFFFFFF
    return value


def build_filesystem(profile, total_bytes, seed=0):
    """Materialise a profile into a deterministic :class:`Filesystem`.

    Each file kind receives a byte budget proportional to its weight
    (so directory-sized fractions like the PBM plots are always
    present, as they were on the measured volumes), and files of
    profile-distributed sizes are generated against each budget.  The
    same ``(profile, total_bytes, seed)`` always produces the same
    bytes.
    """
    if isinstance(profile, str):
        profile = PROFILES[profile]
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _stable_profile_seed(profile.name)])
    )
    kinds = sorted(profile.mix)
    weights = np.array([profile.mix[k] for k in kinds], dtype=np.float64)
    budgets = weights / weights.sum() * total_bytes
    low, high = profile.size_range

    fs = Filesystem(name=profile.name)
    index = 0
    for kind, budget in zip(kinds, budgets):
        produced = 0
        while produced < budget:
            size = int(rng.integers(low, high))
            size = max(512, min(size, int(budget) - produced + 512))
            data = GENERATORS[kind](rng, size)
            fs.add(
                SyntheticFile(
                    name="%s/file%04d.%s" % (fs.name, index, kind),
                    data=data,
                    kind=kind,
                )
            )
            produced += len(data)
            index += 1
    return fs
