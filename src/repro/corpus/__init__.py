"""Synthetic "real data" corpus standing in for the paper's filesystems.

The paper ran over real UNIX filesystems at NSC, SICS and Stanford.
Those bytes are not available, so this package generates deterministic
synthetic filesystems that reproduce the *statistical* properties the
checksums react to:

* skewed byte-value distributions (English text, C source),
* long runs of 0x00 and 0xFF (zero-optimised files, word-processor
  documents, sparse profiling data),
* strong local correlation and repetition (Markov text, repeated code
  idioms, bitmap scan lines),
* the specific pathological periodicities of Section 5.5 (black-and-
  white PBM bitmaps, hex-encoded PostScript bitmaps with power-of-two
  line widths, BinHex-style 64-byte lines, gmon.out-style profiles).

See DESIGN.md for the substitution argument.  Everything is seeded and
bit-for-bit reproducible.
"""

from repro.corpus.filesystem import Filesystem, SyntheticFile
from repro.corpus.generators import GENERATORS, generate
from repro.corpus.profiles import (
    PROFILES,
    FilesystemProfile,
    build_filesystem,
    profile_names,
)
from repro.corpus.transforms import add_constant_to_words, compress_filesystem

__all__ = [
    "Filesystem",
    "FilesystemProfile",
    "GENERATORS",
    "PROFILES",
    "SyntheticFile",
    "add_constant_to_words",
    "build_filesystem",
    "compress_filesystem",
    "generate",
    "profile_names",
]
