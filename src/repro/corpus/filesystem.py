"""File and filesystem containers for the synthetic corpus."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Filesystem", "SyntheticFile"]


@dataclass(frozen=True)
class SyntheticFile:
    """One synthetic file: a name, its bytes, and its generator kind."""

    name: str
    data: bytes
    kind: str

    @property
    def size(self):
        return len(self.data)


@dataclass
class Filesystem:
    """A named collection of synthetic files (one paper "system code")."""

    name: str
    files: list = field(default_factory=list)

    def add(self, file):
        self.files.append(file)

    def __iter__(self):
        return iter(self.files)

    def __len__(self):
        return len(self.files)

    @property
    def total_bytes(self):
        return sum(f.size for f in self.files)

    def kinds(self):
        """Byte counts per generator kind, for reporting."""
        counts = {}
        for file in self.files:
            counts[file.kind] = counts.get(file.kind, 0) + file.size
        return counts

    def concatenated(self):
        """All file bytes joined; used by distribution analyses."""
        return b"".join(f.data for f in self.files)
