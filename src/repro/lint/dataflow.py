"""Forward taint/flow framework over the project call graph.

The determinism rules of PR 4 (REP101/REP102) flag a *direct* call to
``time.time()`` or ``random.choice()`` inside a deterministic package.
What they cannot see is the same value laundered through a helper::

    def now():                    # some utility module
        return time.time()

    def to_dict(counters):        # a serializer in repro.experiments
        return {"at": now()}      # wall clock reaches a result path

This module computes, for every function in the scanned project, a
**summary**: which taint kinds its return value may carry, and which
of its parameters flow through to its return.  Summaries compose over
the call graph -- the analysis visits strongly-connected components
callees-first (cycles iterate to a fixpoint), so the whole-program
pass stays linear in the size of the call graph.

Taint kinds are small strings (``"entropy"``, ``"wallclock"``); each
carried taint remembers an :class:`Origin` -- the source expression
and the chain of project functions it travelled through -- so a rule
can say *where* the wall clock entered, not just that it did.

Sanitizers clear taint: a call whose callee name carries one of the
configured sanitizer markers returns clean regardless of its
arguments.
"""

from __future__ import annotations

import ast

from repro.lint.engine import dotted_name

__all__ = [
    "DataflowAnalysis",
    "ENTROPY",
    "Origin",
    "Summary",
    "WALLCLOCK",
    "taint_of_call",
]

#: Taint kinds the shipped source tables produce.
ENTROPY = "entropy"
WALLCLOCK = "wallclock"

#: ``random.<fn>`` module-level draws from the unseeded global RNG.
_RANDOM_FUNCTIONS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "getrandbits", "randbytes", "betavariate",
    "gauss", "normalvariate", "expovariate", "lognormvariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
}

#: Two-segment chain tails that are entropy no matter the arguments.
_ENTROPY_TAILS = {
    "os.urandom": "os.urandom()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.randbits": "secrets.randbits()",
    "secrets.randbelow": "secrets.randbelow()",
    "secrets.choice": "secrets.choice()",
}

#: Chain tails that read the wall clock (2- and 3-segment forms).
_WALLCLOCK_TAILS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "date.today": "date.today()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


def taint_of_call(call):
    """``(kind, description)`` if ``call`` is a taint source, else None.

    The tables mirror REP101/REP102's: module-level ``random.<fn>``,
    machine entropy (``os.urandom``, ``uuid4``, ``secrets``), argless
    seedable constructors (``random.Random()``, ``default_rng()``),
    and wall-clock reads.
    """
    chain = dotted_name(call.func)
    if chain is None:
        return None
    parts = chain.split(".")
    for depth in (3, 2):
        tail = ".".join(parts[-depth:])
        if tail in _WALLCLOCK_TAILS:
            return (WALLCLOCK, _WALLCLOCK_TAILS[tail])
    tail2 = ".".join(parts[-2:])
    if tail2 in _ENTROPY_TAILS:
        return (ENTROPY, _ENTROPY_TAILS[tail2])
    if len(parts) == 2 and parts[0] == "random" \
            and parts[1] in _RANDOM_FUNCTIONS:
        return (ENTROPY, "random.%s()" % parts[1])
    if (tail2 == "random.Random" or parts[-1] == "default_rng") \
            and not call.args and not call.keywords:
        return (ENTROPY, "%s() without a seed" % chain)
    return None


class Origin:
    """Where a taint came from and the project functions it crossed."""

    __slots__ = ("description", "via", "node")

    def __init__(self, description, via=(), node=None):
        self.description = description
        #: qids of project functions the value flowed through.
        self.via = tuple(via)
        #: The AST node (in the function under analysis) that
        #: introduced the taint there -- findings anchor here.
        self.node = node

    def through(self, qid, node):
        """A copy extended by one call-graph hop."""
        return Origin(self.description, (*self.via, qid), node)

    def route(self):
        """Human-readable ``via a -> b`` suffix, or ''."""
        if not self.via:
            return ""
        return " via %s" % " -> ".join(
            "%s.%s" % qid for qid in self.via
        )


class Summary:
    """What one function does with taint, independent of its callers."""

    __slots__ = ("returns", "passthrough")

    def __init__(self):
        #: kind -> Origin: taint the return value may carry when every
        #: argument is clean.
        self.returns = {}
        #: indices of parameters whose taint reaches the return value.
        self.passthrough = set()

    def merge_return(self, kind, origin):
        if kind not in self.returns:
            self.returns[kind] = origin
            return True
        return False

    def merge_passthrough(self, index):
        if index not in self.passthrough:
            self.passthrough.add(index)
            return True
        return False


#: Marker prefix for symbolic parameter taint inside the evaluator.
_PARAM = "param:"


class DataflowAnalysis:
    """Per-function taint summaries over a :class:`CallGraph`."""

    def __init__(self, callgraph, sanitizer_markers=()):
        self.callgraph = callgraph
        self.sanitizers = tuple(sanitizer_markers)
        self._summaries = {}
        self._build()

    def summary(self, qid):
        """The :class:`Summary` for a project function (or None)."""
        return self._summaries.get(qid)

    # -- summary construction ----------------------------------------------

    def _build(self):
        for component in self.callgraph.sccs():
            for qid in component:
                self._summaries.setdefault(qid, Summary())
            # Mutual recursion iterates inside the component; the
            # domain is finite (kinds x params) so this converges.
            changed = True
            while changed:
                changed = False
                for qid in component:
                    record = self.callgraph.function(qid)
                    if record is None:
                        continue
                    if self._summarize(record):
                        changed = True

    def _summarize(self, record):
        summary = self._summaries[record.qid]
        env = {
            name: {_PARAM + str(i): Origin("parameter %r" % name)}
            for i, name in enumerate(record.params)
        }
        changed = False
        for taints in self._return_taints(record, env):
            for kind, origin in taints.items():
                if kind.startswith(_PARAM):
                    if summary.merge_passthrough(int(kind[len(_PARAM):])):
                        changed = True
                elif summary.merge_return(kind, origin):
                    changed = True
        return changed

    def function_env(self, record):
        """Final variable-taint environment of ``record``'s body.

        Parameters start *clean* (their taint is the caller's
        problem), so anything tainted in the result definitely traces
        back to a source reached from this body.  Rules use this with
        :meth:`expr_taint` to judge call arguments at sink sites.
        """
        env = {}
        results = []
        for _ in range(2):
            self._exec_block(record, record.node.body, env, results)
        return env

    def _return_taints(self, record, env):
        """Taint sets of every return expression in ``record``."""
        results = []
        # Two passes so loop-carried assignments stabilise.
        for _ in range(2):
            results = []
            self._exec_block(record, record.node.body, env, results)
        return results

    def _exec_block(self, record, body, env, results):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are summarised separately
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    results.append(
                        self.expr_taint(record, stmt.value, env))
                continue
            if isinstance(stmt, ast.Assign):
                taint = self.expr_taint(record, stmt.value, env)
                for target in stmt.targets:
                    self._bind(target, taint, env)
                continue
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target,
                           self.expr_taint(record, stmt.value, env), env)
                continue
            if isinstance(stmt, ast.AugAssign):
                taint = self.expr_taint(record, stmt.value, env)
                if isinstance(stmt.target, ast.Name):
                    merged = dict(env.get(stmt.target.id, {}))
                    merged.update(taint)
                    env[stmt.target.id] = merged
                continue
            # Compound statements: walk nested bodies with the shared
            # env (flow-insensitive join over branches).
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if nested:
                    self._exec_block(record, nested, env, results)
            for handler in getattr(stmt, "handlers", []):
                self._exec_block(record, handler.body, env, results)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(stmt.target,
                           self.expr_taint(record, stmt.iter, env), env)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind(
                            item.optional_vars,
                            self.expr_taint(
                                record, item.context_expr, env),
                            env)

    @staticmethod
    def _bind(target, taint, env):
        if isinstance(target, ast.Name):
            env[target.id] = dict(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                DataflowAnalysis._bind(element, taint, env)
        # Attribute/Subscript stores: dropped (objects not modelled).

    # -- expression evaluation ----------------------------------------------

    def expr_taint(self, record, expr, env):
        """``{kind: Origin}`` for ``expr`` under ``env``."""
        if isinstance(expr, ast.Constant):
            return {}
        if isinstance(expr, ast.Name):
            return dict(env.get(expr.id, {}))
        if isinstance(expr, ast.Lambda):
            return {}
        if isinstance(expr, ast.Call):
            return self._call_taint(record, expr, env)
        if isinstance(expr, ast.Attribute):
            # ``x.attr`` on a tainted receiver stays tainted.
            return self.expr_taint(record, expr.value, env)
        if isinstance(expr, (ast.NamedExpr,)):
            taint = self.expr_taint(record, expr.value, env)
            self._bind(expr.target, taint, env)
            return taint
        # Generic union over child expressions (BinOp, BoolOp,
        # Compare, Subscript, containers, f-strings, IfExp, ...).
        taint = {}
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                for kind, origin in self.expr_taint(
                        record, child, env).items():
                    taint.setdefault(kind, origin)
            elif isinstance(child, (ast.comprehension,)):
                for kind, origin in self.expr_taint(
                        record, child.iter, env).items():
                    taint.setdefault(kind, origin)
            elif isinstance(child, ast.keyword):
                for kind, origin in self.expr_taint(
                        record, child.value, env).items():
                    taint.setdefault(kind, origin)
        return taint

    def _call_taint(self, record, call, env):
        source = taint_of_call(call)
        if source is not None:
            kind, description = source
            return {kind: Origin(description, node=call)}

        chain = dotted_name(call.func) or ""
        leaf = chain.rsplit(".", 1)[-1].lower()
        if any(marker in leaf for marker in self.sanitizers):
            return {}

        arg_taints = []
        for arg in call.args:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append(self.expr_taint(record, node, env))
        keyword_taint = {}
        for keyword in call.keywords:
            for kind, origin in self.expr_taint(
                    record, keyword.value, env).items():
                keyword_taint.setdefault(kind, origin)

        target = self.callgraph.resolve_call(
            record.module, call, class_name=record.class_name)
        if target is not None and target in self._summaries:
            summary = self._summaries[target]
            taint = {}
            for kind, origin in summary.returns.items():
                taint[kind] = origin.through(target, call)
            for index in summary.passthrough:
                if index < len(arg_taints):
                    for kind, origin in arg_taints[index].items():
                        taint.setdefault(
                            kind, origin if origin.node is not None
                            else Origin(origin.description,
                                        origin.via, call))
            return taint

        # Unknown/external callee: assume it transforms its inputs
        # (str(x), round(x), x.isoformat() all preserve taint).
        taint = {}
        if isinstance(call.func, ast.Attribute):
            for kind, origin in self.expr_taint(
                    record, call.func.value, env).items():
                taint.setdefault(kind, origin)
        for arg_taint in arg_taints:
            for kind, origin in arg_taint.items():
                taint.setdefault(kind, origin)
        for kind, origin in keyword_taint.items():
            taint.setdefault(kind, origin)
        return taint
