"""The :class:`Finding` record every rule emits.

A finding is one violation of one rule at one source location.  The
``snippet`` (the stripped source line) rides along so that baseline
fingerprints survive pure line-number drift: inserting a docstring
above a violation must not un-baseline it.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities, strongest first.
SEVERITIES = ("error", "warning")


@dataclass
class Finding:
    """One rule violation at one location."""

    #: Rule identifier (``"REP101"``).
    rule: str
    #: ``"error"`` or ``"warning"``.
    severity: str
    #: Path of the offending file, POSIX-style, relative to scan root.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Human-readable description of the violation.
    message: str
    #: The stripped source line (fingerprint material).
    snippet: str = ""
    #: True once matched against the committed baseline.
    baselined: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                "severity must be one of %s, got %r"
                % (", ".join(SEVERITIES), self.severity)
            )

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def fingerprint(self, occurrence=0):
        """Stable identity for baseline matching.

        Deliberately excludes the line number: the fingerprint is the
        rule, the file, the source text of the offending line, and an
        occurrence index to disambiguate identical lines in one file.
        """
        material = "\x1f".join(
            [self.rule, self.path, self.snippet, str(occurrence)]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def location(self):
        return "%s:%d:%d" % (self.path, self.line, self.col + 1)

    # -- serialization (JSON reporter round-trip) --------------------------

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, payload):
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown Finding fields: %s" % ", ".join(sorted(unknown))
            )
        return cls(**payload)
