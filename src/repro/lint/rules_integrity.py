"""Crash-consistency and protocol-conformance rules: REP401-404, REP501.

REP401 guards the store's durability contract: an ``os.replace`` into
place is only crash-safe if the file contents were fsynced *before*
the rename and the parent directory entry is fsynced *after* it --
otherwise a power cut can resurrect a half-written object or forget a
fully-written one ever had a name.

REP402 guards the checkpoint journal's torn-write contract: journal
modules exist so an interrupted sweep can resume from its last shard
boundary, which only holds if *every* write they perform is the
all-or-nothing ``atomic_write`` discipline -- one raw ``open(...,
"wb")`` or ``Path.write_bytes`` and a kill mid-write leaves a torn
checkpoint that silently discards hours of completed shards.

REP403 guards the store's verified-read contract: the backend split
moved frame storage behind an interface, and every *payload-returning*
``get`` method on a store-layer class must re-verify the integrity
trailer (or delegate to a method that does) before handing bytes out
-- a backend that returns raw stored bytes from a payload path
silently reintroduces the undetected-corruption failure mode the whole
subsystem exists to prevent.  Methods whose names mark them as
frame-level (``get_frame``) are the deliberate exception: they return
trailer-carrying bytes for the caller's own unframe boundary.

REP404 guards the store's retry discipline: fault handling lives in
``repro.store.resilience.RetryPolicy`` (seeded backoff, attempt
budgets, deadlines, telemetry), so a hand-rolled ``for _ in range(2)``
loop that swallows transport errors and retries is a policy fork --
its retries are invisible to telemetry, unbounded by the request
deadline, and jittered by nothing, which silently breaks the
determinism argument the chaos tests rely on.

REP501 statically re-checks what the runtime conformance tests check
dynamically: every algorithm registered in ``checksums.registry``
defines the full ChecksumAlgorithm surface (compute/field/verify/
width/name), and any literal mask agrees with the literal width --
the exact width/modulus slip Koopman's checksum papers warn silently
invalidates error-detection measurements.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, dotted_name, register

__all__ = [
    "FsyncOrderedRenameRule",
    "HandRolledRetryRule",
    "JournalAtomicWriteRule",
    "RegistryConformanceRule",
    "VerifiedReadRule",
]

_RENAMES = {"os.rename", "os.replace"}


@register
class FsyncOrderedRenameRule(Rule):
    """REP401: every store rename is fsync-ordered."""

    id = "REP401"
    title = "unfsynced-rename"
    severity = "error"
    category = "crash-consistency"
    invariant = (
        "Every os.rename/os.replace under repro.store is preceded by "
        "an fsync of the file and followed by an fsync of the parent "
        "directory, so objects survive power loss whole-or-absent."
    )

    def check(self, module, ctx):
        if not ctx.config.is_store(module.name):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, func)

    def _check_function(self, module, func):
        calls = [
            node for node in ast.walk(func)
            if isinstance(node, ast.Call)
        ]
        renames = [
            node for node in calls
            if (dotted_name(node.func) or "") in _RENAMES
        ]
        if not renames:
            return
        fsync_lines = [
            node.lineno for node in calls
            if (dotted_name(node.func) or "").endswith("os.fsync")
            or (dotted_name(node.func) or "") == "os.fsync"
        ]
        dirsync_lines = [
            node.lineno for node in calls
            if self._is_dirsync(node)
        ]
        for rename in renames:
            missing = []
            if not any(line <= rename.lineno for line in fsync_lines):
                missing.append(
                    "no os.fsync of the written file before the rename"
                )
            if not any(line >= rename.lineno for line in dirsync_lines):
                missing.append(
                    "no parent-directory fsync after the rename"
                )
            if missing:
                chain = dotted_name(rename.func)
                yield self.finding(
                    module, rename,
                    "%s() is not crash-consistent: %s" % (
                        chain, "; ".join(missing),
                    ),
                )

    @staticmethod
    def _is_dirsync(node):
        """A call whose name marks it as a directory fsync helper."""
        chain = dotted_name(node.func) or ""
        leaf = chain.rsplit(".", 1)[-1].lower()
        return "fsync" in leaf and "dir" in leaf


#: Call chains that mutate the filesystem directly (REP402).
_RAW_WRITE_CALLS = {"os.write", "os.rename", "os.replace", "os.truncate"}

#: Attribute leaves that write through a file/path object (REP402).
_RAW_WRITE_ATTRS = {"write_bytes", "write_text"}

#: ``open()`` mode characters that imply mutation (REP402).
_WRITE_MODE_CHARS = set("wax+")


@register
class JournalAtomicWriteRule(Rule):
    """REP402: journal modules write only through the atomic helper."""

    id = "REP402"
    title = "unjournaled-checkpoint-write"
    severity = "error"
    category = "crash-consistency"
    invariant = (
        "Every filesystem write in a checkpoint-journal module routes "
        "through the store's atomic_write helper (write, fsync, "
        "rename, directory fsync), so an interrupt can tear a "
        "checkpoint file in no kill window."
    )

    def check(self, module, ctx):
        if not ctx.config.is_journal(module.name):
            return
        yield from self._scan(module, module.tree.body, exempt=False)

    def _scan(self, module, body, exempt):
        """Walk statements, tracking whether an atomic helper encloses us.

        A function whose name marks it as the atomic-write discipline
        itself (``atomic_write``, ``_atomic_replace``, ...) is the one
        place raw write APIs are legitimate -- everything else in a
        journal module must call the helper instead of reimplementing
        (or worse, skipping) it.
        """
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    module, node.body,
                    exempt or "atomic" in node.name.lower(),
                )
                continue
            if isinstance(node, ast.ClassDef):
                yield from self._scan(module, node.body, exempt)
                continue
            if exempt:
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    message = self._raw_write(call)
                    if message:
                        yield self.finding(module, call, message)

    def _raw_write(self, call):
        """Why ``call`` is a raw (non-atomic) write, or None."""
        chain = dotted_name(call.func) or ""
        leaf = chain.rsplit(".", 1)[-1]
        if chain in _RAW_WRITE_CALLS:
            return (
                "%s() bypasses the atomic_write discipline; a kill "
                "mid-call tears the checkpoint" % chain
            )
        if leaf in _RAW_WRITE_ATTRS:
            return (
                ".%s() writes the checkpoint in place; route the bytes "
                "through atomic_write so readers see old-or-new, never "
                "torn" % leaf
            )
        if leaf == "open":
            mode = self._open_mode(call)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                return (
                    "open(..., %r) writes the checkpoint in place; "
                    "route the bytes through atomic_write instead" % mode
                )
        return None

    @staticmethod
    def _open_mode(call):
        """The literal mode string of an ``open`` call, or None."""
        node = None
        if len(call.args) >= 2:
            node = call.args[1]
        else:
            for keyword in call.keywords:
                if keyword.arg == "mode":
                    node = keyword.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None


@register
class VerifiedReadRule(Rule):
    """REP403: store read paths verify the integrity trailer."""

    id = "REP403"
    title = "unverified-store-read"
    severity = "error"
    category = "crash-consistency"
    invariant = (
        "Every payload-returning get method on a store-layer class "
        "(suffix Backend/Store/Cache/Client under repro.store) calls "
        "an unframe/verify helper or delegates to a get method that "
        "does, so raw stored bytes never leave the store unverified."
    )

    def check(self, module, ctx):
        if not ctx.config.is_store(module.name):
            return
        for class_def in ast.walk(module.tree):
            if not isinstance(class_def, ast.ClassDef):
                continue
            if not ctx.config.is_verified_read_class(class_def.name):
                continue
            for func in class_def.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if not self._is_payload_get(ctx.config, func.name):
                    continue
                if not self._verifies(ctx.config, func):
                    yield self.finding(
                        module, func,
                        "%s.%s() returns stored bytes without verifying "
                        "the integrity trailer: call unframe_object/"
                        "verify_frame (or delegate to a get method that "
                        "does), or mark the method frame-level by naming "
                        "it *_frame" % (class_def.name, func.name),
                    )

    @staticmethod
    def _is_payload_get(config, name):
        """True for public payload-returning get methods.

        Underscore-prefixed hooks are reached only through the counted
        public methods, and names carrying an exempt marker
        (``get_frame``) return trailer-carrying bytes by design.
        """
        if name.startswith("_"):
            return False
        if name != "get" and not name.startswith("get_"):
            return False
        lowered = name.lower()
        return not any(
            marker in lowered
            for marker in config.verified_read_exempt_markers
        )

    def _verifies(self, config, func):
        """True if ``func`` verifies, or delegates to a checked getter."""
        for call in ast.walk(func):
            if not isinstance(call, ast.Call):
                continue
            chain = dotted_name(call.func) or ""
            leaf = chain.rsplit(".", 1)[-1].lower()
            if any(marker in leaf for marker in config.verify_helper_markers):
                return True
            if self._is_payload_get(config, leaf):
                # Delegation to another payload get method -- that
                # callee is itself held to this rule (get_frame and
                # friends deliberately do NOT count).
                return True
        return False


#: Exception leaves whose swallow-and-retry marks a hand-rolled retry
#: loop (REP404): the transport/OSError family the RetryPolicy owns.
_TRANSPORT_EXCEPTION_LEAVES = {
    "OSError", "IOError", "EnvironmentError", "ConnectionError",
    "ConnectionResetError", "ConnectionRefusedError", "TimeoutError",
    "timeout", "HTTPException", "RemoteStoreError",
}


@register
class HandRolledRetryRule(Rule):
    """REP404: store retries delegate to resilience.RetryPolicy."""

    id = "REP404"
    title = "hand-rolled-retry"
    severity = "error"
    category = "resilience"
    invariant = (
        "Every except-and-retry loop under repro.store delegates to "
        "resilience.RetryPolicy (no hand-rolled for-range loops that "
        "swallow transport errors and loop), so retries are seeded, "
        "budgeted, deadline-bounded, and telemetry-counted."
    )

    def check(self, module, ctx):
        if not ctx.config.is_store(module.name):
            return
        if ctx.config.is_resilience(module.name):
            # The policy engine is the one legitimate implementation
            # of the loop everything else must delegate to.
            return
        for loop in ast.walk(module.tree):
            if not isinstance(loop, ast.For):
                continue
            if not self._is_counted(loop.iter):
                continue
            if self._swallows_transport_error(loop):
                yield self.finding(
                    module, loop,
                    "hand-rolled retry loop (for over range swallowing "
                    "a transport error): delegate to repro.store."
                    "resilience.RetryPolicy.run() so the retry is "
                    "seeded, budgeted, and telemetry-counted",
                )

    @staticmethod
    def _is_counted(node):
        """True for ``range(...)`` iterables (the attempt-budget shape)."""
        return isinstance(node, ast.Call) \
            and (dotted_name(node.func) or "") == "range"

    def _swallows_transport_error(self, loop):
        """True if the loop body catches the OSError family, no re-raise."""
        for node in ast.walk(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not self._catches_transport(handler.type):
                    continue
                raises = any(
                    isinstance(inner, ast.Raise)
                    for stmt in handler.body
                    for inner in ast.walk(stmt)
                )
                if not raises:
                    return True
        return False

    @staticmethod
    def _catches_transport(node):
        if node is None:
            return True  # a bare except swallows OSError too
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        for element in elements:
            chain = dotted_name(element) or ""
            if chain.rsplit(".", 1)[-1] in _TRANSPORT_EXCEPTION_LEAVES:
                return True
        return False


@register
class RegistryConformanceRule(Rule):
    """REP501: registered algorithms satisfy the protocol, statically."""

    id = "REP501"
    title = "registry-protocol-conformance"
    severity = "error"
    category = "protocol"
    # Resolves registered classes across modules (Project.get), so its
    # result is a function of the whole scan, not one file: project
    # scope keeps it out of the per-file incremental cache.
    scope = "project"
    invariant = (
        "Every algorithm in checksums.registry statically defines "
        "compute/field/verify/width/name, and a literal mask always "
        "equals (1 << width) - 1."
    )

    def check(self, module, ctx):
        if not ctx.config.is_registry(module.name):
            return
        factories = self._find_factories(module.tree)
        if factories is None:
            yield self.finding(
                module, module.tree,
                "registry module defines no _FACTORIES dict to check",
            )
            return
        imports = self._import_map(module.tree)
        for key_node, value_node in zip(factories.keys, factories.values):
            entry = self._literal(key_node) or "<dynamic>"
            class_name = self._factory_class(value_node)
            if class_name is None:
                yield self.finding(
                    module, value_node,
                    "factory for %r is not statically resolvable to a "
                    "class; register a class or a lambda returning a "
                    "direct constructor call" % entry,
                    severity="warning",
                )
                continue
            yield from self._check_class(
                module, ctx, value_node, entry, class_name, imports,
            )

    # -- registry parsing --------------------------------------------------

    @staticmethod
    def _find_factories(tree):
        names = ("_FACTORIES", "FACTORIES")
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in names \
                            and isinstance(node.value, ast.Dict):
                        return node.value
            elif isinstance(node, ast.AnnAssign):
                # Typed form: ``_FACTORIES: Dict[str, ...] = {...}``.
                if isinstance(node.target, ast.Name) \
                        and node.target.id in names \
                        and isinstance(node.value, ast.Dict):
                    return node.value
        return None

    @staticmethod
    def _literal(node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    @staticmethod
    def _factory_class(node):
        """The class name a factory expression constructs, or None."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
            func = node.body.func
            if isinstance(func, ast.Name):
                return func.id
        return None

    @staticmethod
    def _import_map(tree):
        """Imported name -> defining module (from-imports only)."""
        mapping = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    mapping[alias.asname or alias.name] = node.module
        return mapping

    # -- class resolution and member collection ----------------------------

    def _check_class(self, module, ctx, node, entry, class_name, imports):
        config = ctx.config
        class_def, home = self._resolve_class(
            module, ctx, class_name, imports,
        )
        if class_def is None:
            if class_name in imports and ctx.project.get(
                    imports[class_name]) is None:
                return  # defined outside the scanned tree; not checkable
            yield self.finding(
                module, node,
                "registered class %r for %r not found in the scanned "
                "sources" % (class_name, entry),
                severity="warning",
            )
            return
        members = self._class_members(class_def, home)
        missing = [
            name for name in (*config.protocol_methods,
                              *config.protocol_attributes)
            if name not in members
        ]
        if missing:
            yield self.finding(
                module, node,
                "algorithm %r (class %s) does not define required "
                "protocol member(s): %s" % (
                    entry, class_name, ", ".join(missing),
                ),
            )
        yield from self._check_mask(module, node, entry, class_name, members)

    def _resolve_class(self, module, ctx, class_name, imports):
        """``(ClassDef, home ModuleInfo)`` or ``(None, None)``."""
        # Same-module definition first (fixtures, self-registering code).
        for candidate in module.tree.body:
            if isinstance(candidate, ast.ClassDef) \
                    and candidate.name == class_name:
                return candidate, module
        home_name = imports.get(class_name)
        if home_name is None:
            return None, None
        home = ctx.project.get(home_name)
        if home is None:
            return None, None
        try:
            tree = home.tree
        except SyntaxError:
            return None, None
        for candidate in tree.body:
            if isinstance(candidate, ast.ClassDef) \
                    and candidate.name == class_name:
                return candidate, home
        return None, None

    def _class_members(self, class_def, home):
        """name -> literal value (or True) for the class's members.

        Includes methods, class attributes, ``self.X = ...``
        assignments in any method, and members inherited from base
        classes defined in the same module (``_SuffixCode`` style
        mixins).
        """
        members = {}
        for base in class_def.bases:
            if isinstance(base, ast.Name) and home is not None:
                for candidate in home.tree.body:
                    if isinstance(candidate, ast.ClassDef) \
                            and candidate.name == base.id:
                        members.update(
                            self._class_members(candidate, home)
                        )
        for node in class_def.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members[node.name] = True
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Assign):
                        targets = stmt.targets
                        value = stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        # ``self.width: int = spec.width`` in __init__.
                        targets = [stmt.target]
                        value = stmt.value
                    else:
                        continue
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            members[target.attr] = self._const(value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        members[target.id] = self._const(node.value)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                members[node.target.id] = self._const(node.value)
        return members

    @staticmethod
    def _const(node):
        """The literal int value of an expression, else True (present)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        return True

    @staticmethod
    def _is_literal_int(value):
        # ``True`` is the "present but not literal" sentinel from
        # ``_const`` and must not be mistaken for the integer 1.
        return isinstance(value, int) and not isinstance(value, bool)

    def _check_mask(self, module, node, entry, class_name, members):
        width = members.get("width")
        if not self._is_literal_int(width):
            return
        for mask_name in ("mask", "_mask", "MASK", "_MASK"):
            mask = members.get(mask_name)
            if self._is_literal_int(mask) and mask != (1 << width) - 1:
                yield self.finding(
                    module, node,
                    "algorithm %r (class %s): literal %s 0x%X disagrees "
                    "with width %d (expected 0x%X) -- a width/mask slip "
                    "silently corrupts every measurement using this "
                    "code" % (
                        entry, class_name, mask_name, mask, width,
                        (1 << width) - 1,
                    ),
                )
