"""Determinism rules: REP101, REP102, REP103.

The paper's measurements are statements about *miss rates over
enumerated splices*; their credibility rests on every sweep being
bit-reproducible from ``(profile, bytes, seed)``.  These rules keep
unseeded entropy and unordered iteration out of the result path.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, dotted_name, register

__all__ = [
    "UnseededRandomnessRule",
    "UnsortedSerializationRule",
    "WallClockResultRule",
]

#: ``random.<fn>`` module-level functions that draw from the shared,
#: unseeded global generator.
_RANDOM_FUNCTIONS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "getrandbits", "randbytes", "betavariate",
    "gauss", "normalvariate", "expovariate", "lognormvariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
}

#: ``numpy.random`` attributes that are *fine* (seedable machinery).
_NUMPY_SEEDABLE = {
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
}

#: Call chains that are wall-clock or machine entropy regardless of args.
_ENTROPY_CHAINS = {
    "os.urandom": "os.urandom() is machine entropy",
    "uuid.uuid4": "uuid.uuid4() is machine entropy",
    "secrets.token_bytes": "secrets draws machine entropy",
    "secrets.token_hex": "secrets draws machine entropy",
    "secrets.randbits": "secrets draws machine entropy",
    "secrets.randbelow": "secrets draws machine entropy",
    "secrets.choice": "secrets draws machine entropy",
}

_WALLCLOCK_CHAINS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "date.today": "date.today()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


@register
class UnseededRandomnessRule(Rule):
    """REP101: all randomness in result paths must be seeded."""

    id = "REP101"
    title = "unseeded-randomness"
    severity = "error"
    category = "determinism"
    invariant = (
        "Every random draw reachable from an engine/analysis result "
        "path flows from an explicit seed, so a sweep replays "
        "bit-identically from (profile, bytes, seed)."
    )

    def check(self, module, ctx):
        if not ctx.config.is_deterministic(module.name):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            yield from self._check_call(module, node, chain)

    def _check_call(self, module, node, chain):
        parts = chain.split(".")
        tail2 = ".".join(parts[-2:])
        if tail2 in _ENTROPY_CHAINS:
            yield self.finding(module, node, "%s; derive values from the "
                               "run seed instead" % _ENTROPY_CHAINS[tail2])
            return
        # random.<fn>() on the module (not an instance): the global
        # generator is process-lifetime state, never seeded per run.
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _RANDOM_FUNCTIONS:
            yield self.finding(
                module, node,
                "random.%s() uses the unseeded global generator; use "
                "random.Random(seed) or numpy default_rng(seed)" % parts[1],
            )
            return
        # Constructors that are seeded only when given arguments.
        if tail2 in ("random.Random",) or parts[-1] == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "%s() without a seed draws OS entropy; pass the run "
                    "seed explicitly" % chain,
                )
            return
        # numpy.random legacy module-level functions (np.random.rand,
        # np.random.shuffle, ...): global hidden state.
        if len(parts) >= 3 and parts[-2] == "random" \
                and parts[-3] in ("np", "numpy") \
                and parts[-1] not in _NUMPY_SEEDABLE:
            yield self.finding(
                module, node,
                "%s() uses numpy's global RNG state; use "
                "numpy.random.default_rng(seed)" % chain,
            )


@register
class WallClockResultRule(Rule):
    """REP102: no wall-clock reads in deterministic packages."""

    id = "REP102"
    title = "wall-clock-in-result-path"
    severity = "warning"
    category = "determinism"
    invariant = (
        "Result-path code measures durations with perf counters only; "
        "wall-clock timestamps (time.time, datetime.now) never enter "
        "serialized results, so cached and fresh runs stay "
        "bit-identical."
    )

    def check(self, module, ctx):
        if not ctx.config.is_deterministic(module.name):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            for depth in (3, 2):
                tail = ".".join(parts[-depth:])
                if tail in _WALLCLOCK_CHAINS:
                    yield self.finding(
                        module, node,
                        "%s reads the wall clock; use time.perf_counter() "
                        "for durations or accept a timestamp from the "
                        "caller" % _WALLCLOCK_CHAINS[tail],
                    )
                    break


@register
class UnsortedSerializationRule(Rule):
    """REP103: serialized output must not depend on hash/insertion order."""

    id = "REP103"
    title = "unsorted-serialized-iteration"
    severity = "warning"
    category = "determinism"
    invariant = (
        "Functions that produce serialized report output (to_dict, "
        "snapshot, render_*, write_*) iterate mappings and sets in "
        "sorted order, so emitted JSON/markdown is byte-stable."
    )

    _DICT_VIEWS = ("items", "keys", "values")

    def check(self, module, ctx):
        if not ctx.config.is_deterministic(module.name):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not ctx.config.is_serializer_name(func.name):
                continue
            yield from self._check_function(module, func)

    def _check_function(self, module, func):
        for node in ast.walk(func):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                problem = self._unordered(expr)
                if problem:
                    yield self.finding(
                        module, expr,
                        "%s feeds serialized output of %s() in hash/"
                        "insertion order; wrap it in sorted(...)"
                        % (problem, func.name),
                    )

    def _unordered(self, expr):
        """A description of the unordered iterable, or None if fine."""
        if isinstance(expr, ast.Call):
            chain = dotted_name(expr.func) or ""
            leaf = chain.rsplit(".", 1)[-1]
            if leaf in self._DICT_VIEWS:
                return "dict.%s()" % leaf
            return None  # sorted(...), list(...), custom helpers: fine
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        return None
