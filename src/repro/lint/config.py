"""Policy knobs for the lint engine.

The defaults encode *this repository's* layering and determinism
contracts.  Tests exercise rules against synthetic trees by building
fixture packages with the same dotted layout (``repro/core/...``), or
by overriding individual fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CONTRACT_NAME",
    "LayerContract",
    "LintConfig",
    "load_contract",
]

#: Conventional baseline filename, committed at the repo root.
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

#: Conventional layer-contract filename, committed at the repo root.
DEFAULT_CONTRACT_NAME = ".reprolint.toml"


def _tuple(*items):
    return tuple(items)


@dataclass(frozen=True)
class LintConfig:
    """Everything rule behaviour keys off, in one frozen record."""

    # -- determinism (REP101/REP102/REP103) ----------------------------

    #: Packages whose import-time or result-path code must be seeded:
    #: any module whose dotted name starts with one of these prefixes.
    deterministic_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.core", "repro.analysis", "repro.experiments",
        "repro.corpus", "repro.protocols", "repro.checksums",
        "repro.sim", "repro.faults", "repro.store", "repro.telemetry",
        "repro.channel",
    ))

    #: Function-name shapes treated as serialization/report producers
    #: for the unsorted-iteration rule (REP103).
    serialization_prefixes: tuple = field(default_factory=lambda: _tuple(
        "to_", "render", "write_", "dump", "export",
    ))
    serialization_names: tuple = field(default_factory=lambda: _tuple(
        "snapshot", "stats", "summary",
    ))

    # -- concurrency (REP201/REP202) -----------------------------------

    #: Constructors whose first argument runs in worker processes.
    pool_constructors: tuple = field(default_factory=lambda: _tuple(
        "SupervisedPool", "ProcessPoolExecutor",
    ))

    # -- layering (REP301/REP302/REP303) -------------------------------

    #: Modules held to the facade-only import rule.
    cli_modules: tuple = field(default_factory=lambda: _tuple("repro.cli"))
    #: What those modules may import from the project (everything else
    #: must go through the facade).  ``repro.lint`` is dev tooling
    #: layered *above* the domain code, so it is reachable directly.
    cli_allowed_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.api", "repro.lint",
    ))

    #: The bottom layer: may import nothing else from the project.
    pure_layer_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.checksums",
    ))

    #: Cold-path modules: importable on a warm ``--cache`` hit, so they
    #: must not eagerly import the splice engine (PR 1's 10-20x
    #: warm-start win).  Exact names match only themselves; prefixes
    #: match their whole subtree.
    cold_modules_exact: tuple = field(default_factory=lambda: _tuple(
        "repro", "repro.core", "repro.experiments",
        "repro.experiments.registry", "repro.experiments.report",
        "repro.experiments.render",
    ))
    cold_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.api", "repro.cli", "repro.checksums", "repro.store",
        "repro.telemetry", "repro.corpus", "repro.faults", "repro.lint",
    ))

    #: Hot modules a cold module must not import at module scope.
    hot_module_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.core.engine", "repro.core.experiment", "repro.sim",
        "repro.experiments.splice_tables", "repro.experiments.figures",
        "repro.experiments.ablations", "repro.experiments.extensions",
    ))
    #: Names that resolve to hot modules when imported off a lazy
    #: package (``from repro.core import SpliceEngine`` pays for the
    #: engine even though ``repro.core`` itself is cheap).
    hot_attribute_names: tuple = field(default_factory=lambda: _tuple(
        "SpliceEngine", "EngineOptions", "SpliceExperimentResult",
        "run_splice_experiment", "run_per_file_experiment",
        "simulate_file_transfer", "TransferReport",
    ))
    #: Lazy packages whose attributes may be hot (PEP 562 facades).
    lazy_packages: tuple = field(default_factory=lambda: _tuple(
        "repro", "repro.core",
    ))

    # -- batch hot path (REP304) ---------------------------------------

    #: Modules on the splice hot path: per-item work there must route
    #: through the batch kernels (``repro.core.batch``,
    #: ``compute_many``), not per-cell Python loops.
    batch_hot_modules: tuple = field(default_factory=lambda: _tuple(
        "repro.core.engine", "repro.core.fragsplice",
    ))

    #: Callee names (last dotted segment, leading underscores ignored)
    #: recognized as byte-at-a-time scalar kernels.
    scalar_kernel_names: tuple = field(default_factory=lambda: _tuple(
        "compute", "verify", "process", "step",
        "judge_splice", "judge_splice_cells",
        "word_sums", "fletcher8", "internet_checksum",
        "ones_complement_sum",
    ))

    # -- crash consistency (REP401/REP402) -----------------------------

    #: Packages whose renames must be fsync-ordered.
    store_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.store",
    ))

    #: Checkpoint-journal modules: every filesystem write must route
    #: through the store's atomic-write helper (REP402) so a kill
    #: between shards can never tear a checkpoint.
    journal_prefixes: tuple = field(default_factory=lambda: _tuple(
        "repro.store.journal",
    ))

    # -- hand-rolled retries (REP404) ----------------------------------

    #: The one place except-and-retry loops are legitimate: the
    #: RetryPolicy engine itself.  Every other store module must
    #: delegate its retries there (seeded backoff, budgets, telemetry).
    resilience_modules: tuple = field(default_factory=lambda: _tuple(
        "repro.store.resilience",
    ))

    # -- verified store reads (REP403) ---------------------------------

    #: Class-name suffixes held to the verified-read contract: their
    #: payload-returning ``get*`` methods must verify the integrity
    #: trailer (or delegate to a method that does).
    verified_read_class_suffixes: tuple = field(default_factory=lambda: _tuple(
        "Backend", "Store", "Cache", "Client",
    ))
    #: Method-name markers exempting a ``get*`` method: it returns raw
    #: trailer-carrying frames by design (verification happens at the
    #: caller's unframe boundary).
    verified_read_exempt_markers: tuple = field(default_factory=lambda: _tuple(
        "frame", "raw",
    ))
    #: Call-name markers recognized as trailer verification.
    verify_helper_markers: tuple = field(default_factory=lambda: _tuple(
        "verify", "unframe",
    ))

    # -- protocol conformance (REP501) ---------------------------------

    #: Modules holding a ``_FACTORIES`` algorithm registry.
    registry_modules: tuple = field(default_factory=lambda: _tuple(
        "repro.checksums.registry",
    ))
    #: Members every registered algorithm class must define.
    protocol_methods: tuple = field(default_factory=lambda: _tuple(
        "compute", "field", "verify",
    ))
    protocol_attributes: tuple = field(default_factory=lambda: _tuple(
        "width", "name",
    ))

    # -- interprocedural taint (REP111) --------------------------------

    #: Call-name markers (substring of the lower-cased leaf) treated
    #: as sanitizers by the dataflow engine: the return of
    #: ``derive_seed(...)`` or ``canonical_stamp(...)`` is clean even
    #: when its inputs were entropy/wall clock, because deriving a
    #: value *from* the run seed (or a pinned epoch) is exactly how
    #: this codebase launders nondeterminism on purpose.
    sanitizer_markers: tuple = field(default_factory=lambda: _tuple(
        "seed", "canonical", "deterministic",
    ))

    # -- helpers -------------------------------------------------------

    def replace(self, **overrides):
        """A copy with ``overrides`` applied (tests use this)."""
        return replace(self, **overrides)

    def is_deterministic(self, module):
        return _prefixed(module, self.deterministic_prefixes)

    def is_cli(self, module):
        return module in self.cli_modules

    def is_pure_layer(self, module):
        return _prefixed(module, self.pure_layer_prefixes)

    def is_cold(self, module):
        return module in self.cold_modules_exact or _prefixed(
            module, self.cold_prefixes
        )

    def is_hot_target(self, module):
        return _prefixed(module, self.hot_module_prefixes)

    def is_batch_hot(self, module):
        return _prefixed(module, self.batch_hot_modules)

    def is_store(self, module):
        return _prefixed(module, self.store_prefixes)

    def is_journal(self, module):
        return _prefixed(module, self.journal_prefixes)

    def is_resilience(self, module):
        return _prefixed(module, self.resilience_modules)

    def is_verified_read_class(self, class_name):
        return class_name.endswith(self.verified_read_class_suffixes)

    def is_registry(self, module):
        return module in self.registry_modules

    def is_serializer_name(self, name):
        return name in self.serialization_names or any(
            name.startswith(prefix) for prefix in self.serialization_prefixes
        )


def _prefixed(module, prefixes):
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass(frozen=True)
class LayerContract:
    """The declared import DAG from ``.reprolint.toml``.

    ``layers`` maps a layer name to the module prefixes it owns;
    ``allowed`` maps a layer to the layers it may (directly) import.
    By default only *eager* (module-scope) imports are checked --
    function-level lazy imports are this codebase's sanctioned
    dependency-inversion idiom (PEP 562 facades, `repro.core.experiment`
    reaching the store at call time) and would make the true graph
    cyclic.  Set ``include_lazy`` to hold lazy imports to the DAG too.
    """

    path: str
    layers: tuple  # ((layer, (prefix, ...)), ...)
    allowed: tuple  # ((layer, (layer, ...)), ...)
    include_lazy: bool = False

    def layer_of(self, module):
        """The layer owning ``module`` (longest prefix wins), or None."""
        best = None
        best_length = -1
        for layer, prefixes in self.layers:
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    if len(prefix) > best_length:
                        best = layer
                        best_length = len(prefix)
        return best

    def allows(self, source_layer, target_layer):
        """True if ``source_layer`` may import ``target_layer``."""
        if source_layer == target_layer:
            return True
        for layer, targets in self.allowed:
            if layer == source_layer:
                return target_layer in targets
        return False

    def find_cycle(self):
        """A layer cycle in the *declared* edges, or None.

        The contract must itself be a DAG -- a cycle in the
        declaration would make "illegal edge" vacuous.
        """
        edges = {layer: tuple(targets) for layer, targets in self.allowed}
        WHITE, GREY, BLACK = 0, 1, 2
        state = {}
        for start, _ in self.layers:
            if state.get(start, WHITE) != WHITE:
                continue
            stack = [(start, iter(edges.get(start, ())))]
            state[start] = GREY
            trail = [start]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for successor in successors:
                    colour = state.get(successor, WHITE)
                    if colour == GREY:
                        return (*trail[trail.index(successor):], successor)
                    if colour == WHITE:
                        state[successor] = GREY
                        trail.append(successor)
                        stack.append(
                            (successor, iter(edges.get(successor, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = BLACK
                    trail.pop()
                    stack.pop()
        return None


def load_contract(path):
    """Parse a ``.reprolint.toml`` layer contract.

    Raises ``ValueError`` on malformed documents (bad TOML, layers
    referenced in ``allowed`` but never declared).
    """
    import tomllib

    path = Path(path)
    try:
        payload = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ValueError("invalid layer contract %s: %s" % (path, exc))
    section = payload.get("contract", {})
    layers = tuple(
        (str(layer), tuple(str(prefix) for prefix in prefixes))
        for layer, prefixes in section.get("layers", {}).items()
    )
    declared = {layer for layer, _ in layers}
    allowed = tuple(
        (str(layer), tuple(str(target) for target in targets))
        for layer, targets in section.get("allowed", {}).items()
    )
    unknown = sorted(
        {layer for layer, _ in allowed} - declared
        | {
            target
            for _, targets in allowed
            for target in targets
        } - declared
    )
    if unknown:
        raise ValueError(
            "layer contract %s names undeclared layer(s): %s"
            % (path, ", ".join(unknown))
        )
    return LayerContract(
        path=str(path),
        layers=layers,
        allowed=allowed,
        include_lazy=bool(section.get("include_lazy", False)),
    )
