"""Concurrency rules: REP201, REP202.

``SupervisedPool`` promises results bit-identical to a sequential run
because every job is a *pure, picklable* function of its payload and
all accounting happens parent-side.  These rules keep that promise
honest at the submission site and inside the worker bodies.
"""

from __future__ import annotations

import ast

from repro.lint.engine import (
    Rule,
    dotted_name,
    module_level_functions,
    nested_function_names,
    register,
)

__all__ = ["NonPicklableWorkerRule", "WorkerSideAccountingRule"]

#: Methods whose first argument is shipped to a worker process.
_SUBMIT_METHODS = {"submit"}

#: Telemetry mutators that must only run in the parent process.
_TELEMETRY_MUTATORS = {"count", "meter", "gauge", "observe"}


def _submitted_callables(tree, config):
    """Yield ``(call_node, callable_expr)`` for every pool submission."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        target = None
        if isinstance(func, ast.Name) and func.id in config.pool_constructors:
            target = _first_callable_arg(node, keyword="function")
        elif isinstance(func, ast.Attribute) \
                and func.attr in config.pool_constructors:
            target = _first_callable_arg(node, keyword="function")
        elif isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            target = _first_callable_arg(node, keyword="fn")
        if target is not None:
            yield node, target


def _first_callable_arg(call, keyword):
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _local_assignments(tree):
    """name -> list of RHS expressions for simple local assignments."""
    assignments = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assignments.setdefault(target.id, []).append(node.value)
    return assignments


def _enclosing_methods(tree):
    """node id -> method names of the nearest enclosing class.

    Used to tell a genuine bound method (``self.run`` where ``run`` is
    ``def``-ed on the class) from an instance *attribute holding* a
    module-level function (``self.function = some_top_level_fn``), which
    pickles by value and is a supported submission pattern.
    """
    owner = {}
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = frozenset(
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        # Inner classes are walked after outer ones, so later writes
        # leave the *nearest* enclosing class in place.
        for node in ast.walk(cls):
            owner[id(node)] = methods
    return owner


@register
class NonPicklableWorkerRule(Rule):
    """REP201: pool callables must be module-level (picklable)."""

    id = "REP201"
    title = "non-picklable-worker"
    severity = "error"
    category = "concurrency"
    invariant = (
        "Every callable submitted to SupervisedPool or a process pool "
        "is a module-level function, so the payload pickles and a "
        "respawned pool can re-run any shard."
    )

    def check(self, module, ctx):
        tree = module.tree
        nested = nested_function_names(tree)
        top_level = module_level_functions(tree)
        assignments = _local_assignments(tree)
        methods = _enclosing_methods(tree)
        for call, target in _submitted_callables(tree, ctx.config):
            yield from self._judge(
                module, call, target, nested, top_level, assignments,
                methods.get(id(call), frozenset()),
                depth=0,
            )

    def _judge(self, module, call, target, nested, top_level, assignments,
               class_methods, depth):
        if isinstance(target, ast.Lambda):
            yield self.finding(
                module, call,
                "lambda submitted to a process pool: lambdas do not "
                "pickle; move the body to a module-level function",
            )
            return
        if isinstance(target, ast.Attribute):
            chain = dotted_name(target) or target.attr
            # ``self.attr`` where ``attr`` is a *method* of the enclosing
            # class is a bound method and drags the instance through
            # pickle.  ``self.attr`` holding a module-level function
            # (assigned in __init__) pickles by value and is fine.
            if chain.startswith("self.") and target.attr in class_methods:
                yield self.finding(
                    module, call,
                    "bound method %r submitted to a process pool; bound "
                    "methods drag their instance through pickle -- use a "
                    "module-level function" % chain,
                )
            return
        if isinstance(target, ast.Name):
            name = target.id
            if name in top_level:
                return  # module-level def: picklable by construction
            if name in nested:
                yield self.finding(
                    module, call,
                    "%r is defined in a nested scope; closures do not "
                    "pickle -- hoist it to module level" % name,
                )
                return
            # A local alias: judge every value it could hold (bounded
            # depth -- this is a lint, not an interpreter).
            if depth < 2:
                for value in assignments.get(name, []):
                    yield from self._judge(
                        module, call, value, nested, top_level,
                        assignments, class_methods, depth + 1,
                    )


@register
class WorkerSideAccountingRule(Rule):
    """REP202: no telemetry/health mutation inside worker functions."""

    id = "REP202"
    title = "worker-side-accounting"
    severity = "error"
    category = "concurrency"
    invariant = (
        "Worker-executed functions return plain counters; telemetry "
        "and RunHealth are accounted parent-side from returned "
        "results, so totals are bit-identical across --workers "
        "settings."
    )

    def check(self, module, ctx):
        tree = module.tree
        top_level = module_level_functions(tree)
        assignments = _local_assignments(tree)
        workers = set()
        for _, target in _submitted_callables(tree, ctx.config):
            workers |= self._resolve_names(target, assignments, depth=0)
        for name in sorted(workers):
            func = top_level.get(name)
            if func is None:
                continue  # defined elsewhere; its module gets checked there
            yield from self._check_worker(module, func)

    def _resolve_names(self, target, assignments, depth):
        if isinstance(target, ast.Name):
            names = {target.id}
            if depth < 2:
                for value in assignments.get(target.id, []):
                    names |= self._resolve_names(value, assignments, depth + 1)
            return names
        return set()

    def _check_worker(self, module, func):
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is None:
                    # current().count(...) style: receiver is a call.
                    if isinstance(node.func, ast.Attribute) \
                            and node.func.attr in _TELEMETRY_MUTATORS \
                            and isinstance(node.func.value, ast.Call):
                        inner = dotted_name(node.func.value.func) or ""
                        if "telemetry" in inner or inner.endswith("current"):
                            yield self._mutation(module, node, node.func.attr)
                    continue
                parts = chain.split(".")
                if len(parts) >= 2 and parts[-1] in _TELEMETRY_MUTATORS \
                        and "telemetry" in parts[-2].lower():
                    yield self._mutation(module, node, parts[-1])
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and "health" in target.value.id.lower():
                    yield self.finding(
                        module, node,
                        "worker function %r mutates %s.%s; RunHealth is "
                        "accounted parent-side so supervision records "
                        "survive worker crashes" % (
                            func.name, target.value.id, target.attr,
                        ),
                    )

    def _mutation(self, module, node, mutator):
        return self.finding(
            module, node,
            "telemetry.%s() inside a worker-executed function; workers "
            "inherit the disabled registry, so this either no-ops or "
            "diverges across --workers -- account it parent-side from "
            "the returned counters" % mutator,
        )
