"""Import graph and intra-project call graph over a scanned Project.

The per-module rules of PR 4 see one function at a time; the flow
rules (REP111/REP211/REP411) need to know *who calls whom across
modules*.  This module derives that statically from the same
:class:`~repro.lint.engine.Project` the scanner already built:

* an **import table** per module (local name -> project module or
  module member, ``import a.b as c`` / ``from a.b import c`` / relative
  forms all resolved against the scanned tree);
* a **function table** keyed by ``(module, qualname)`` covering
  module-level functions and class methods;
* a **call graph**: for every function, the project functions its body
  calls, resolved through the import table, module-level aliases, and
  ``self.``-method dispatch;
* **SCC condensation** in dependency-first order, so a dataflow pass
  can compute per-function summaries linearly over the graph (cycles
  iterate to a fixpoint inside their component).

Resolution is deliberately conservative: anything dynamic (calls on
call results, duck-typed receivers, ``getattr``) resolves to nothing
rather than to a guess, so flow rules under-report instead of crying
wolf.
"""

from __future__ import annotations

import ast

from repro.lint.engine import dotted_name

__all__ = ["CallGraph", "FunctionRecord", "ResolvedCallable"]

#: Bound on alias-chain hops (``a = b; b = c; ...``) during resolution.
_MAX_ALIAS_DEPTH = 4


class FunctionRecord:
    """One function or method definition in the scanned project."""

    __slots__ = ("module", "node", "qualname", "class_name")

    def __init__(self, module, node, qualname, class_name=None):
        self.module = module          # ModuleInfo
        self.node = node              # FunctionDef / AsyncFunctionDef
        self.qualname = qualname      # "fn" or "Cls.fn"
        self.class_name = class_name  # enclosing class, or None

    @property
    def qid(self):
        """``(module_name, qualname)`` -- the graph key."""
        return (self.module.name, self.qualname)

    @property
    def name(self):
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def params(self):
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.class_name is not None and names:
            names = names[1:]  # drop self/cls
        return names

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<FunctionRecord %s:%s>" % (self.module.name, self.qualname)


class ResolvedCallable:
    """What a callable expression resolved to, and how.

    ``kind`` is ``"function"`` (a module-level def or method,
    ``record`` set), ``"lambda"``, ``"nested"`` (a closure --
    ``record`` is the nested def's record-less (module, node) pair), or
    ``None`` was returned instead for unresolvable expressions.
    ``crossed`` is True when resolution left the module the expression
    appeared in or passed through a module-level assignment -- exactly
    the hops the single-module REP201 rule cannot see.
    """

    __slots__ = ("kind", "record", "module", "node", "crossed", "via")

    def __init__(self, kind, record=None, module=None, node=None,
                 crossed=False, via=()):
        self.kind = kind
        self.record = record
        self.module = module
        self.node = node
        self.crossed = crossed
        self.via = tuple(via)


class _ModuleTable:
    """Per-module symbol tables the graph builds once."""

    __slots__ = ("imports", "functions", "classes", "assigns", "nested")

    def __init__(self):
        #: local name -> ("module", dotted) | ("member", module, attr)
        self.imports = {}
        #: qualname -> FunctionRecord (module funcs and class methods)
        self.functions = {}
        #: class name -> {method name -> qualname}
        self.classes = {}
        #: module-level name -> value expression (last assignment wins)
        self.assigns = {}
        #: names of functions defined inside other functions
        self.nested = {}


class CallGraph:
    """Project-wide import and call graph (see module docstring)."""

    def __init__(self, project):
        self.project = project
        self._tables = {}
        self._edges = {}
        self._sccs = None
        for module in project.modules():
            try:
                tree = module.tree
            except SyntaxError:
                continue
            self._tables[module.name] = self._scan_module(module, tree)
        for name in sorted(self._tables):
            self._build_edges(name)

    # -- construction -------------------------------------------------------

    def _scan_module(self, module, tree):
        table = _ModuleTable()
        for node, target, alias, is_from in _iter_imports(module, tree):
            if not is_from:
                # ``import a.b`` binds root ``a``; ``import a.b as c``
                # binds ``c`` to the full path.
                root = target.split(".", 1)[0]
                table.imports.setdefault(root, ("module", root))
                continue
            bound, origin = alias
            if self.project.get("%s.%s" % (target, origin)) is not None:
                table.imports[bound] = (
                    "module", "%s.%s" % (target, origin))
            else:
                table.imports[bound] = ("member", target, origin)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table.functions[node.name] = FunctionRecord(
                    module, node, node.name)
            elif isinstance(node, ast.ClassDef):
                methods = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qualname = "%s.%s" % (node.name, item.name)
                        table.functions[qualname] = FunctionRecord(
                            module, item, qualname, class_name=node.name)
                        methods[item.name] = qualname
                table.classes[node.name] = methods
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table.assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    table.assigns[node.target.id] = node.value
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table.nested.setdefault(inner.name, inner)
        return table

    def _build_edges(self, module_name):
        table = self._tables[module_name]
        module = self.project.get(module_name)
        for record in table.functions.values():
            callees = []
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(
                    module, node, class_name=record.class_name)
                if target is not None and target != record.qid:
                    callees.append(target)
            # Sorted and de-duplicated: edge order must not depend on
            # source position, so cache fingerprints stay stable.
            self._edges[record.qid] = tuple(sorted(set(callees)))

    # -- queries ------------------------------------------------------------

    def function(self, qid):
        """The :class:`FunctionRecord` for ``(module, qualname)``."""
        table = self._tables.get(qid[0])
        return table.functions.get(qid[1]) if table else None

    def functions(self):
        """Every known function record, in deterministic order."""
        for name in sorted(self._tables):
            table = self._tables[name]
            for qualname in sorted(table.functions):
                yield table.functions[qualname]

    def callees(self, qid):
        """Project functions ``qid``'s body calls (resolved only)."""
        return self._edges.get(qid, ())

    def reachable(self, qid):
        """Every qid transitively reachable from ``qid`` (exclusive)."""
        seen, stack = set(), [qid]
        while stack:
            for callee in self.callees(stack.pop()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def sccs(self):
        """Strongly-connected components, callees-first.

        Processing components in this order lets a summary-based
        analysis visit each function after everything it calls
        (mutual recursion shares a component and iterates).
        """
        if self._sccs is None:
            self._sccs = _tarjan(
                sorted(self._edges), lambda qid: self._edges.get(qid, ()))
        return self._sccs

    # -- resolution ---------------------------------------------------------

    def resolve_call(self, module, call, class_name=None):
        """The qid a ``Call`` node dispatches to, or None."""
        chain = dotted_name(call.func)
        if chain is None:
            return None
        return self.resolve_chain(module, chain, class_name=class_name)

    def resolve_chain(self, module, chain, class_name=None, _depth=0):
        """Resolve a dotted name used in ``module`` to a function qid."""
        if _depth > _MAX_ALIAS_DEPTH:
            return None
        table = self._tables.get(module.name)
        if table is None:
            return None
        parts = chain.split(".")
        head, rest = parts[0], parts[1:]

        if head == "self" and class_name is not None and len(rest) == 1:
            qualname = table.classes.get(class_name, {}).get(rest[0])
            return (module.name, qualname) if qualname else None

        if not rest:
            if head in table.functions:
                return (module.name, head)
            if head in table.assigns:
                alias = dotted_name(table.assigns[head])
                if alias and alias != head:
                    return self.resolve_chain(
                        module, alias, class_name=class_name,
                        _depth=_depth + 1)

        target = table.imports.get(head)
        if target is None:
            return None
        if target[0] == "member":
            _, home, attr = target
            return self._resolve_in(home, [attr, *rest])
        # ("module", dotted): extend the module path as far as the
        # scanned tree allows, then look the remainder up there.
        return self._resolve_in(target[1], rest)

    def _resolve_in(self, module_name, parts):
        """Resolve ``parts`` against ``module_name`` and its subtree."""
        while parts and self.project.get(
                "%s.%s" % (module_name, parts[0])) is not None:
            module_name = "%s.%s" % (module_name, parts[0])
            parts = parts[1:]
        table = self._tables.get(module_name)
        if table is None or not parts:
            return None
        if len(parts) == 1:
            if parts[0] in table.functions:
                return (module_name, parts[0])
            value = table.assigns.get(parts[0])
            if value is not None:
                chain = dotted_name(value)
                if chain:
                    home = self.project.get(module_name)
                    return self.resolve_chain(home, chain, _depth=1)
            return None
        if len(parts) == 2:
            qualname = table.classes.get(parts[0], {}).get(parts[1])
            return (module_name, qualname) if qualname else None
        return None

    def resolve_callable(self, module, expr, _depth=0, _crossed=False,
                         _via=()):
        """What a callable *expression* (not a call) names, if knowable.

        This is the cross-module extension of REP201's same-module
        name resolution: ``from repro.core.helpers import WORKER``
        where ``WORKER = make_worker()`` and ``make_worker`` returns a
        nested ``def`` resolves -- through the import, the module-level
        assignment, and the factory's return statement -- to a closure
        no pickle can carry.
        """
        if _depth > _MAX_ALIAS_DEPTH:
            return None
        if isinstance(expr, ast.Lambda):
            return ResolvedCallable(
                "lambda", module=module, node=expr, crossed=_crossed,
                via=_via)
        if isinstance(expr, ast.Call):
            # A factory call: whatever the factory returns is what gets
            # submitted.  Resolve the factory, then its return values.
            factory = self.resolve_call(module, expr)
            if factory is None:
                return None
            record = self.function(factory)
            if record is None:
                return None
            for node in ast.walk(record.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    resolved = self.resolve_callable(
                        record.module, node.value, _depth=_depth + 1,
                        _crossed=True, _via=(*_via, factory))
                    if resolved is not None:
                        return resolved
            return None
        chain = dotted_name(expr) if not isinstance(expr, str) else expr
        if chain is None:
            return None
        parts = chain.split(".")
        table = self._tables.get(module.name)
        if table is None:
            return None
        head = parts[0]
        if len(parts) == 1:
            if head in table.functions:
                return ResolvedCallable(
                    "function", record=table.functions[head],
                    crossed=_crossed, via=_via)
            if head in table.nested:
                return ResolvedCallable(
                    "nested", module=module, node=table.nested[head],
                    crossed=_crossed, via=_via)
            if head in table.assigns:
                return self.resolve_callable(
                    module, table.assigns[head], _depth=_depth + 1,
                    _crossed=True, _via=_via)
        target = table.imports.get(head)
        if target is not None:
            if target[0] == "member":
                _, home_name, attr = target
                remainder = ".".join([attr, *parts[1:]])
            else:
                home_name, remainder = target[1], ".".join(parts[1:])
            while "." in remainder or remainder:
                sub = "%s.%s" % (home_name, remainder.split(".", 1)[0])
                if self.project.get(sub) is None:
                    break
                home_name = sub
                remainder = remainder.split(".", 1)[1] \
                    if "." in remainder else ""
            home = self.project.get(home_name)
            if home is None or not remainder or "." in remainder:
                return None
            return self.resolve_callable(
                home, remainder, _depth=_depth + 1, _crossed=True,
                _via=_via)
        # Re-dispatch a bare chain string in this module's namespace.
        if isinstance(expr, str) and len(parts) >= 2:
            qualname = table.classes.get(parts[0], {}).get(parts[1])
            if qualname is not None:
                return ResolvedCallable(
                    "function", record=table.functions[qualname],
                    crossed=_crossed, via=_via)
        return None


def _iter_imports(module, tree):
    """Like engine.iter_imports but with relative imports resolved."""
    # One leading dot resolves against the containing package (the
    # module itself, for an ``__init__``); each extra dot drops one
    # more component.
    is_package = module.path.name == "__init__.py"
    package = module.name.split(".") if is_package \
        else module.name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name, None, False
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:
                drop = node.level - 1
                if drop > len(package):
                    continue
                base = package[:len(package) - drop]
                if not base and not target:
                    continue
                target = ".".join(base + ([target] if target else []))
            for alias in node.names:
                yield node, target, (alias.asname or alias.name,
                                     alias.name), True


def _tarjan(nodes, successors):
    """Tarjan SCC, iterative; components come out callees-first."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    result = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(tuple(sorted(component)))
    return result
