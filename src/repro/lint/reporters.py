"""Renderers for a :class:`~repro.lint.engine.LintResult`.

* ``text`` -- one ``path:line:col RULE severity message`` per finding
  (the default, editor-clickable);
* ``json`` -- a stable ``repro-lint/1`` document that round-trips
  through :func:`findings_from_json` (CI consumers, the test suite);
* ``md`` -- a markdown table plus the rule catalogue (docs, PR bots);
* ``sarif`` -- a minimal SARIF 2.1.0 run for code-scanning upload
  (baselined findings carry a suppression record instead of being
  dropped, so scanners see the debt without failing on it).
"""

from __future__ import annotations

import json

from repro.lint.findings import Finding

__all__ = [
    "REPORT_SCHEMA",
    "SARIF_VERSION",
    "findings_from_json",
    "render_json",
    "render_markdown",
    "render_sarif",
    "render_text",
]

REPORT_SCHEMA = "repro-lint/1"

SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _summary(result):
    return {
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "active": len(result.active),
        "baselined": len(result.baselined),
        "suppressed": result.suppressed,
        "by_rule": result.counts_by_rule(),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
    }


def render_text(result):
    lines = []
    for finding in result.findings:
        suffix = "  [baselined]" if finding.baselined else ""
        lines.append("%s %s %s %s%s" % (
            finding.location(), finding.rule, finding.severity,
            finding.message, suffix,
        ))
    summary = _summary(result)
    lines.append(
        "%(files_scanned)d files scanned: %(active)d finding(s), "
        "%(baselined)d baselined, %(suppressed)d pragma-suppressed"
        % summary
    )
    if result.cache_hits or result.cache_misses:
        lines.append(
            "incremental cache: %(cache_hits)d hit(s), "
            "%(cache_misses)d miss(es)" % summary
        )
    return "\n".join(lines)


def render_json(result, indent=2):
    payload = {
        "schema": REPORT_SCHEMA,
        "summary": _summary(result),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def findings_from_json(text):
    """Rebuild the findings list from :func:`render_json` output."""
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            "unsupported lint report schema %r (expected %r)"
            % (schema, REPORT_SCHEMA)
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]


def render_sarif(result, indent=2):
    """A minimal SARIF 2.1.0 document for code-scanning ingestion."""
    rules = []
    rule_index = {}
    for rule in result.rules:
        rule_index[rule.id] = len(rules)
        rules.append({
            "id": rule.id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.invariant or rule.title},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error"
                else "warning",
            },
        })
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": "error" if finding.severity == "error"
            else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        # SARIF regions are 1-based; runner-level
                        # findings (stale baseline) carry line 0.
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        if finding.baselined:
            entry["suppressions"] = [{"kind": "external"}]
        results.append(entry)
    payload = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def render_markdown(result):
    lines = ["# reprolint report", ""]
    summary = _summary(result)
    lines.append(
        "%(files_scanned)d files scanned -- **%(active)d active**, "
        "%(baselined)d baselined, %(suppressed)d pragma-suppressed."
        % summary
    )
    lines.append("")
    if result.findings:
        lines += [
            "| location | rule | severity | message |",
            "| --- | --- | --- | --- |",
        ]
        for finding in result.findings:
            message = finding.message.replace("|", "\\|")
            if finding.baselined:
                message += " *(baselined)*"
            lines.append("| `%s` | %s | %s | %s |" % (
                finding.location(), finding.rule, finding.severity, message,
            ))
        lines.append("")
    lines.append("## Rule catalogue")
    lines.append("")
    lines += [
        "| rule | severity | category | invariant |",
        "| --- | --- | --- | --- |",
    ]
    for rule in result.rules:
        lines.append("| %s `%s` | %s | %s | %s |" % (
            rule.id, rule.title, rule.severity, rule.category,
            rule.invariant.replace("|", "\\|"),
        ))
    return "\n".join(lines)
