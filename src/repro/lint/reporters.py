"""Renderers for a :class:`~repro.lint.engine.LintResult`.

* ``text`` -- one ``path:line:col RULE severity message`` per finding
  (the default, editor-clickable);
* ``json`` -- a stable ``repro-lint/1`` document that round-trips
  through :func:`findings_from_json` (CI consumers, the test suite);
* ``md`` -- a markdown table plus the rule catalogue (docs, PR bots).
"""

from __future__ import annotations

import json

from repro.lint.findings import Finding

__all__ = [
    "REPORT_SCHEMA",
    "findings_from_json",
    "render_json",
    "render_markdown",
    "render_text",
]

REPORT_SCHEMA = "repro-lint/1"


def _summary(result):
    return {
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "active": len(result.active),
        "baselined": len(result.baselined),
        "suppressed": result.suppressed,
        "by_rule": result.counts_by_rule(),
    }


def render_text(result):
    lines = []
    for finding in result.findings:
        suffix = "  [baselined]" if finding.baselined else ""
        lines.append("%s %s %s %s%s" % (
            finding.location(), finding.rule, finding.severity,
            finding.message, suffix,
        ))
    summary = _summary(result)
    lines.append(
        "%(files_scanned)d files scanned: %(active)d finding(s), "
        "%(baselined)d baselined, %(suppressed)d pragma-suppressed"
        % summary
    )
    return "\n".join(lines)


def render_json(result, indent=2):
    payload = {
        "schema": REPORT_SCHEMA,
        "summary": _summary(result),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def findings_from_json(text):
    """Rebuild the findings list from :func:`render_json` output."""
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            "unsupported lint report schema %r (expected %r)"
            % (schema, REPORT_SCHEMA)
        )
    return [Finding.from_dict(entry) for entry in payload["findings"]]


def render_markdown(result):
    lines = ["# reprolint report", ""]
    summary = _summary(result)
    lines.append(
        "%(files_scanned)d files scanned -- **%(active)d active**, "
        "%(baselined)d baselined, %(suppressed)d pragma-suppressed."
        % summary
    )
    lines.append("")
    if result.findings:
        lines += [
            "| location | rule | severity | message |",
            "| --- | --- | --- | --- |",
        ]
        for finding in result.findings:
            message = finding.message.replace("|", "\\|")
            if finding.baselined:
                message += " *(baselined)*"
            lines.append("| `%s` | %s | %s | %s |" % (
                finding.location(), finding.rule, finding.severity, message,
            ))
        lines.append("")
    lines.append("## Rule catalogue")
    lines.append("")
    lines += [
        "| rule | severity | category | invariant |",
        "| --- | --- | --- | --- |",
    ]
    for rule in result.rules:
        lines.append("| %s `%s` | %s | %s | %s |" % (
            rule.id, rule.title, rule.severity, rule.category,
            rule.invariant.replace("|", "\\|"),
        ))
    return "\n".join(lines)
