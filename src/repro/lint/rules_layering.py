"""Layering rules: REP301, REP302, REP303, REP311.

The package graph is a contract: the CLI sees only the facade, the
check codes sit below everything, and cold-path modules never pay for
the splice engine at import time (PR 1's 10-20x warm-start win).
REP311 generalises the hand-picked pairs: a committed
``.reprolint.toml`` declares the whole layer DAG and every eager
import in the project is held to it.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import Rule, iter_imports, register
from repro.lint.findings import Finding

__all__ = [
    "CliFacadeOnlyRule",
    "EagerEngineImportRule",
    "LayerContractRule",
    "PureLayerRule",
]


def _matches(module_name, allowed_prefixes):
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in allowed_prefixes
    )


@register
class CliFacadeOnlyRule(Rule):
    """REP301: the CLI goes through ``repro.api``, nothing deeper."""

    id = "REP301"
    title = "cli-facade-bypass"
    severity = "error"
    category = "layering"
    invariant = (
        "repro.cli imports project code only through the stable "
        "repro.api facade (and the repro.lint tooling layer), so "
        "internal modules can move without breaking the entry point."
    )

    def check(self, module, ctx):
        if not ctx.config.is_cli(module.name):
            return
        allowed = ctx.config.cli_allowed_prefixes
        for node, target, alias, is_from in iter_imports(module.tree):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            if target == "repro" or not _matches(target, allowed):
                shown = target if not is_from else "%s (name %r)" % (
                    target, alias,
                )
                yield self.finding(
                    module, node,
                    "CLI imports %s directly; route it through the "
                    "repro.api facade" % shown,
                )


@register
class PureLayerRule(Rule):
    """REP302: ``repro.checksums`` imports nothing above itself."""

    id = "REP302"
    title = "layer-purity"
    severity = "error"
    category = "layering"
    invariant = (
        "repro.checksums is the bottom layer: it may import only the "
        "standard library, numpy, and itself -- never protocols, "
        "core, store, or any other repro package."
    )

    def check(self, module, ctx):
        if not ctx.config.is_pure_layer(module.name):
            return
        for node, target, alias, is_from in iter_imports(module.tree):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            if _matches(target, ctx.config.pure_layer_prefixes):
                continue
            yield self.finding(
                module, node,
                "bottom-layer module imports %s; repro.checksums must "
                "stay free of upward dependencies" % target,
            )


@register
class EagerEngineImportRule(Rule):
    """REP303: cold-path modules never import the engine eagerly."""

    id = "REP303"
    title = "eager-engine-import"
    severity = "error"
    category = "layering"
    invariant = (
        "Modules on the warm-start path (CLI, api, store, registry, "
        "package __init__s) import the splice engine only inside "
        "function bodies, so a warm --cache hit never pays the "
        "engine+numpy import bill."
    )

    def check(self, module, ctx):
        config = ctx.config
        if not config.is_cold(module.name):
            return
        for node, target, alias, is_from in iter_imports(
            module.tree, module_scope_only=True,
        ):
            if config.is_hot_target(target):
                yield self.finding(
                    module, node,
                    "cold-path module eagerly imports %s; move the "
                    "import into the function that needs it" % target,
                )
            elif is_from and target in config.lazy_packages \
                    and (alias in config.hot_attribute_names or alias == "*"):
                yield self.finding(
                    module, node,
                    "from %s import %s resolves a hot attribute at "
                    "import time (the lazy package will import the "
                    "engine to serve it); import the defining module "
                    "lazily instead" % (target, alias),
                )


@register
class LayerContractRule(Rule):
    """REP311: every eager import obeys the declared layer DAG."""

    id = "REP311"
    title = "layer-contract"
    severity = "error"
    category = "layering"
    scope = "project"
    invariant = (
        "The committed .reprolint.toml declares the layer DAG "
        "(engine -> checksums -> store -> telemetry -> cli); the "
        "declaration is acyclic and every eager import in the "
        "project follows a declared edge."
    )

    def check_project(self, ctx):
        contract = ctx.contract
        if contract is None:
            return
        cycle = contract.find_cycle()
        if cycle is not None:
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=Path(contract.path).name,
                line=0,
                col=0,
                message="declared layer graph has a cycle: %s -- the "
                        "contract must be a DAG before imports can be "
                        "held to it" % " -> ".join(cycle),
                snippet="[contract.allowed]",
            )
            return
        for module in ctx.project.modules():
            try:
                tree = module.tree
            except SyntaxError:
                continue
            source_layer = contract.layer_of(module.name)
            if source_layer is None:
                continue
            for node, target, alias, is_from in iter_imports(
                tree, module_scope_only=not contract.include_lazy,
            ):
                target_layer = contract.layer_of(target)
                if target_layer is None and is_from and alias:
                    # ``from repro import store`` imports a module even
                    # though the *from* target maps to no layer.
                    target_layer = contract.layer_of(
                        "%s.%s" % (target, alias) if target else alias)
                if target_layer is None:
                    continue
                if not contract.allows(source_layer, target_layer):
                    yield self.finding(
                        module, node,
                        "layer %r imports %s (layer %r) but the "
                        "contract declares no %s -> %s edge" % (
                            source_layer, target, target_layer,
                            source_layer, target_layer,
                        ),
                    )
