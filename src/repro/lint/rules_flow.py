"""Interprocedural flow rules: REP111, REP211, REP411.

These are the rules the single-module pass structurally cannot
express: a wall-clock read laundered through a helper into a result
serializer (REP111), a closure smuggled into a process pool through an
import and a module-level alias (REP211), and a store resource that
leaks when the statement after its acquisition raises (REP411).
REP111/REP211 run project-scope on the shared call graph; REP411 is a
per-function escape analysis and stays module-scope (and therefore
per-file cacheable).
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, dotted_name, register
from repro.lint.rules_concurrency import _submitted_callables

__all__ = [
    "ExceptionPathResourceRule",
    "InterproceduralTaintRule",
    "TransitivePicklabilityRule",
]

#: Human names for the dataflow taint kinds.
_KIND_LABELS = {
    "entropy": "unseeded entropy",
    "wallclock": "the wall clock",
}

#: Marker used by the dataflow engine for symbolic parameter taint.
_PARAM_KIND = "param:"


@register
class InterproceduralTaintRule(Rule):
    """REP111: no entropy/wall-clock reaches a result path via helpers."""

    id = "REP111"
    title = "interprocedural-taint"
    severity = "error"
    category = "determinism"
    scope = "project"
    invariant = (
        "No unseeded randomness or wall-clock value flows through "
        "any chain of project function calls into a serializer or "
        "json.dump sink in a deterministic package; helpers cannot "
        "launder what REP101/REP102 forbid directly."
    )

    def check_project(self, ctx):
        dataflow = ctx.dataflow
        for record in ctx.callgraph.functions():
            module = record.module
            if not ctx.config.is_deterministic(module.name):
                continue
            if ctx.config.is_serializer_name(record.name.lstrip("_")):
                yield from self._check_serializer(
                    module, record, dataflow)
            yield from self._check_json_sinks(module, record, dataflow)

    def _check_serializer(self, module, record, dataflow):
        summary = dataflow.summary(record.qid)
        if summary is None:
            return
        for kind in sorted(summary.returns):
            origin = summary.returns[kind]
            if not origin.via:
                continue  # direct source calls are REP101/REP102 turf
            node = origin.node if origin.node is not None else record.node
            yield self.finding(
                module, node,
                "serializer %s() returns a value tainted by %s "
                "(%s%s); derive it from the run seed or take it as "
                "an argument" % (
                    record.name, _KIND_LABELS.get(kind, kind),
                    origin.description, origin.route(),
                ),
            )

    def _check_json_sinks(self, module, record, dataflow):
        env = None
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func) or ""
            if chain.split(".")[-1] not in ("dump", "dumps") \
                    or not chain.startswith("json."):
                continue
            if env is None:
                env = dataflow.function_env(record)
            for arg in node.args:
                taints = dataflow.expr_taint(record, arg, env)
                for kind in sorted(taints):
                    origin = taints[kind]
                    if kind.startswith(_PARAM_KIND) or not origin.via:
                        continue
                    where = origin.node if origin.node is not None \
                        else node
                    yield self.finding(
                        module, where,
                        "%s in %s() feeds json.%s a value tainted by "
                        "%s (%s%s)" % (
                            "argument", record.name,
                            chain.split(".")[-1],
                            _KIND_LABELS.get(kind, kind),
                            origin.description, origin.route(),
                        ),
                    )


@register
class TransitivePicklabilityRule(Rule):
    """REP211: the transitive closure of pool submissions pickles."""

    id = "REP211"
    title = "transitive-picklability"
    severity = "error"
    category = "concurrency"
    scope = "project"
    invariant = (
        "Everything reachable from a SupervisedPool submission "
        "pickles: the submitted callable resolves to a module-level "
        "function even across imports and aliases, its payload "
        "arguments are statically picklable, and no worker "
        "transitively submits to another pool."
    )

    def check_project(self, ctx):
        callgraph = ctx.callgraph
        submitters = self._submitting_functions(ctx)
        for module in ctx.project.modules():
            try:
                tree = module.tree
            except SyntaxError:
                continue
            for call, target in _submitted_callables(tree, ctx.config):
                resolved = callgraph.resolve_callable(module, target)
                if resolved is not None and resolved.crossed \
                        and resolved.kind in ("lambda", "nested"):
                    shape = "a lambda" if resolved.kind == "lambda" \
                        else "a nested function"
                    hops = ""
                    if resolved.via:
                        hops = " (resolved through %s)" % " -> ".join(
                            "%s.%s" % qid for qid in resolved.via)
                    yield self.finding(
                        module, call,
                        "pool submission resolves to %s defined in %s"
                        "%s; closures do not pickle no matter how "
                        "many modules they hide behind" % (
                            shape,
                            resolved.module.name if resolved.module
                            else "another module",
                            hops,
                        ),
                    )
                yield from self._check_payload(module, call)
                if resolved is not None and resolved.kind == "function" \
                        and resolved.record is not None:
                    worker = resolved.record.qid
                    nested = sorted(
                        callgraph.reachable(worker) & submitters)
                    if nested:
                        yield self.finding(
                            module, call,
                            "worker %s.%s transitively submits to a "
                            "process pool (via %s.%s); nested pools "
                            "deadlock under SupervisedPool's "
                            "worker-count budget" % (
                                *worker, *nested[0],
                            ),
                        )

    @staticmethod
    def _submitting_functions(ctx):
        """qids of functions whose body performs a pool submission."""
        submitters = set()
        for record in ctx.callgraph.functions():
            for _call, _target in _submitted_callables(
                    record.node, ctx.config):
                submitters.add(record.qid)
                break
        return submitters

    def _check_payload(self, module, call):
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "submit"):
            return  # constructor kwargs are pool config, not payload
        payload = list(call.args[1:]) + [
            kw.value for kw in call.keywords if kw.arg not in ("fn",)
        ]
        for arg in payload:
            reason = _unpicklable_reason(arg)
            if reason is not None:
                yield self.finding(
                    module, arg,
                    "pool payload argument is %s; it cannot cross the "
                    "process boundary -- pass plain data and rebuild "
                    "it worker-side" % reason,
                )


#: Constructors whose instances never pickle (OS handles, locks).
_UNPICKLABLE_CONSTRUCTORS = {
    "Lock": "a threading lock",
    "RLock": "a threading lock",
    "Condition": "a threading condition",
    "Event": "a threading event",
    "Semaphore": "a threading semaphore",
    "BoundedSemaphore": "a threading semaphore",
}


def _unpicklable_reason(expr):
    """Why ``expr`` can never pickle, or None if it might."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(expr, ast.Call):
        chain = dotted_name(expr.func) or ""
        leaf = chain.rsplit(".", 1)[-1]
        if leaf == "open":
            return "an open file handle"
        if leaf in _UNPICKLABLE_CONSTRUCTORS:
            return _UNPICKLABLE_CONSTRUCTORS[leaf]
    return None


#: Leaf callee names that acquire a resource needing explicit close.
_ACQUIRE_LEAVES = {"open", "open_backend", "open_store", "connect"}

#: Class-name suffixes whose constructor acquires a closeable.
_ACQUIRE_SUFFIXES = ("Backend", "Client", "Connection", "Pool")

#: Method names recognised as releasing the resource.
_CLOSE_METHODS = {"close", "release", "shutdown", "disconnect"}


@register
class ExceptionPathResourceRule(Rule):
    """REP411: store resources are released on exception paths."""

    id = "REP411"
    title = "exception-path-resource"
    severity = "error"
    category = "crash-consistency"
    scope = "module"
    invariant = (
        "Every backend/connection/handle a store function acquires "
        "and keeps local is released on *every* path: a with block, "
        "or a close in a finally -- an exception between acquire and "
        "close must not leak the handle a retrying caller will "
        "re-acquire."
    )

    def check(self, module, ctx):
        if not ctx.config.is_store(module.name):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, func)

    def _check_function(self, module, func):
        protected = _finally_protected_nodes(func)
        acquisitions = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            what = _acquisition_kind(node.value)
            if what is not None:
                acquisitions.append(
                    (node, node.targets[0].id, what))
        for assign, name, what in acquisitions:
            if self._escapes(func, assign, name):
                continue
            closes = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLOSE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ]
            if not closes:
                yield self.finding(
                    module, assign,
                    "%s %r acquired in %s() is never closed; an "
                    "exception after this line leaks it" % (
                        what, name, func.name,
                    ),
                )
            elif not any(id(close) in protected for close in closes):
                yield self.finding(
                    module, assign,
                    "%s %r acquired in %s() is closed only on the "
                    "success path; move the close into a finally "
                    "block (or use a with statement)" % (
                        what, name, func.name,
                    ),
                )

    @staticmethod
    def _escapes(func, assign, name):
        """True if ``name`` leaves the function's custody.

        Returned, yielded, stored on an object, aliased, put in a
        container, or passed as a call argument: in every case the
        close obligation moved elsewhere and this rule stays quiet.
        Using the resource as a method/attribute *receiver*
        (``conn.request(...)``) is not an escape -- that is just
        using it.
        """
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None \
                    and _escaping_use(node.value, name):
                return True
            if isinstance(node, ast.Assign) and node is not assign:
                if _escaping_use(node.value, name):
                    return True  # aliased or stored into a structure
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and _escaping_use(target.value, name):
                        return True
            if isinstance(node, ast.Call):
                for arg in (*node.args,
                            *(kw.value for kw in node.keywords)):
                    if _escaping_use(arg, name):
                        return True
        return False


def _escaping_use(expr, name):
    """True if ``name`` occurs in ``expr`` outside receiver position.

    ``conn`` in ``conn.request(path)`` or ``conn.sock`` is a use, not
    a transfer of custody; ``conn`` bare -- in a return, a container,
    a call argument -- hands the close obligation to someone else.
    """
    receivers = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name:
            receivers.add(id(node.value))
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == name \
                and id(node) not in receivers:
            return True
    return False


def _acquisition_kind(call):
    """What kind of closeable ``call`` creates, or None.

    Calls through ``self``/``cls`` are accessors, not acquisitions:
    the instance owns the resource lifecycle (it escaped to an
    attribute inside the method), and the class-level ``close()``
    carries the obligation.
    """
    chain = dotted_name(call.func)
    if chain is None:
        return None
    if chain.split(".", 1)[0] in ("self", "cls"):
        return None
    leaf = chain.rsplit(".", 1)[-1]
    if leaf.lstrip("_") in _ACQUIRE_LEAVES:
        return "handle from %s()" % leaf
    if leaf[:1].isupper() and leaf.endswith(_ACQUIRE_SUFFIXES):
        return "%s instance" % leaf
    return None


def _finally_protected_nodes(func):
    """ids of nodes inside any ``finally`` or ``except`` block."""
    protected = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for child in ast.walk(stmt):
                    protected.add(id(child))
            for handler in node.handlers:
                for stmt in handler.body:
                    for child in ast.walk(stmt):
                        protected.add(id(child))
    return protected
