"""Incremental lint cache: skip modules whose content is unchanged.

The cache is a single JSON file with one entry per module, keyed by
the module's dotted name and guarded by the sha256 of its raw bytes.
A warm run hashes every file (cheap), replays the stored findings for
hits, and only parses + re-lints the misses.  Project-scope results
(call-graph rules, the layer contract, REP601) are guarded by a hash
over *all* module content hashes, so any edit anywhere re-runs the
whole-program phase -- interprocedural results are never replayed
against a project they were not computed on.

Every entry is additionally guarded by a **selection hash** covering
the lint configuration, the selected rule ids, the layer contract,
and the sha256 of this package's own sources.  Editing a rule -- or
this file -- invalidates everything; there is no version constant to
forget to bump.

Findings are stored pre-baseline (``baselined`` is stripped), so the
committed baseline can change without invalidating the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["CACHE_SCHEMA", "LintCache"]

CACHE_SCHEMA = "repro-lint-cache/1"

_package_digest_memo = None


def _package_digest():
    """sha256 over this package's source files (rule-change guard)."""
    global _package_digest_memo
    if _package_digest_memo is None:
        digest = hashlib.sha256()
        for path in sorted(Path(__file__).resolve().parent.glob("*.py")):
            digest.update(path.name.encode("utf-8"))
            digest.update(path.read_bytes())
        _package_digest_memo = digest.hexdigest()
    return _package_digest_memo


def _encode_findings(findings):
    encoded = []
    for finding in findings:
        payload = finding.to_dict()
        payload.pop("baselined", None)
        encoded.append(payload)
    return encoded


def _decode_findings(payloads):
    return [Finding.from_dict(dict(payload)) for payload in payloads]


class LintCache:
    """Persistent per-file + per-project lint result cache."""

    def __init__(self, path):
        self.path = Path(path)
        self._payload = None
        self._selection = None
        self._dirty = False

    # -- lifecycle ---------------------------------------------------------

    def begin(self, config, selected_ids, contract):
        """Load the file and discard it if the selection changed."""
        self._selection = self._selection_hash(
            config, selected_ids, contract)
        payload = None
        if self.path.is_file():
            try:
                payload = json.loads(
                    self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None  # corrupt cache == cold cache
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("selection") != self._selection
        ):
            payload = {
                "schema": CACHE_SCHEMA,
                "selection": self._selection,
                "modules": {},
                "project": None,
            }
            self._dirty = True
        self._payload = payload

    def save(self):
        """Atomically persist (write-temp, then ``os.replace``)."""
        if not self._dirty or self._payload is None:
            return
        text = json.dumps(self._payload, indent=1, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False

    @staticmethod
    def _selection_hash(config, selected_ids, contract):
        digest = hashlib.sha256()
        digest.update(repr(config).encode("utf-8"))
        digest.update(",".join(sorted(selected_ids)).encode("utf-8"))
        digest.update(repr(contract).encode("utf-8"))
        digest.update(_package_digest().encode("utf-8"))
        return digest.hexdigest()

    # -- hashing -----------------------------------------------------------

    @staticmethod
    def content_hash(module):
        """sha256 of the module's raw bytes; primes the lazy source."""
        raw = module.path.read_bytes()
        if module._source is None:
            try:
                module._source = raw.decode("utf-8")
            except UnicodeDecodeError:
                pass  # let ModuleInfo.source raise on its own terms
        return hashlib.sha256(raw).hexdigest()

    @staticmethod
    def project_hash(content_hashes):
        """One hash over every module's (name, content hash)."""
        digest = hashlib.sha256()
        for name in sorted(content_hashes):
            digest.update(name.encode("utf-8"))
            digest.update(content_hashes[name].encode("utf-8"))
        return digest.hexdigest()

    # -- module entries ----------------------------------------------------

    def get_module(self, name, content_hash):
        entry = self._payload["modules"].get(name)
        if not entry or entry.get("hash") != content_hash:
            return None
        return (
            _decode_findings(entry["findings"]),
            entry["suppressed"],
            {(rule, line) for rule, line in entry["usage"]},
        )

    def put_module(self, name, content_hash, findings, suppressed, usage):
        self._payload["modules"][name] = {
            "hash": content_hash,
            "findings": _encode_findings(findings),
            "suppressed": suppressed,
            "usage": sorted([rule, line] for rule, line in usage),
        }
        self._dirty = True

    # -- the whole-program phase -------------------------------------------

    def get_project(self, project_hash):
        entry = self._payload.get("project")
        if not entry or entry.get("hash") != project_hash:
            return None
        usage_map = {
            relpath: {(rule, line) for rule, line in events}
            for relpath, events in entry["usage"].items()
        }
        return (
            _decode_findings(entry["findings"]),
            entry["suppressed"],
            usage_map,
        )

    def put_project(self, project_hash, findings, suppressed, usage_map):
        self._payload["project"] = {
            "hash": project_hash,
            "findings": _encode_findings(findings),
            "suppressed": suppressed,
            "usage": {
                relpath: sorted([rule, line] for rule, line in events)
                for relpath, events in usage_map.items()
            },
        }
        self._dirty = True
