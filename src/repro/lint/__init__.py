"""``repro.lint``: domain-aware static analysis for this repository.

The paper's headline numbers (CRC-32 at ~2^-32 versus an Internet
checksum 10-100x worse than 2^-16) are only trustworthy if every
splice sweep is bit-reproducible.  The invariants that guarantee that
-- seeded randomness, picklable worker payloads, parent-side telemetry
accounting, fsync-ordered store renames, lazy-import discipline, and
the :class:`~repro.checksums.registry.ChecksumAlgorithm` protocol --
were previously enforced by convention alone.  This package enforces
them with an AST pass, the way Koopman's checksum papers recommend
catching width/modulus/byte-order slips *before* they corrupt a
measurement.

Layout:

* :mod:`repro.lint.findings`  -- the :class:`Finding` record.
* :mod:`repro.lint.config`    -- :class:`LintConfig`, the policy knobs.
* :mod:`repro.lint.pragmas`   -- ``# reprolint: disable=RULE`` parsing.
* :mod:`repro.lint.engine`    -- project scanner, rule registry, runner.
* :mod:`repro.lint.callgraph` -- import graph + intra-project call graph.
* :mod:`repro.lint.dataflow`  -- forward taint summaries over the graph.
* :mod:`repro.lint.cache`     -- incremental per-file result cache.
* :mod:`repro.lint.baseline`  -- committed-baseline load/store/match.
* :mod:`repro.lint.reporters` -- text / JSON / markdown / SARIF renderers.
* ``repro.lint.rules_*``      -- the rule catalogue (REP1xx-REP6xx).

Entry points: ``repro-checksums lint`` (the CLI), ``make lint``, and
:func:`run_lint` for programmatic use (the test suite's self-check).

Exports resolve lazily (PEP 562) so that importing :mod:`repro.lint`
from the CLI costs nothing until a lint actually runs -- the same
discipline rule REP303 enforces on everyone else.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "BASELINE_SCHEMA": "repro.lint.baseline",
    "CallGraph": "repro.lint.callgraph",
    "DataflowAnalysis": "repro.lint.dataflow",
    "Finding": "repro.lint.findings",
    "LayerContract": "repro.lint.config",
    "LintCache": "repro.lint.cache",
    "LintConfig": "repro.lint.config",
    "LintResult": "repro.lint.engine",
    "REPORT_SCHEMA": "repro.lint.reporters",
    "all_rules": "repro.lint.engine",
    "findings_from_json": "repro.lint.reporters",
    "load_baseline": "repro.lint.baseline",
    "load_baseline_entries": "repro.lint.baseline",
    "load_contract": "repro.lint.config",
    "render_json": "repro.lint.reporters",
    "render_markdown": "repro.lint.reporters",
    "render_sarif": "repro.lint.reporters",
    "render_text": "repro.lint.reporters",
    "run_lint": "repro.lint.engine",
    "write_baseline": "repro.lint.baseline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
