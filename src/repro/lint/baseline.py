"""The committed lint baseline: legacy findings that do not fail CI.

A baseline entry is a fingerprint (rule + file + source line text +
occurrence index -- deliberately *not* the line number, so unrelated
edits above a finding do not un-baseline it).  ``repro-checksums lint
--fix-baseline`` rewrites the file from the current findings;
anything not in the file fails the run.

The file is JSON so diffs review well; entries carry the location at
capture time purely as a human aid.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BASELINE_SCHEMA",
    "apply_baseline",
    "fingerprint_findings",
    "load_baseline",
    "load_baseline_entries",
    "write_baseline",
]

BASELINE_SCHEMA = "repro-lint-baseline/1"


def fingerprint_findings(findings):
    """``fingerprint -> finding`` with per-duplicate occurrence counts."""
    counts = {}
    result = {}
    for finding in sorted(findings, key=lambda f: f.sort_key()):
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        result[finding.fingerprint(occurrence)] = finding
    return result


def write_baseline(findings, path):
    """Write ``findings`` as the new baseline at ``path``."""
    entries = {
        fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for fingerprint, finding in fingerprint_findings(findings).items()
    }
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
    return len(entries)


def load_baseline(path):
    """The fingerprint set at ``path`` (empty if the file is absent)."""
    return set(load_baseline_entries(path))


def load_baseline_entries(path):
    """``fingerprint -> entry dict`` at ``path`` (empty if absent).

    Entries keep the capture-time ``rule``/``path``/``line``/
    ``message`` -- the hygiene rule (REP601) uses them to describe
    stale baseline entries in human terms.
    """
    path = Path(path)
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            "unsupported baseline schema %r (expected %r)"
            % (schema, BASELINE_SCHEMA)
        )
    return dict(payload.get("findings", {}))


def apply_baseline(findings, fingerprints):
    """Mark findings whose fingerprint is baselined.

    Returns the set of baseline fingerprints that matched a current
    finding -- the complement (loaded minus matched) is exactly the
    stale entries REP601 reports.
    """
    matched = set()
    for fingerprint, finding in fingerprint_findings(findings).items():
        if fingerprint in fingerprints:
            finding.baselined = True
            matched.add(fingerprint)
    return matched
