"""``# reprolint:`` suppression pragmas.

Two scopes:

* ``# reprolint: disable=REP101[,REP102]`` -- trailing a code line it
  suppresses those rules on that line; on a comment-only line it
  suppresses them on the *next* line (so a justification can ride
  above the code it excuses).
* ``# reprolint: disable-file=REP103`` -- anywhere in the file,
  suppresses the rules for the whole file.

``disable=all`` suppresses every rule in the chosen scope.  Pragmas
are recognised only in genuine comment tokens (via ``tokenize``), so
prose *about* the pragma syntax -- like this docstring -- never
registers as a suppression; on source that will not tokenize the
parser falls back to raw line scanning so broken files keep their
pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["PragmaDeclaration", "PragmaIndex"]

_PRAGMA_RE = re.compile(
    # A prose justification may precede the marker inside the same
    # comment; the search anchors on the "reprolint" word wherever
    # it sits in the comment text.
    r"#.*?\breprolint:\s*(?P<scope>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+)"
)

#: Sentinel meaning "every rule".
_ALL = "all"


class PragmaDeclaration:
    """One ``# reprolint:`` comment as written in the source.

    The suppression *index* answers lookups; declarations preserve the
    author's intent -- which rules, at which line, shielding which
    target lines -- so the hygiene rule (REP601) can ask whether a
    pragma still suppresses anything.
    """

    __slots__ = ("lineno", "scope", "rules", "targets")

    def __init__(self, lineno, scope, rules, targets):
        #: 1-based line the pragma comment sits on.
        self.lineno = lineno
        #: ``"file"`` or ``"line"``.
        self.scope = scope
        #: The rule ids named (upper-cased), or ``{"all"}``.
        self.rules = frozenset(rules)
        #: Lines this pragma shields (empty for file scope).
        self.targets = frozenset(targets)


class PragmaIndex:
    """Per-file index answering "is rule R suppressed at line N?"."""

    def __init__(self):
        #: rule ids disabled for the whole file (or {"all"}).
        self.file_disables = set()
        #: line (1-based) -> set of rule ids (or {"all"}).
        self.line_disables = {}
        #: Every pragma as written, in file order (REP601 material).
        self.declarations = []

    @classmethod
    def from_source(cls, source):
        index = cls()
        for lineno, text, comment in _comments(source):
            match = _PRAGMA_RE.search(comment)
            if match is None:
                continue
            rules = {
                token.strip().upper() if token.strip().lower() != _ALL
                else _ALL
                for token in match.group("rules").split(",")
                if token.strip()
            }
            if match.group("scope") == "disable-file":
                index.file_disables |= rules
                index.declarations.append(
                    PragmaDeclaration(lineno, "file", rules, ()))
            else:
                # A comment-only pragma shields the following line.
                target = lineno
                if text.lstrip().startswith("#"):
                    target = lineno + 1
                index.line_disables.setdefault(target, set()).update(rules)
                # The trailing form also shields its own line even when
                # the pragma is the only thing on it -- harmless.
                index.line_disables.setdefault(lineno, set()).update(rules)
                index.declarations.append(
                    PragmaDeclaration(lineno, "line", rules,
                                      {lineno, target}))
        return index

    def suppressed(self, rule_id, line):
        """True if ``rule_id`` is disabled at ``line``."""
        rule_id = rule_id.upper()
        if _ALL in self.file_disables or rule_id in self.file_disables:
            return True
        at_line = self.line_disables.get(line, ())
        return _ALL in at_line or rule_id in at_line


def _comments(source):
    """Yield ``(lineno, full_line, comment_text)`` for real comments.

    Tokenizing keeps docstring prose that merely *mentions* the pragma
    syntax from registering as a suppression.  Source that fails to
    tokenize (the REP000 case) degrades to raw line scanning so a
    half-edited file keeps its pragmas.
    """
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError,
            ValueError):
        for lineno, text in enumerate(lines, start=1):
            yield lineno, text, text
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            lineno = token.start[0]
            text = lines[lineno - 1] if lineno <= len(lines) else ""
            yield lineno, text, token.string
