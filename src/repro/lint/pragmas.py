"""``# reprolint:`` suppression pragmas.

Two scopes:

* ``# reprolint: disable=REP101[,REP102]`` -- trailing a code line it
  suppresses those rules on that line; on a comment-only line it
  suppresses them on the *next* line (so a justification can ride
  above the code it excuses).
* ``# reprolint: disable-file=REP103`` -- anywhere in the file,
  suppresses the rules for the whole file.

``disable=all`` suppresses every rule in the chosen scope.  Pragmas
are parsed from raw source lines (not the AST) so they work in any
position a comment can appear.
"""

from __future__ import annotations

import re

__all__ = ["PragmaIndex"]

_PRAGMA_RE = re.compile(
    # The pragma may trail a prose justification inside the same
    # comment: ``# span order is meaningful.  reprolint: disable=REP103``.
    r"#.*?\breprolint:\s*(?P<scope>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+)"
)

#: Sentinel meaning "every rule".
_ALL = "all"


class PragmaIndex:
    """Per-file index answering "is rule R suppressed at line N?"."""

    def __init__(self):
        #: rule ids disabled for the whole file (or {"all"}).
        self.file_disables = set()
        #: line (1-based) -> set of rule ids (or {"all"}).
        self.line_disables = {}

    @classmethod
    def from_source(cls, source):
        index = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = {
                token.strip().upper() if token.strip().lower() != _ALL
                else _ALL
                for token in match.group("rules").split(",")
                if token.strip()
            }
            if match.group("scope") == "disable-file":
                index.file_disables |= rules
            else:
                # A comment-only pragma shields the following line.
                target = lineno
                if text.lstrip().startswith("#"):
                    target = lineno + 1
                index.line_disables.setdefault(target, set()).update(rules)
                # The trailing form also shields its own line even when
                # the pragma is the only thing on it -- harmless.
                index.line_disables.setdefault(lineno, set()).update(rules)
        return index

    def suppressed(self, rule_id, line):
        """True if ``rule_id`` is disabled at ``line``."""
        rule_id = rule_id.upper()
        if _ALL in self.file_disables or rule_id in self.file_disables:
            return True
        at_line = self.line_disables.get(line, ())
        return _ALL in at_line or rule_id in at_line
