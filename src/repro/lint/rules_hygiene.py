"""Suppression hygiene: REP601.

Pragmas and baseline entries are debt with a justification attached;
both go stale silently when the code they excuse is fixed or deleted.
REP601 closes the loop: a ``# reprolint: disable=`` pragma that
suppressed nothing this run, or one naming a rule id that does not
exist, is itself a finding.  (The stale-*baseline* half lives in the
runner -- staleness is only knowable after baseline matching -- but
reports under this same rule id.)

The rule runs project-scope and *last* (registry order is lexicographic
by id), so it observes every suppression the other rules triggered,
including those from other project-scope rules.
"""

from __future__ import annotations

from repro.lint.engine import Rule, all_rules, register

__all__ = ["StaleSuppressionRule"]


class _Anchor:
    """A minimal node stand-in so ``Rule.finding`` can anchor pragmas."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno):
        self.lineno = lineno
        self.col_offset = 0


@register
class StaleSuppressionRule(Rule):
    """REP601: every pragma suppresses something; every id is real."""

    id = "REP601"
    title = "stale-suppression"
    severity = "warning"
    category = "hygiene"
    scope = "project"
    invariant = (
        "Every committed suppression still earns its keep: each "
        "pragma silenced at least one finding this run, names only "
        "real rule ids, and no baseline entry outlives the finding "
        "it excused."
    )

    def check_project(self, ctx):
        known = {rule.id for rule in all_rules()}
        for module in ctx.project.modules():
            try:
                pragmas = module.pragmas
            except (OSError, UnicodeDecodeError):  # pragma: no cover
                continue
            usage = ctx.suppression_usage.get(module.relpath, set())
            used_anywhere = {rule_id for rule_id, _line in usage}
            for declaration in pragmas.declarations:
                yield from self._check_declaration(
                    module, declaration, known, usage, used_anywhere,
                    ctx.selected_ids,
                )

    def _check_declaration(self, module, declaration, known, usage,
                           used_anywhere, selected_ids):
        for rule_id in sorted(declaration.rules):
            if rule_id == "all":
                continue  # blanket disable: usage is unknowable
            if rule_id not in known:
                yield self.finding(
                    module, _Anchor(declaration.lineno),
                    "pragma names unknown rule id %s; it suppresses "
                    "nothing (valid ids: %s)" % (
                        rule_id, ", ".join(sorted(known)),
                    ),
                )
                continue
            if rule_id == self.id:
                # A REP601 pragma exists to silence *this* rule on a
                # neighbouring declaration; judging it would recurse.
                continue
            if rule_id not in selected_ids:
                continue  # a --rules subset cannot prove staleness
            if declaration.scope == "file":
                stale = rule_id not in used_anywhere
            else:
                stale = not any(
                    used_rule == rule_id and line in declaration.targets
                    for used_rule, line in usage
                )
            if stale:
                yield self.finding(
                    module, _Anchor(declaration.lineno),
                    "pragma disable=%s suppressed nothing this run; "
                    "the finding it excused is gone -- delete the "
                    "pragma" % rule_id,
                )
