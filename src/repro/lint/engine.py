"""Project scanner, rule registry, and the lint runner.

The engine walks one or more source roots, derives a dotted module
name for every ``.py`` file (``src/repro/core/engine.py`` under root
``src`` becomes ``repro.core.engine``), parses each file once, and
hands the tree to every registered rule.  Rules are small classes with
a ``check(module, ctx)`` generator; cross-module rules (the protocol
conformance check) reach sibling modules through
:meth:`Project.get`.

Findings then pass through two suppression layers: inline
``# reprolint: disable=`` pragmas (dropped entirely) and the committed
baseline (kept, but flagged ``baselined`` and exempt from failing the
run).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.baseline import apply_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.pragmas import PragmaIndex

__all__ = [
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "RuleContext",
    "all_rules",
    "register",
    "run_lint",
]


class ModuleInfo:
    """One scanned source file: path, dotted name, source, lazy AST."""

    def __init__(self, name, path, root):
        self.name = name
        self.path = Path(path)
        self.root = Path(root)
        self._source = None
        self._tree = None
        self._pragmas = None

    @property
    def relpath(self):
        try:
            return self.path.relative_to(self.root).as_posix()
        except ValueError:  # pragma: no cover - absolute fallback
            return self.path.as_posix()

    @property
    def source(self):
        if self._source is None:
            self._source = self.path.read_text(encoding="utf-8")
        return self._source

    @property
    def lines(self):
        return self.source.splitlines()

    def line_at(self, lineno):
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    @property
    def tree(self):
        """The parsed AST (raises ``SyntaxError`` on broken source)."""
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def pragmas(self):
        if self._pragmas is None:
            self._pragmas = PragmaIndex.from_source(self.source)
        return self._pragmas


class Project:
    """Module-name -> :class:`ModuleInfo` map over the scan roots."""

    def __init__(self, roots):
        self.roots = [Path(root) for root in roots]
        self._modules = {}
        for root in self.roots:
            self._discover(root)

    def _discover(self, root):
        if root.is_file():
            # A single file scans as its bare stem (no package context).
            self._add(root.stem, root, root.parent)
            return
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root)
            parts = list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            if not parts:
                continue
            self._add(".".join(parts), path, root)

    def _add(self, name, path, root):
        self._modules.setdefault(name, ModuleInfo(name, path, root))

    def get(self, name):
        """The :class:`ModuleInfo` for ``name``, or None."""
        return self._modules.get(name)

    def modules(self):
        """Every scanned module, sorted by dotted name."""
        return [self._modules[name] for name in sorted(self._modules)]

    def __len__(self):
        return len(self._modules)


class RuleContext:
    """What a rule sees besides the module under inspection."""

    def __init__(self, project, config, contract=None):
        self.project = project
        self.config = config
        #: The declared layer contract (:class:`LayerContract`) or None.
        self.contract = contract
        #: Rule ids selected for this run (REP601 staleness scope).
        self.selected_ids = frozenset()
        #: relpath -> {(rule_id, line)} of pragma suppressions that
        #: actually fired this run (REP601 staleness evidence).
        self.suppression_usage = {}
        self._callgraph = None
        self._dataflow = None

    @property
    def callgraph(self):
        """The project call graph, built once per run on first use."""
        if self._callgraph is None:
            from repro.lint.callgraph import CallGraph

            self._callgraph = CallGraph(self.project)
        return self._callgraph

    @property
    def dataflow(self):
        """Taint summaries over :attr:`callgraph`, built on first use."""
        if self._dataflow is None:
            from repro.lint.dataflow import DataflowAnalysis

            self._dataflow = DataflowAnalysis(
                self.callgraph,
                sanitizer_markers=self.config.sanitizer_markers,
            )
        return self._dataflow


class Rule:
    """Base class: subclasses define the class attributes and ``check``.

    ``check(module, ctx)`` yields :class:`Finding` records; use
    :meth:`finding` so paths/snippets/severities stay uniform.
    """

    id = "REP000"
    title = "untitled rule"
    severity = "error"
    category = "general"
    #: One sentence: the invariant this rule guards (docs render this).
    invariant = ""
    #: ``"module"`` rules see one file at a time and cache per file;
    #: ``"project"`` rules run once over the whole scan (call graphs,
    #: cross-module resolution, contracts) and cache per project hash.
    scope = "module"

    def check(self, module, ctx):  # pragma: no cover - interface
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator

    def check_project(self, ctx):
        """Project-scope entry point; defaults to per-module ``check``.

        Rules that genuinely need the whole project (flow rules, the
        layer contract) override this; converted cross-module rules
        (REP501) keep their ``check`` and inherit this driver.
        """
        for module in ctx.project.modules():
            try:
                module.tree
            except SyntaxError:  # REP000 already reported by the runner
                continue
            yield from self.check(module, ctx)

    def finding(self, module, node, message, severity=None):
        line = getattr(node, "lineno", 0) or 0
        col = getattr(node, "col_offset", 0) or 0
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=module.line_at(line),
        )


_REGISTRY = {}


def register(rule_class):
    """Class decorator adding a rule to the global registry."""
    rule = rule_class()
    if rule.id in _REGISTRY and type(_REGISTRY[rule.id]) is not rule_class:
        raise ValueError("duplicate rule id %s" % rule.id)
    _REGISTRY[rule.id] = rule
    return rule_class


def _load_builtin_rules():
    # Import for the registration side effect; keep this list in sync
    # with the rule modules shipped in this package.
    from repro.lint import (  # noqa: F401  (side-effect imports)
        rules_concurrency,
        rules_determinism,
        rules_flow,
        rules_hygiene,
        rules_integrity,
        rules_layering,
        rules_performance,
    )


def all_rules():
    """Every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


class LintResult:
    """Everything one lint run produced."""

    def __init__(self, findings, files_scanned, suppressed, rules,
                 cache_hits=0, cache_misses=0):
        #: All findings (baselined ones included), sorted by location.
        self.findings = sorted(findings, key=lambda f: f.sort_key())
        self.files_scanned = files_scanned
        #: Count of findings silenced by inline pragmas.
        self.suppressed = suppressed
        self.rules = rules
        #: Modules replayed from / recomputed into the incremental
        #: cache (both zero when no cache was supplied).
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses

    @property
    def active(self):
        """Findings not excused by the baseline."""
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined(self):
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self):
        return 1 if self.active else 0

    def counts_by_rule(self):
        counts = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def run_lint(paths, config=None, rules=None, baseline=None,
             cache=None, contract=None, baseline_path=None):
    """Lint ``paths`` and return a :class:`LintResult`.

    ``paths`` are source roots (directories) or single files;
    ``rules`` restricts to an iterable of rule ids; ``baseline`` is a
    fingerprint set from :func:`repro.lint.baseline.load_baseline` or
    the richer ``fingerprint -> entry`` mapping from
    :func:`~repro.lint.baseline.load_baseline_entries`; ``cache`` is a
    :class:`repro.lint.cache.LintCache` for incremental runs;
    ``contract`` is a :class:`repro.lint.config.LayerContract` (REP311
    is inert without one); ``baseline_path`` labels stale-baseline
    findings (REP601).
    """
    config = config or LintConfig()
    project = Project(paths)
    ctx = RuleContext(project, config, contract=contract)
    selected = all_rules()
    valid_ids = [rule.id for rule in selected]
    if rules is not None:
        wanted = {rule_id.upper() for rule_id in rules}
        unknown = wanted - set(valid_ids)
        if unknown:
            raise KeyError(
                "unknown rule id(s): %s (valid: %s)"
                % (", ".join(sorted(unknown)), ", ".join(valid_ids))
            )
        selected = [rule for rule in selected if rule.id in wanted]
    ctx.selected_ids = frozenset(rule.id for rule in selected)
    module_rules = [rule for rule in selected if rule.scope == "module"]
    project_rules = [rule for rule in selected if rule.scope == "project"]

    if cache is not None:
        cache.begin(config, ctx.selected_ids, contract)

    findings = []
    suppressed = 0
    hits = misses = 0
    content_hashes = {}
    for module in project.modules():
        content_hash = None
        if cache is not None:
            content_hash = cache.content_hash(module)
            content_hashes[module.name] = content_hash
            cached = cache.get_module(module.name, content_hash)
            if cached is not None:
                hits += 1
                module_findings, module_suppressed, usage = cached
                findings.extend(module_findings)
                suppressed += module_suppressed
                if usage:
                    ctx.suppression_usage.setdefault(
                        module.relpath, set()).update(usage)
                continue
            misses += 1
        module_findings, module_suppressed, usage = _check_module(
            module, module_rules, ctx)
        findings.extend(module_findings)
        suppressed += module_suppressed
        if usage:
            ctx.suppression_usage.setdefault(
                module.relpath, set()).update(usage)
        if cache is not None:
            cache.put_module(module.name, content_hash,
                             module_findings, module_suppressed, usage)

    cached_project = None
    if cache is not None and project_rules:
        project_hash = cache.project_hash(content_hashes)
        cached_project = cache.get_project(project_hash)
    if project_rules:
        if cached_project is not None:
            project_findings, project_suppressed, usage_map = cached_project
            findings.extend(project_findings)
            suppressed += project_suppressed
            for relpath, usage in usage_map.items():
                ctx.suppression_usage.setdefault(
                    relpath, set()).update(usage)
        else:
            project_findings, project_suppressed, usage_map = \
                _check_project(project_rules, ctx)
            findings.extend(project_findings)
            suppressed += project_suppressed
            if cache is not None:
                cache.put_project(project_hash, project_findings,
                                  project_suppressed, usage_map)

    if cache is not None:
        cache.save()

    if baseline:
        fingerprints = set(baseline)
        matched = apply_baseline(findings, fingerprints)
        stale = fingerprints - matched
        if stale and "REP601" in ctx.selected_ids:
            findings.extend(_stale_baseline_findings(
                stale, baseline, baseline_path))
    return LintResult(findings, len(project), suppressed, selected,
                      cache_hits=hits, cache_misses=misses)


def _check_module(module, rules, ctx):
    """Run module-scope ``rules`` on one file.

    Returns ``(findings, suppressed_count, usage)`` where ``usage`` is
    the set of ``(rule_id, line)`` suppressions that fired -- exactly
    the shape the incremental cache persists per content hash.
    """
    try:
        module.tree
    except SyntaxError as exc:
        broken = Finding(
            rule="REP000",
            severity="error",
            path=module.relpath,
            line=exc.lineno or 0,
            col=(exc.offset or 1) - 1,
            message="syntax error: %s" % exc.msg,
            snippet=module.line_at(exc.lineno or 0),
        )
        return [broken], 0, set()
    findings = []
    suppressed = 0
    usage = set()
    for rule in rules:
        for finding in rule.check(module, ctx):
            if module.pragmas.suppressed(finding.rule, finding.line):
                suppressed += 1
                usage.add((finding.rule, finding.line))
            else:
                findings.append(finding)
    return findings, suppressed, usage


def _check_project(rules, ctx):
    """Run project-scope ``rules`` once over the whole scan.

    Suppression usage merges into ``ctx.suppression_usage`` *as rules
    run* so REP601 -- last in registry order -- sees every suppression
    that fired, including those from other project rules.
    """
    by_relpath = {
        module.relpath: module for module in ctx.project.modules()
    }
    findings = []
    suppressed = 0
    usage_map = {}
    for rule in rules:
        for finding in rule.check_project(ctx):
            module = by_relpath.get(finding.path)
            if module is not None and module.pragmas.suppressed(
                    finding.rule, finding.line):
                suppressed += 1
                usage_map.setdefault(finding.path, set()).add(
                    (finding.rule, finding.line))
                ctx.suppression_usage.setdefault(
                    finding.path, set()).add(
                        (finding.rule, finding.line))
            else:
                findings.append(finding)
    return findings, suppressed, usage_map


def _stale_baseline_findings(stale, baseline, baseline_path):
    """REP601 findings for baseline entries no finding matched.

    Emitted by the runner (not the rule) because staleness is only
    known after :func:`apply_baseline`; gated on REP601 being in the
    selection so ``--rules`` runs stay scoped.
    """
    entries = baseline if isinstance(baseline, dict) else {}
    label = Path(baseline_path).name if baseline_path \
        else "reprolint-baseline"
    findings = []
    for fingerprint in sorted(stale):
        entry = entries.get(fingerprint) or {}
        detail = ""
        if entry:
            detail = " (%s at %s: %s)" % (
                entry.get("rule", "?"), entry.get("path", "?"),
                entry.get("message", "?"),
            )
        findings.append(Finding(
            rule="REP601",
            severity="warning",
            path=label,
            line=0,
            col=0,
            message="stale baseline entry %s%s: no current finding "
                    "matches it; re-run --fix-baseline"
                    % (fingerprint, detail),
            snippet=fingerprint,
        ))
    return findings


# ----------------------------------------------------------------------
# shared AST helpers (used by the rule modules)

def dotted_name(node):
    """``a.b.c`` for an Attribute/Name chain, or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_imports(tree, module_scope_only=False):
    """Yield ``(node, target, alias_name, is_from)`` for every import.

    ``target`` is the imported module (``a.b`` for both
    ``import a.b`` and ``from a.b import c``); ``alias_name`` is the
    bound name (``c``), or None for plain ``import``.  With
    ``module_scope_only`` nested (function/method-level, i.e. lazy)
    imports are skipped.
    """
    if module_scope_only:
        nodes = _module_scope_statements(tree)
    else:
        nodes = ast.walk(tree)
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name, None, False
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: outside our layer map
                continue
            for alias in node.names:
                yield node, node.module or "", alias.name, True


def _module_scope_statements(tree):
    """Statements executed at import time (module body, incl. try/if)."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.If, ast.Try, ast.With)):
            for field_name in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field_name, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    else:
                        stack.append(child)


def call_name(node):
    """The dotted callee of a Call node, or None."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def module_level_functions(tree):
    """Name -> FunctionDef for module-scope ``def``\\ s."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def nested_function_names(tree):
    """Names of functions defined *inside other functions* (closures)."""
    nested = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested
