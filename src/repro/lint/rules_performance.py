"""Performance rules: REP304.

The batch compute tier moved the splice hot path onto table-driven
CRC folds and numpy kernels (``repro.core.batch``,
``ChecksumAlgorithm.compute_many``); an innocent-looking per-cell
Python loop calling a scalar kernel silently undoes that 10-100x win
on a path no benchmark may happen to cover.  This rule pins the hot
modules to the batch tier statically.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, dotted_name, register

__all__ = ["ScalarHotLoopRule"]


@register
class ScalarHotLoopRule(Rule):
    """REP304: no scalar kernel calls inside hot-module loops."""

    id = "REP304"
    title = "scalar-hot-loop"
    severity = "error"
    category = "performance"
    invariant = (
        "Batch-hot modules (repro.core.engine, repro.core.fragsplice) "
        "never call a byte-at-a-time checksum kernel (compute, verify, "
        "word_sums, fletcher8, judge_splice*, ...) from inside a "
        "for/while loop -- per-item work there routes through the "
        "vectorized kernels of repro.core.batch; the deliberate "
        "scalar conformance path is annotated in place."
    )

    def check(self, module, ctx):
        if not ctx.config.is_batch_hot(module.name):
            return
        names = set(ctx.config.scalar_kernel_names)
        seen = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            # The body re-executes per iteration; a For's iterable is
            # evaluated once and is exempt.  A While's test also runs
            # per iteration, so it is included.
            nodes = list(loop.body)
            if isinstance(loop, ast.While):
                nodes.append(loop.test)
            for root in nodes:
                for node in ast.walk(root):
                    if not isinstance(node, ast.Call):
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    callee = dotted_name(node.func)
                    if callee is None:
                        continue
                    leaf = callee.rsplit(".", 1)[-1].lstrip("_")
                    if leaf not in names:
                        continue
                    seen.add(key)
                    yield self.finding(
                        module, node,
                        "scalar kernel %s() called inside a loop in a "
                        "batch-hot module; vectorize via repro.core."
                        "batch / compute_many, or annotate the "
                        "deliberate scalar reference path in place"
                        % callee,
                    )
