"""Loss-model weighting of the splice enumeration.

The paper notes (Section 4.6) that "our simulation treats every
possible substitution as equally likely.  This clearly might not be
true in all situations."  This module supplies the missing piece: the
probability that each enumerated splice actually *forms* under a given
cell-loss process, so the uniform per-splice counts can be re-weighted
into per-transmission probabilities.

Two observations fall out:

* under **independent** cell loss, every splice of an adjacent pair
  keeps exactly ``n2`` of the ``n1 + n2`` cells, so every splice is
  equally likely -- the paper's uniform treatment is exact for that
  channel;
* under **bursty** loss (the realistic ATM congestion case), weight
  concentrates on splices whose dropped cells are contiguous -- the
  prefix-plus-suffix splices -- which changes the mix of substitution
  lengths the checksum faces.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SpliceEngine
from repro.protocols.cellstream import GilbertLoss, IndependentLoss

__all__ = [
    "selection_keep_patterns",
    "splice_pattern_probabilities",
    "weighted_splice_rates",
]


def selection_keep_patterns(enum):
    """Keep/drop patterns over the wire for each enumerated splice.

    Returns an ``(S, n1 + n2)`` boolean array: True where the cell is
    delivered.  Wire order is the first frame's cells (its marked cell
    at index ``n1 - 1``, always dropped) followed by the second
    frame's (its marked cell always kept).
    """
    n1, n2 = enum.n1, enum.n2
    total = n1 + n2
    patterns = np.zeros((enum.splices, total), dtype=bool)
    if not enum.splices:
        return patterns
    # Candidate index c maps to wire position c for c < n1 - 1 (first
    # frame, unmarked) and c + 1 for c >= n1 - 1 (skipping the first
    # frame's marked cell).
    selection = enum.selection.astype(np.int64)
    wire = np.where(selection < n1 - 1, selection, selection + 1)
    rows = np.repeat(np.arange(enum.splices), selection.shape[1])
    patterns[rows, wire.ravel()] = True
    patterns[:, total - 1] = True  # the second frame's marked cell
    return patterns


def splice_pattern_probabilities(enum, model):
    """P[each splice's keep/drop pattern] under a loss process.

    ``model`` is an :class:`IndependentLoss` or :class:`GilbertLoss`
    from :mod:`repro.protocols.cellstream`.  The channel is assumed to
    start the two-frame window in the good state.  Probabilities are
    *unconditional* pattern probabilities; normalise over the
    enumeration if a distribution over splices is wanted.
    """
    patterns = selection_keep_patterns(enum)
    if isinstance(model, IndependentLoss):
        keeps = patterns.sum(axis=1)
        drops = patterns.shape[1] - keeps
        return (1.0 - model.p) ** keeps * model.p ** drops
    if isinstance(model, GilbertLoss):
        return _gilbert_forward(patterns, model.p_bad, model.p_recover)
    raise TypeError("unsupported loss model %r" % type(model).__name__)


def _gilbert_forward(patterns, p_bad, p_recover):
    """Forward algorithm over the Gilbert channel's hidden state.

    State semantics match :class:`GilbertLoss.keep_mask`: in the good
    state a cell is kept with probability ``1 - p_bad`` (a drop enters
    the bad state); in the bad state the cell is always dropped and
    the channel recovers with probability ``p_recover`` afterwards.
    """
    splices, length = patterns.shape
    alpha_good = np.ones(splices)
    alpha_bad = np.zeros(splices)
    for position in range(length):
        kept = patterns[:, position]
        new_good = np.where(
            kept, alpha_good * (1.0 - p_bad), alpha_bad * p_recover
        )
        new_bad = np.where(
            kept, 0.0, alpha_good * p_bad + alpha_bad * (1.0 - p_recover)
        )
        alpha_good, alpha_bad = new_good, new_bad
    return alpha_good + alpha_bad


def weighted_splice_rates(units, model, options=None):
    """Loss-model-weighted splice statistics over one transfer.

    For every adjacent pair the per-splice verdicts are weighted by
    the probability that the splice forms under ``model``.  Returns a
    dict with:

    * ``p_corrupted`` -- expected corrupted-frames-reaching-checksum
      per pair transmission;
    * ``p_transport_miss`` -- expected transport-checksum misses per
      pair transmission;
    * ``conditional_miss_pct`` -- weighted miss rate given a corrupted
      splice formed (the weighted analogue of the tables' miss %).
    """
    from repro.core.engine import EngineOptions

    engine = SpliceEngine(options or EngineOptions())
    weighted_remaining = 0.0
    weighted_missed = 0.0
    pairs = 0
    for first, second in zip(units, units[1:]):
        enum, verdicts = engine.splice_verdicts(
            first.frame.cells()[None],
            second.frame.cells()[None],
            len(first.packet.ip_packet),
            len(second.packet.ip_packet),
        )
        if not enum.splices:
            continue
        weights = splice_pattern_probabilities(enum, model)
        remaining = (
            verdicts["header_pass"][0] & ~verdicts["identical"][0]
        ).astype(float)
        missed = remaining * verdicts["transport"][0]
        weighted_remaining += float((weights * remaining).sum())
        weighted_missed += float((weights * missed).sum())
        pairs += 1
    conditional = (
        100.0 * weighted_missed / weighted_remaining if weighted_remaining else 0.0
    )
    return {
        "pairs": pairs,
        "p_corrupted": weighted_remaining / pairs if pairs else 0.0,
        "p_transport_miss": weighted_missed / pairs if pairs else 0.0,
        "conditional_miss_pct": conditional,
    }
