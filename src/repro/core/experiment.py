"""Drive a splice engine over a whole (synthetic) filesystem.

This reproduces the paper's outer loop: "our test program simulated a
file transfer with FTP of all files on a file system ... and examined
all possible splices of two adjacent TCP segments".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.results import SpliceCounters
from repro.core.supervisor import RunHealth, SupervisedPool
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig
from repro.telemetry.core import current as _telemetry

__all__ = [
    "SpliceExperimentResult",
    "run_per_file_experiment",
    "run_splice_experiment",
]


@dataclass
class SpliceExperimentResult:
    """The outcome of one filesystem x configuration splice run."""

    filesystem: str
    config: PacketizerConfig
    options: EngineOptions
    counters: SpliceCounters = field(default_factory=SpliceCounters)
    #: supervision record for the run (clean runs stay uneventful).
    health: RunHealth = field(default_factory=RunHealth)

    @property
    def algorithm_label(self):
        placement = self.config.placement.value
        if self.config.algorithm == "tcp" and placement == "trailer":
            return "tcp-trailer"
        if self.config.algorithm == "tcp":
            return "tcp"
        return self.config.algorithm


def run_per_file_experiment(filesystem, config=None, options=None, max_files=None):
    """Per-file splice counters (Section 5.5's locality-of-failure view).

    The paper observed "sharp spikes in the rate of undetected
    splices, at the level of individual directories or even files".
    Returns ``[(file, SpliceCounters), ...]`` so callers can rank files
    by their contribution to the miss count.
    """
    config = config or PacketizerConfig()
    options = options or EngineOptions.from_packetizer(config)
    simulator = FileTransferSimulator(config)
    engine = SpliceEngine(options)
    results = []
    for index, file in enumerate(filesystem):
        if max_files is not None and index >= max_files:
            break
        units = simulator.transfer(file.data)
        counters = SpliceCounters()
        if len(units) >= 2:
            counters += engine.evaluate_stream(units)
        else:
            counters.packets += len(units)
        counters.files = 1
        results.append((file, counters))
    return results


def _file_counters(args):
    """Process-pool worker: splice counters for one file's bytes."""
    data, config, options = args
    simulator = FileTransferSimulator(config)
    engine = SpliceEngine(options)
    counters = SpliceCounters()
    units = simulator.transfer(data)
    if len(units) >= 2:
        counters += engine.evaluate_stream(units)
    else:
        counters.packets += len(units)
    counters.files += 1
    return counters


def _make_pool(workers, health, faults):
    """A :class:`SupervisedPool` for splice shards, optionally chaotic.

    With ``faults`` (a :class:`repro.faults.FaultPlan`), jobs route
    through the worker shim and each submission is paired with its
    scheduled fault directive; the plan's suggested per-shard timeout
    arms the supervisor's stall detection.
    """
    function = _file_counters
    prepare = None
    timeout = None
    if faults is not None:
        from repro.faults.injector import shim_file_counters, worker_prepare

        function = shim_file_counters
        prepare = worker_prepare(faults, health)
        timeout = faults.shard_timeout
    return SupervisedPool(
        function, workers, health=health, prepare=prepare, timeout=timeout
    )


def run_splice_experiment(
    filesystem,
    config=None,
    options=None,
    max_files=None,
    workers=None,
    store=None,
    health=None,
    faults=None,
):
    """Run the paper's splice simulation over ``filesystem``.

    ``config`` is the :class:`PacketizerConfig` controlling how files
    are packetized (algorithm, placement, ablations); ``options``
    overrides the engine's judging options (derived from ``config`` by
    default); ``max_files`` truncates the filesystem for quick runs.
    Files are independent, so ``workers > 1`` fans them out over a
    **supervised** process pool for large corpora: failed shards are
    retried with backoff, broken pools are respawned, and stubborn
    shards fall back to in-process execution — results are identical
    either way because every shard is a pure function of its bytes.

    ``store`` (a :class:`repro.store.runner.RunStore`) makes the run
    resumable and cached: per-file shards are persisted with integrity
    trailers, completed shards are reused instead of recomputed, and
    corrupt shards are evicted and recomputed — counters come out
    bit-identical to a direct run.  Store I/O failures mid-run demote
    the sweep to store-less computation instead of crashing it.

    ``health`` (a :class:`repro.core.supervisor.RunHealth`) accumulates
    the supervision record (a fresh one is created otherwise and
    attached to the result); ``faults`` (a
    :class:`repro.faults.FaultPlan`) injects a deterministic fault
    schedule — used by ``repro-checksums chaos`` and the chaos tests.
    """
    config = config or PacketizerConfig()
    options = options or EngineOptions.from_packetizer(config)
    health = health if health is not None else RunHealth()
    telemetry = _telemetry()

    files = list(filesystem)
    if max_files is not None:
        files = files[:max_files]

    name = getattr(filesystem, "name", "<anonymous>")
    telemetry.gauge("experiment.workers", workers or 1)
    if store is not None:
        from repro.store.runner import run_sharded_splice

        with telemetry.span("experiment.sharded_run"):
            counters = run_sharded_splice(
                files, config, options, store,
                workers=workers, filesystem_name=name,
                health=health, faults=faults,
            )
        counters.sanity_check()
        return SpliceExperimentResult(
            filesystem=name, config=config, options=options,
            counters=counters, health=health,
        )

    counters = SpliceCounters()
    pool = _make_pool(workers, health, faults)
    jobs = [(file.data, config, options) for file in files]
    with telemetry.span("experiment.run"):
        last = time.perf_counter()
        for index, part in pool.run(jobs):
            now = time.perf_counter()
            _account_shard(telemetry, part, len(jobs[index][0]), now - last)
            last = now
            counters += part
    counters.sanity_check()
    return SpliceExperimentResult(
        filesystem=name,
        config=config,
        options=options,
        counters=counters,
        health=health,
    )


def _account_shard(telemetry, counters, nbytes, elapsed):
    """Parent-side accounting for one resolved shard.

    Counter/meter *amounts* come from the returned counters, so totals
    are bit-identical across ``--workers`` settings; only the elapsed
    seconds (and hence derived rates) depend on the execution layout.
    """
    telemetry.count("splice.files", counters.files or 1)
    telemetry.count("splice.packets", counters.packets)
    telemetry.count("splice.splices", counters.total)
    telemetry.count("splice.missed_transport", counters.missed_transport)
    telemetry.meter("splice.splices_rate", counters.total, elapsed)
    telemetry.meter("splice.bytes_rate", nbytes, elapsed)
    telemetry.observe("experiment.shard_seconds", elapsed)
