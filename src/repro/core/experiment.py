"""Drive a splice engine over a whole (synthetic) filesystem.

This reproduces the paper's outer loop: "our test program simulated a
file transfer with FTP of all files on a file system ... and examined
all possible splices of two adjacent TCP segments".
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.core.batch import resolve_engine_kind
from repro.core.checkpoint import current_controller
from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.results import SpliceCounters
from repro.core.supervisor import RunHealth, SupervisedPool
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig
from repro.telemetry.core import current as _telemetry

__all__ = [
    "SpliceExperimentResult",
    "run_per_file_experiment",
    "run_splice_experiment",
]


@dataclass
class SpliceExperimentResult:
    """The outcome of one filesystem x configuration splice run."""

    filesystem: str
    config: PacketizerConfig
    options: EngineOptions
    counters: SpliceCounters = field(default_factory=SpliceCounters)
    #: supervision record for the run (clean runs stay uneventful).
    health: RunHealth = field(default_factory=RunHealth)

    @property
    def algorithm_label(self):
        placement = self.config.placement.value
        if self.config.algorithm == "tcp" and placement == "trailer":
            return "tcp-trailer"
        if self.config.algorithm == "tcp":
            return "tcp"
        return self.config.algorithm


def run_per_file_experiment(filesystem, config=None, options=None, max_files=None):
    """Per-file splice counters (Section 5.5's locality-of-failure view).

    The paper observed "sharp spikes in the rate of undetected
    splices, at the level of individual directories or even files".
    Returns ``[(file, SpliceCounters), ...]`` so callers can rank files
    by their contribution to the miss count.
    """
    config = config or PacketizerConfig()
    options = options or EngineOptions.from_packetizer(config)
    simulator = FileTransferSimulator(config)
    engine = SpliceEngine(options)
    results = []
    for index, file in enumerate(filesystem):
        if max_files is not None and index >= max_files:
            break
        units = simulator.transfer(file.data)
        counters = SpliceCounters()
        if len(units) >= 2:
            counters += engine.evaluate_stream(units)
        else:
            counters.packets += len(units)
        counters.files = 1
        results.append((file, counters))
    return results


def _file_counters(args):
    """Process-pool worker: splice counters for one file's bytes."""
    data, config, options = args
    simulator = FileTransferSimulator(config)
    engine = SpliceEngine(options)
    counters = SpliceCounters()
    units = simulator.transfer(data)
    if len(units) >= 2:
        counters += engine.evaluate_stream(units)
    else:
        counters.packets += len(units)
    counters.files += 1
    return counters


def _make_pool(workers, health, faults, shard_timeout=None):
    """A :class:`SupervisedPool` for splice shards, optionally chaotic.

    With ``faults`` (a :class:`repro.faults.FaultPlan`), jobs route
    through the worker shim and each submission is paired with its
    scheduled fault directive.  The supervisor's per-shard timeout rung
    is armed by, in precedence order: the explicit ``shard_timeout``
    argument (the CLI's ``--shard-timeout``), the ambient
    :class:`~repro.core.checkpoint.SweepController`'s value, then the
    fault plan's suggestion.
    """
    function = _file_counters
    prepare = None
    timeout = shard_timeout
    if timeout is None:
        timeout = current_controller().shard_timeout
    if faults is not None:
        from repro.faults.injector import shim_file_counters, worker_prepare

        function = shim_file_counters
        prepare = worker_prepare(faults, health)
        if timeout is None:
            timeout = faults.shard_timeout
    return SupervisedPool(
        function, workers, health=health, prepare=prepare, timeout=timeout
    )


def _check_stop(controller, health, telemetry, done, total, journal=None):
    """Poll the sweep controller at a shard boundary.

    Returns False to keep dispatching.  On a pending **signal** the
    journal is flushed and :class:`~repro.core.checkpoint.SweepInterrupted`
    is raised — the state on disk is exactly "``done`` of ``total``
    shards checkpointed".  On an expired **deadline** the sweep is
    marked ``degraded: deadline`` in its :class:`RunHealth` (riding
    into report JSON/markdown footnotes) and True is returned so the
    caller stops dispatching and merges the partial result.
    """
    reason = controller.stop_reason()
    if reason is None:
        return False
    if journal is not None:
        journal.flush()
    telemetry.count("checkpoint.interrupts")
    if reason == "signal":
        controller.interrupt(done, total)  # raises SweepInterrupted
    health.interrupted = "deadline"
    health.degrade(
        "deadline exceeded: stopped at shard %d/%d; results are partial"
        % (done, total)
    )
    controller.deadline_fired = True
    return True


def run_splice_experiment(
    filesystem,
    config=None,
    options=None,
    max_files=None,
    workers=None,
    store=None,
    health=None,
    faults=None,
    journal=None,
    resume=None,
    shard_timeout=None,
    engine=None,
):
    """Run the paper's splice simulation over ``filesystem``.

    ``config`` is the :class:`PacketizerConfig` controlling how files
    are packetized (algorithm, placement, ablations); ``options``
    overrides the engine's judging options (derived from ``config`` by
    default); ``max_files`` truncates the filesystem for quick runs.
    Files are independent, so ``workers > 1`` fans them out over a
    **supervised** process pool for large corpora: failed shards are
    retried with backoff, broken pools are respawned, and stubborn
    shards fall back to in-process execution — results are identical
    either way because every shard is a pure function of its bytes.

    ``store`` (a :class:`repro.store.runner.RunStore`) makes the run
    resumable and cached: per-file shards are persisted with integrity
    trailers, completed shards are reused instead of recomputed, and
    corrupt shards are evicted and recomputed — counters come out
    bit-identical to a direct run.  Store I/O failures mid-run demote
    the sweep to store-less computation instead of crashing it.

    ``health`` (a :class:`repro.core.supervisor.RunHealth`) accumulates
    the supervision record (a fresh one is created otherwise and
    attached to the result); ``faults`` (a
    :class:`repro.faults.FaultPlan`) injects a deterministic fault
    schedule — used by ``repro-checksums chaos`` and the chaos tests.

    ``journal`` (a :class:`repro.store.journal.ShardJournal`) makes the
    sweep **interruptible**: every completed shard is checkpointed
    atomically, a signal stops the run at a shard boundary with
    :class:`~repro.core.checkpoint.SweepInterrupted`, and ``resume``
    merges a fingerprint-matching journal so the resumed run is
    bit-identical to an uninterrupted one.  Both default to the
    ambient :func:`~repro.core.checkpoint.current_controller` (the
    CLI's ``--journal``/``--resume``), as does ``shard_timeout``.

    ``engine`` (``"batch"``/``"scalar"``/``"auto"``) overrides the
    evaluation path of :attr:`EngineOptions.engine`; it rides inside
    the options record, so it reaches pool workers and store shard
    keys alike.
    """
    config = config or PacketizerConfig()
    options = options or EngineOptions.from_packetizer(config)
    if engine is not None:
        options = dataclasses.replace(options, engine=str(engine))
    health = health if health is not None else RunHealth()
    telemetry = _telemetry()
    controller = current_controller()
    if resume is None:
        resume = controller.resume

    files = list(filesystem)
    if max_files is not None:
        files = files[:max_files]

    name = getattr(filesystem, "name", "<anonymous>")
    if journal is None and controller.journal_dir is not None:
        from repro.store.journal import ShardJournal, journal_path

        journal = ShardJournal(
            journal_path(controller.journal_dir, name, config)
        )
    telemetry.gauge("experiment.workers", workers or 1)
    if store is not None or journal is not None:
        from repro.store.runner import run_sharded_splice

        with telemetry.span("experiment.sharded_run"):
            counters = run_sharded_splice(
                files, config, options, store,
                workers=workers, filesystem_name=name,
                health=health, faults=faults,
                journal=journal, resume=resume,
                shard_timeout=shard_timeout,
            )
        counters.sanity_check()
        return SpliceExperimentResult(
            filesystem=name, config=config, options=options,
            counters=counters, health=health,
        )

    counters = SpliceCounters()
    pool = _make_pool(workers, health, faults, shard_timeout)
    jobs = [(file.data, config, options) for file in files]
    engine_kind = resolve_engine_kind(options).value
    with telemetry.span("experiment.run"):
        last = time.perf_counter()
        done = 0
        if not _check_stop(controller, health, telemetry, done, len(jobs)):
            for index, part in pool.run(jobs):
                now = time.perf_counter()
                _account_shard(
                    telemetry, part, len(jobs[index][0]), now - last,
                    engine_kind=engine_kind,
                )
                last = now
                counters += part
                done += 1
                if _check_stop(
                    controller, health, telemetry, done, len(jobs)
                ):
                    break
    counters.sanity_check()
    return SpliceExperimentResult(
        filesystem=name,
        config=config,
        options=options,
        counters=counters,
        health=health,
    )


def _account_shard(telemetry, counters, nbytes, elapsed, engine_kind=None):
    """Parent-side accounting for one resolved shard.

    Counter/meter *amounts* come from the returned counters, so totals
    are bit-identical across ``--workers`` settings; only the elapsed
    seconds (and hence derived rates) depend on the execution layout.
    ``engine_kind`` tags the splice throughput with the evaluation
    path (``engine.batch.splices`` / ``engine.scalar.splices``) so
    engine-kind comparisons read straight off the metrics.
    """
    telemetry.count("splice.files", counters.files or 1)
    telemetry.count("splice.packets", counters.packets)
    telemetry.count("splice.splices", counters.total)
    telemetry.count("splice.missed_transport", counters.missed_transport)
    telemetry.meter("splice.splices_rate", counters.total, elapsed)
    telemetry.meter("splice.bytes_rate", nbytes, elapsed)
    if engine_kind is not None:
        telemetry.count("engine.%s.splices" % engine_kind, counters.total)
        telemetry.meter(
            "engine.%s.splices_rate" % engine_kind, counters.total, elapsed
        )
    telemetry.observe("experiment.shard_seconds", elapsed)
