"""Exact enumeration of the splices of an adjacent AAL5 frame pair.

With frames of ``n1`` and ``n2`` cells, the wire carries the ``n1 - 1``
unmarked cells of the first frame, its marked trailer cell, the
``n2 - 1`` unmarked cells of the second frame, and its marked trailer.
ATM never reorders cells, so a drop pattern turns into a splice when:

* the first frame's marked cell is dropped (otherwise the frames stay
  separate), and
* the second frame's marked cell is kept (it terminates the splice),
  and
* the AAL5 length check forces the reassembled frame to contain exactly
  ``n2`` cells (the trailer's Length field must be consistent with the
  cell count).

A splice is therefore an order-preserving choice of ``n2 - 1`` cells
from the ``(n1 - 1) + (n2 - 1)`` unmarked candidates, followed by the
forced trailer -- ``C(n1 + n2 - 2, n2 - 1)`` selections, minus the one
that reconstructs the second frame intact (no corruption occurred).
For the paper's 7-cell packets that is ``C(12, 6) - 1 = 923``
structural candidates per pair, of which the ``C(11, 5) = 462`` leading
with the first frame's header cell are the ones that can pass the
header checks (the count the paper derives in Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations
from math import comb

import numpy as np

__all__ = [
    "SpliceEnumeration",
    "enumerate_splices",
    "splice_count",
    "structural_splice_count",
]


def structural_splice_count(n1, n2):
    """Number of distinct splices of an ``(n1, n2)``-cell frame pair."""
    if n1 < 1 or n2 < 1:
        raise ValueError("frames have at least one cell")
    return comb(n1 + n2 - 2, n2 - 1) - 1


def splice_count(m):
    """The paper's header-constrained count for equal ``m``-cell frames.

    With the leading (header) and trailing (trailer) cells pinned there
    are ``C(2m - 3, m - 2)`` selections -- 462 for the 7-cell packets of
    a 256-byte MSS (Section 4.6).
    """
    if m < 2:
        return 0
    return comb(2 * m - 3, m - 2)


@dataclass(frozen=True)
class SpliceEnumeration:
    """The precomputed splice index set for an ``(n1, n2)`` pair shape.

    ``selection`` is an ``(S, n2 - 1)`` int16 array of candidate indices
    (0-based: first-frame cells ``0 .. n1-2`` then second-frame cells
    ``n1-1 .. n1+n2-3``), each row strictly increasing.  The derived
    per-row arrays cache what the counters need:

    * ``substitution_len`` -- the paper's substitution length ``k``: the
      number of second-packet cells in the splice including the forced
      trailer (the "48(k-1)+8 byte" accounting of Section 4.6).
    * ``has_second_header`` -- whether the second frame's header cell is
      part of the splice (Section 5.3's case split).
    """

    n1: int
    n2: int
    selection: np.ndarray
    substitution_len: np.ndarray
    has_second_header: np.ndarray

    @property
    def splices(self):
        return self.selection.shape[0]

    @property
    def slots(self):
        """Variable cell slots per splice (the trailer slot is fixed)."""
        return self.selection.shape[1]


@lru_cache(maxsize=None)
def _selection_matrix(candidates, pick):
    rows = comb(candidates, pick)
    matrix = np.empty((rows, pick), dtype=np.int16)
    for row, combo in enumerate(combinations(range(candidates), pick)):
        matrix[row] = combo
    return matrix


@lru_cache(maxsize=None)
def enumerate_splices(n1, n2, max_splices=2_000_000):
    """Build (and cache) the :class:`SpliceEnumeration` for a pair shape.

    Raises :class:`ValueError` when the exact enumeration would exceed
    ``max_splices`` rows; the paper's 256-byte segments stay tiny (923
    rows), but callers probing large MSS values get a clear signal to
    reduce the segment size instead of an OOM.
    """
    if n1 < 2 or n2 < 2:
        # A 1-cell frame cannot splice: its only cell is the marked one.
        empty = np.empty((0, max(n2 - 1, 0)), dtype=np.int16)
        bools = np.empty(0, dtype=bool)
        return SpliceEnumeration(n1, n2, empty, np.empty(0, dtype=np.int64), bools)
    candidates = (n1 - 1) + (n2 - 1)
    pick = n2 - 1
    total = comb(candidates, pick)
    if total > max_splices:
        raise ValueError(
            "enumerating %d splices for an (%d, %d)-cell pair exceeds the "
            "max_splices cap of %d; use a smaller MSS" % (total, n1, n2, max_splices)
        )
    matrix = _selection_matrix(candidates, pick)
    # Drop the row that reconstructs the second frame intact.
    intact = np.arange(n1 - 1, candidates, dtype=np.int16)
    keep = ~(matrix == intact).all(axis=1)
    return _finish_enumeration(n1, n2, matrix[keep])


def _finish_enumeration(n1, n2, matrix):
    from_second = matrix >= (n1 - 1)
    substitution_len = from_second.sum(axis=1).astype(np.int64) + 1
    has_second_header = (matrix == (n1 - 1)).any(axis=1)
    return SpliceEnumeration(n1, n2, matrix, substitution_len, has_second_header)


@lru_cache(maxsize=None)
def sample_splices(n1, n2, count, seed=0):
    """A uniform sample of splices for pair shapes too large to enumerate.

    Draws ``count`` distinct splice selections uniformly from the
    ``C(n1 + n2 - 2, n2 - 1) - 1`` possibilities (each selection is a
    uniformly random ``n2 - 1``-subset of the candidates, deduplicated,
    with the intact-second-frame row excluded).  Used for large-MSS
    studies where exact enumeration would explode; per-splice rates
    estimated over the sample are unbiased.
    """
    if n1 < 2 or n2 < 2:
        return enumerate_splices(n1, n2)
    candidates = (n1 - 1) + (n2 - 1)
    pick = n2 - 1
    population = comb(candidates, pick) - 1
    if population <= count:
        return enumerate_splices(n1, n2, max_splices=max(population + 1, 1))
    rng = np.random.default_rng(np.random.SeedSequence([n1, n2, count, seed]))
    intact = tuple(range(n1 - 1, candidates))
    rows = set()
    while len(rows) < count:
        draw = tuple(sorted(rng.choice(candidates, size=pick, replace=False)))
        if draw != intact:
            rows.add(draw)
    matrix = np.array(sorted(rows), dtype=np.int16)
    return _finish_enumeration(n1, n2, matrix)
