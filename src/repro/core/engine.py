"""The vectorized splice evaluator.

For every adjacent frame pair the engine enumerates each possible
splice (see :mod:`repro.core.enumeration`) and evaluates, without ever
re-reading a byte per splice:

* the header checks (per leading candidate cell);
* the transport checksum the packets were built with -- standard TCP,
  Fletcher mod-255/mod-256, header or trailer placement, inverted or
  not;
* the AAL5 CRC-32 (via per-cell register images and the ``Z^48``
  zero-feed operator, checked against the spec residue);
* optional auxiliary CRCs (e.g. a 16-bit CRC in place of AAL5's, used
  to confirm CRC uniformity at observable rates);
* whether the splice's payload is identical to one of the original
  packets (benign congruence).

The algebra: the Internet checksum of a splice decomposes into per-cell
partial word sums plus the pseudo-header; Fletcher into per-cell (A, B)
pairs with the positional term ``B + D * A`` for a cell ending ``D``
bytes before the end of coverage; and a CRC register through a chunk is
affine -- ``reg' = Z^48(reg) XOR c_cell``.  Each batch therefore costs a
handful of NumPy gathers per cell slot over a ``(pairs, splices)``
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checksums.batch import EngineKind
from repro.checksums.crc import CRCEngine
from repro.checksums.registry import get_algorithm
from repro.core.batch import (
    CellCrcFold,
    fold16 as _fold16,
    range_fletcher as _range_fletcher,
    range_word_sums as _range_word_sums,
    resolve_engine_kind,
)
from repro.core.checks import candidate_header_validity, candidate_pseudo_sums
from repro.core.enumeration import (
    enumerate_splices,
    sample_splices,
    structural_splice_count,
)
from repro.core.results import SpliceCounters
from repro.protocols.aal5 import CELL_PAYLOAD, aal5_crc_engine
from repro.protocols.packetizer import ChecksumPlacement, PacketizerConfig
from repro.telemetry.core import current as _telemetry

__all__ = ["EngineOptions", "SpliceEngine"]

_IP_HEADER_LEN = 20
_TCP_CHECKSUM_SPLICE_OFFSET = 36  # IP header + TCP checksum field offset
_CRC_FIELD_LEN = 4


@dataclass(frozen=True)
class EngineOptions:
    """How the engine should judge splices.

    ``algorithm``/``placement``/``invert`` must match the packetizer
    configuration the frames were built with (use
    :meth:`from_packetizer`); ``require_ip_checksum`` follows the
    Section 6.2 ablation; ``aux_crcs`` names additional CRC engines run
    in place of the AAL5 CRC-32 for observable-rate uniformity checks.
    """

    algorithm: str = "tcp"
    placement: ChecksumPlacement = ChecksumPlacement.HEADER
    invert: bool = True
    require_ip_checksum: bool = True
    legacy_coverage: bool = False
    aux_crcs: tuple = ("crc16-ccitt",)
    max_splices: int = 2_000_000
    batch_elements: int = 2_000_000
    #: 0 = exact enumeration; otherwise pairs whose splice count
    #: exceeds this are evaluated over a uniform sample of this size
    #: (rates stay unbiased; totals reflect the sample).
    sample_splices: int = 0
    #: ``"batch"`` (vectorized kernels), ``"scalar"`` (byte-at-a-time
    #: reference receiver, bit-identical and ~100x slower), or
    #: ``"auto"`` -- batch whenever every algorithm in play advertises
    #: the registry's batch capability.
    engine: str = "auto"

    @classmethod
    def from_packetizer(cls, config, **overrides):
        """Options consistent with a :class:`PacketizerConfig`."""
        fields = dict(
            algorithm=config.algorithm,
            placement=config.placement,
            invert=config.invert,
            require_ip_checksum=config.fill_ip_header,
            legacy_coverage=not config.fill_ip_header,
        )
        fields.update(overrides)
        return cls(**fields)


class SpliceEngine:
    """Evaluates every splice of adjacent AAL5 frame pairs.

    The evaluation path is selected per :attr:`EngineOptions.engine`
    (see :func:`repro.core.batch.resolve_engine_kind`): ``batch`` runs
    the vectorized kernels of :mod:`repro.core.batch`; ``scalar`` runs
    the byte-at-a-time reference receiver of
    :mod:`repro.core.reference` over the *same* enumeration, producing
    bit-identical counters at a fraction of the speed -- it exists as
    the conformance baseline ``--engine scalar`` exposes.
    """

    def __init__(self, options=None):
        self.options = options or EngineOptions()
        self.engine_kind = resolve_engine_kind(self.options)
        self._crc32 = aal5_crc_engine()
        self._z48 = self._crc32.zero_feed(CELL_PAYLOAD)
        self._residue32 = np.uint32(self._crc32.residue_register("big"))
        self._folds = {}
        self._aux = []
        for name in self.options.aux_crcs:
            engine = get_algorithm(name)
            if not isinstance(engine, CRCEngine):
                raise ValueError("aux_crcs must name CRC engines, got %r" % name)
            self._aux.append(
                (
                    name,
                    engine,
                    engine.zero_feed(CELL_PAYLOAD),
                    engine.zero_feed(CELL_PAYLOAD - _CRC_FIELD_LEN),
                )
            )
        if self.options.algorithm.startswith("fletcher"):
            self._modulus = int(self.options.algorithm[-3:])
        elif self.options.algorithm in ("tcp", "internet"):
            self._modulus = None
        else:
            raise ValueError("unsupported transport algorithm %r" % self.options.algorithm)

    # ------------------------------------------------------------------

    def _enumeration(self, n1, n2):
        """Exact enumeration, or a uniform sample when configured."""
        limit = self.options.sample_splices
        if (
            limit
            and n1 >= 2
            and n2 >= 2
            and structural_splice_count(n1, n2) > limit
        ):
            return sample_splices(n1, n2, limit)
        return enumerate_splices(n1, n2, self.options.max_splices)

    def evaluate_stream(self, units):
        """Evaluate every adjacent pair of a transfer's units.

        ``units`` is the :class:`TransferUnit` list of one file.
        Consecutive pairs with the same shape are batched together.
        """
        telemetry = _telemetry()
        with telemetry.span("engine.stream"):
            counters = SpliceCounters()
            counters.packets += len(units)
            groups = {}
            for first, second in zip(units, units[1:]):
                key = (
                    first.frame.cell_count,
                    second.frame.cell_count,
                    len(first.packet.ip_packet),
                    len(second.packet.ip_packet),
                )
                groups.setdefault(key, []).append((first, second))
            for (n1, n2, iplen1, iplen2), pairs in groups.items():
                enum = self._enumeration(n1, n2)
                batch_size = max(
                    1, self.options.batch_elements // max(enum.splices, 1)
                )
                for start in range(0, len(pairs), batch_size):
                    chunk = pairs[start : start + batch_size]
                    cells1 = np.stack([p[0].frame.cells() for p in chunk])
                    cells2 = np.stack([p[1].frame.cells() for p in chunk])
                    counters += self.evaluate_batch(
                        cells1, cells2, iplen1, iplen2
                    )
        return counters

    def splice_verdicts(self, cells1, cells2, iplen1, iplen2):
        """Per-splice verdict arrays for a batch of same-shape pairs.

        ``cells1``/``cells2`` are ``(B, n, 48)`` uint8 arrays of the
        first/second frames; ``iplen*`` the IP packet lengths (the AAL5
        Length fields).  Returns ``(enumeration, verdicts)`` where each
        verdict (``header_pass``, ``transport``, ``crc32``,
        ``identical``, plus one entry per auxiliary CRC under ``aux``)
        is a ``(B, splices)`` boolean array aligned with the
        enumeration's selection rows.  This is the building block for
        custom accounting -- weighted loss models, per-splice studies,
        or cross-checks against the reference receiver.
        """
        telemetry = _telemetry()
        cells1 = np.asarray(cells1, dtype=np.uint8)
        cells2 = np.asarray(cells2, dtype=np.uint8)
        batch, n1 = cells1.shape[:2]
        n2 = cells2.shape[1]
        with telemetry.span("engine.enumeration"):
            enum = self._enumeration(n1, n2)
        if enum.splices == 0:
            empty = np.zeros((batch, 0), dtype=bool)
            return enum, {
                "header_pass": empty,
                "transport": empty.copy(),
                "crc32": empty.copy(),
                "identical": empty.copy(),
                "aux": {name: empty.copy() for name, _, _, _ in self._aux},
            }
        if self.engine_kind is EngineKind.SCALAR:
            with telemetry.span("engine.scalar"):
                return enum, self._scalar_verdicts(
                    enum, cells1, cells2, iplen1, iplen2
                )
        idx = enum.selection
        slots = enum.slots

        cand = np.concatenate([cells1[:, : n1 - 1], cells2[:, : n2 - 1]], axis=1)
        trailer = cells2[:, n2 - 1]
        iplen = iplen2

        coverage_start = 0 if self.options.legacy_coverage else _IP_HEADER_LEN
        windows = []
        for j in range(slots):
            lo = max(coverage_start - CELL_PAYLOAD * j, 0)
            hi = int(np.clip(iplen - CELL_PAYLOAD * j, lo, CELL_PAYLOAD))
            windows.append((lo, hi))
        t_hi = int(np.clip(iplen - CELL_PAYLOAD * slots, 0, CELL_PAYLOAD))

        with telemetry.span("engine.header"):
            header_pass = self._header_pass(cand, idx, iplen)
        with telemetry.span("engine.transport"):
            transport = self._transport_valid(
                cand, trailer, idx, windows, t_hi, iplen
            )
        with telemetry.span("engine.crc32"):
            crc32 = self._crc_valid(cand, trailer, idx)
        with telemetry.span("engine.identical"):
            identical = self._identical(
                cand, trailer, idx, cells1, cells2, iplen1, iplen2, windows
            )
        with telemetry.span("engine.aux"):
            aux = {
                name: self._aux_valid(cand, trailer, idx, n1, engine, z48, z44)
                for name, engine, z48, z44 in self._aux
            }
        verdicts = {
            "header_pass": header_pass,
            "transport": transport,
            "crc32": crc32,
            "identical": identical,
            "aux": aux,
        }
        return enum, verdicts

    def evaluate_batch(self, cells1, cells2, iplen1, iplen2):
        """Evaluate all splices of a batch of same-shape frame pairs.

        ``cells1``/``cells2`` are ``(B, n, 48)`` uint8 arrays of the
        first/second frames; ``iplen*`` the IP packet lengths (the AAL5
        Length fields).  Returns the accumulated counters.
        """
        counters = SpliceCounters()
        counters.pairs = np.asarray(cells1).shape[0]
        telemetry = _telemetry()
        with telemetry.span("engine.batch"):
            enum, verdicts = self.splice_verdicts(cells1, cells2, iplen1, iplen2)
        if enum.splices == 0:
            return counters
        batch = counters.pairs

        header_pass = verdicts["header_pass"]
        valid_transport = verdicts["transport"]
        valid_crc32 = verdicts["crc32"]
        identical = verdicts["identical"]

        caught = ~header_pass
        ident_mask = header_pass & identical
        remaining = header_pass & ~identical
        missed_transport = remaining & valid_transport
        missed_crc = remaining & valid_crc32

        counters.total = batch * enum.splices
        counters.caught_by_header = int(caught.sum())
        counters.identical = int(ident_mask.sum())
        counters.remaining = int(remaining.sum())
        counters.missed_transport = int(missed_transport.sum())
        counters.missed_crc32 = int(missed_crc.sum())
        counters.identical_rejected = int((ident_mask & ~valid_transport).sum())

        remaining_per_splice = remaining.sum(axis=0)
        missed_per_splice = missed_transport.sum(axis=0)
        lens = enum.substitution_len
        for k in np.unique(lens):
            mask = lens == k
            counters.remaining_by_len[int(k)] = int(remaining_per_splice[mask].sum())
            counters.missed_by_len[int(k)] = int(missed_per_splice[mask].sum())
        hdr2 = enum.has_second_header
        counters.remaining_with_hdr2 = int(remaining_per_splice[hdr2].sum())
        counters.missed_with_hdr2 = int(missed_per_splice[hdr2].sum())

        for name, valid_aux in verdicts["aux"].items():
            counters.missed_aux[name] = int((remaining & valid_aux).sum())

        # Engine-kind throughput accounting happens parent-side in
        # ``experiment._account_shard`` (``engine.<kind>.splices`` and
        # its rate meter): worker pools keep their own registries, so
        # anything emitted here would vanish under ``--workers N`` and
        # break counter-total identity across execution layouts.
        return counters

    # -- component evaluations ------------------------------------------

    def _header_pass(self, cand, idx, iplen):
        valid_first = candidate_header_validity(
            cand, iplen, require_ip_checksum=self.options.require_ip_checksum
        )
        return valid_first[:, idx[:, 0]]

    def _transport_valid(self, cand, trailer, idx, windows, t_hi, iplen):
        if self._modulus is None:
            return self._tcp_valid(cand, trailer, idx, windows, t_hi, iplen)
        return self._fletcher_valid(cand, trailer, idx, windows, t_hi, iplen)

    def _tcp_valid(self, cand, trailer, idx, windows, t_hi, iplen):
        sums_cache = {}
        for window in set(windows):
            sums_cache[window] = _range_word_sums(cand, *window)
        if self.options.legacy_coverage:
            # Section 6.2 legacy mode: no pseudo-header; the sum runs
            # from byte 0 of the IP header.
            total = np.zeros((cand.shape[0], idx.shape[0]), dtype=np.uint64)
        else:
            total = candidate_pseudo_sums(cand, iplen - _IP_HEADER_LEN)[:, idx[:, 0]]
        for j, window in enumerate(windows):
            total = total + sums_cache[window][:, idx[:, j]]
        total = total + _range_word_sums(trailer, 0, t_hi)[:, None]
        if self.options.invert or self.options.placement is ChecksumPlacement.TRAILER:
            return _fold16(total) == 0xFFFF
        # Section 6.3 ablation: the stored field is the sum itself, so
        # the verifier compares the recomputed sum (field excluded)
        # against the field taken from the splice's leading cell.
        field = (
            cand[..., _TCP_CHECKSUM_SPLICE_OFFSET].astype(np.uint64) << np.uint64(8)
        ) | cand[..., _TCP_CHECKSUM_SPLICE_OFFSET + 1]
        field = field[:, idx[:, 0]]
        return _fold16(total - field) == field

    def _fletcher_valid(self, cand, trailer, idx, windows, t_hi, iplen):
        modulus = self._modulus
        cache = {}
        for window in set(windows):
            cache[window] = _range_fletcher(cand, *window, modulus)
        a_trailer, b_trailer = _range_fletcher(trailer, 0, t_hi, modulus)
        a_total = np.zeros((cand.shape[0], idx.shape[0]), dtype=np.int64)
        b_total = np.zeros_like(a_total)
        for j, (lo, hi) in enumerate(windows):
            a_j, b_j = cache[(lo, hi)]
            distance = iplen - min(CELL_PAYLOAD * j + hi, iplen)
            a_sel = a_j[:, idx[:, j]]
            a_total += a_sel
            b_total += b_j[:, idx[:, j]] + distance * a_sel
        a_total += a_trailer[:, None]
        b_total += b_trailer[:, None]
        return (a_total % modulus == 0) & (b_total % modulus == 0)

    def _crc_fold(self, engine, slots, tail):
        """Cached :class:`CellCrcFold` for ``(engine, slots, tail)``."""
        key = (engine.name, slots, tail)
        if key not in self._folds:
            self._folds[key] = CellCrcFold(engine, slots, tail)
        return self._folds[key]

    def _crc_valid(self, cand, trailer, idx):
        images = self._crc32.process_cells(cand)
        trailer_image = self._crc32.process_cells(trailer)
        fold = self._crc_fold(self._crc32, idx.shape[1], CELL_PAYLOAD)
        return fold.fold_selected(images, idx, trailer_image) == self._residue32

    def _aux_valid(self, cand, trailer, idx, n1, engine, z48, z44):
        """Would a hypothetical AAL5 with this CRC have missed the splice?

        The auxiliary CRC covers the frame minus the (CRC-32) field, and
        the splice passes when it matches the second frame's value --
        i.e. the value the trailer would have carried.
        """
        slots = idx.shape[1]
        images = engine.process_cells(cand)
        trailer_image = engine.process_cells(
            trailer[:, : CELL_PAYLOAD - _CRC_FIELD_LEN]
        )
        fold = self._crc_fold(engine, slots, CELL_PAYLOAD - _CRC_FIELD_LEN)
        reg = fold.fold_selected(images, idx, trailer_image)

        # The reference value: the same fold over the intact second frame.
        target = fold.fold_columns(
            images[:, n1 - 1 : n1 - 1 + slots], trailer_image
        )
        return reg == target[:, None]

    # -- scalar conformance path ----------------------------------------

    def _scalar_verdicts(self, enum, cells1, cells2, iplen1, iplen2):
        """Judge the same enumeration with the reference receiver.

        Fills verdict matrices of the exact shape the batch kernels
        produce, one byte-materialised splice at a time, so
        :meth:`evaluate_batch` shares all counter accounting between
        the two engine kinds and bit-identity holds by construction.
        """
        from repro.core.reference import judge_splice_cells

        batch = cells1.shape[0]
        shape = (batch, enum.splices)
        verdicts = {
            "header_pass": np.zeros(shape, dtype=bool),
            "transport": np.zeros(shape, dtype=bool),
            "crc32": np.zeros(shape, dtype=bool),
            "identical": np.zeros(shape, dtype=bool),
            "aux": {name: np.zeros(shape, dtype=bool) for name, _, _, _ in self._aux},
        }
        aux_engines = [(name, engine) for name, engine, _, _ in self._aux]
        for b in range(batch):
            frame2 = b"".join(bytes(c) for c in cells2[b])
            aux_targets = {
                # One target per pair, amortized over every splice of
                # the pair.  reprolint: disable=REP304
                name: engine.compute(frame2[:-_CRC_FIELD_LEN])
                for name, engine in aux_engines
            }
            for s, selection in enumerate(enum.selection):
                verdict = judge_splice_cells(  # reprolint: disable=REP304
                    cells1[b],
                    cells2[b],
                    iplen1,
                    iplen2,
                    selection,
                    self.options,
                    aux_engines=aux_engines,
                    aux_targets=aux_targets,
                )
                verdicts["header_pass"][b, s] = verdict["header_pass"]
                verdicts["transport"][b, s] = verdict["transport"]
                verdicts["crc32"][b, s] = verdict["crc32"]
                verdicts["identical"][b, s] = verdict["identical"]
                for name, ok in verdict["aux"].items():
                    verdicts["aux"][name][b, s] = ok
        return verdicts

    def _identical(self, cand, trailer, idx, cells1, cells2, iplen1, iplen2, windows):
        batch = cand.shape[0]
        slots = idx.shape[1]
        # "Identical" means the *delivered data* matches an original
        # packet.  With trailer placement the appended check bytes are
        # not user data -- a splice carrying packet 1's payload but
        # packet 2's trailer checksum is still benign (and is exactly
        # the case the trailer sum spuriously rejects; Section 5.3).
        iplen = iplen2
        if self.options.placement is ChecksumPlacement.TRAILER:
            iplen -= 2
        result = np.zeros((batch, idx.shape[0]), dtype=bool)

        def frame_match(cells, trailer_ok):
            match = trailer_ok[:, None] if trailer_ok is not None else np.ones(
                (batch, 1), dtype=bool
            )
            match = np.broadcast_to(match, (batch, idx.shape[0])).copy()
            for j in range(slots):
                cmp_len = int(np.clip(iplen - CELL_PAYLOAD * j, 0, CELL_PAYLOAD))
                if cmp_len == 0:
                    continue
                eq = (cand[:, :, :cmp_len] == cells[:, j][:, None, :cmp_len]).all(
                    axis=-1
                )
                match &= eq[:, idx[:, j]]
            return match

        # Identical to the second packet (header and payload from frame 2).
        result |= frame_match(cells2, None)

        # Identical to the first packet: only possible when lengths agree.
        if cells1.shape[1] == cells2.shape[1] and iplen1 == iplen2:
            t_len = int(np.clip(iplen - CELL_PAYLOAD * slots, 0, CELL_PAYLOAD))
            if t_len:
                trailer_ok = (trailer[:, :t_len] == cells1[:, -1, :t_len]).all(axis=-1)
            else:
                trailer_ok = np.ones(batch, dtype=bool)
            result |= frame_match(cells1, trailer_ok)
        return result
