"""Slow-but-obvious reference implementation of splice judgment.

The vectorized engine in :mod:`repro.core.engine` is validated against
this module: for a given splice it materialises the actual frame bytes
and applies each check exactly as a receiver would, one packet at a
time.  It is hundreds of times slower and exists for correctness
cross-checks, debugging, and as executable documentation of the error
model.
"""

from __future__ import annotations

from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.aal5 import aal5_crc_engine
from repro.protocols.ip import IP_HEADER_LEN, parse_ipv4_header
from repro.protocols.packetizer import ChecksumPlacement
from repro.protocols.tcp import pseudo_header_word_sum

__all__ = [
    "judge_splice",
    "judge_splice_cells",
    "splice_cell_bytes",
    "splice_frame_bytes",
]


def splice_frame_bytes(frame1, frame2, selection):
    """The frame a receiver reassembles for a given splice selection.

    ``selection`` indexes the unmarked candidates (first frame's cells
    then second frame's non-trailer cells); the second frame's marked
    trailer cell is appended.
    """
    cells1 = frame1.cells()
    cells2 = frame2.cells()
    candidates = [bytes(c) for c in cells1[:-1]] + [bytes(c) for c in cells2[:-1]]
    picked = [candidates[i] for i in selection]
    picked.append(bytes(cells2[-1]))
    return b"".join(picked)


def splice_cell_bytes(cells1, cells2, selection):
    """:func:`splice_frame_bytes` over already-materialised cell arrays.

    ``cells1`` / ``cells2`` are the frames' ``(n, 48)`` cell matrices
    (trailer cell last), as the engine's corpus batches hold them.
    """
    candidates = [bytes(c) for c in cells1[:-1]] + [bytes(c) for c in cells2[:-1]]
    picked = [candidates[int(i)] for i in selection]
    picked.append(bytes(cells2[-1]))
    return b"".join(picked)


def judge_splice_cells(
    cells1,
    cells2,
    iplen1,
    iplen2,
    selection,
    options,
    aux_engines=(),
    aux_targets=None,
):
    """Judge one splice from cell matrices, byte-at-a-time.

    The scalar conformance path of the splice engine: materialises the
    reassembled frame and applies every check exactly as
    :func:`judge_splice` does, plus the auxiliary CRC verdicts (an
    auxiliary code accepts the splice when it reproduces the intact
    second frame's check value).  ``aux_targets`` may carry those
    per-pair reference values precomputed; otherwise they are derived
    here from ``cells2``.
    """
    data = splice_cell_bytes(cells1, cells2, selection)
    cmp_end = (
        iplen2 - 2 if options.placement is ChecksumPlacement.TRAILER else iplen2
    )
    frame2_bytes = b"".join(bytes(c) for c in cells2)
    if iplen1 == iplen2 and len(cells1) == len(cells2):
        frame1_prefix = b"".join(bytes(c) for c in cells1)[:cmp_end]
    else:
        frame1_prefix = None
    identical = data[:cmp_end] in (frame1_prefix, frame2_bytes[:cmp_end])
    aux = {}
    for name, engine in aux_engines:
        if aux_targets is not None and name in aux_targets:
            target = aux_targets[name]
        else:
            target = engine.compute(frame2_bytes[:-4])
        aux[name] = engine.compute(data[:-4]) == target
    return {
        "header_pass": _header_ok(
            data, iplen2, require_ip_checksum=options.require_ip_checksum
        ),
        "identical": identical,
        "crc32": _crc32_ok(data),
        "transport": _transport_ok(data, iplen2, options),
        "aux": aux,
    }


def _header_ok(frame_bytes, expected_iplen, require_ip_checksum=True):
    if frame_bytes[0] != 0x45:
        return False
    header = parse_ipv4_header(frame_bytes)
    if header.total_length != expected_iplen or header.protocol != 6:
        return False
    if require_ip_checksum:
        if fold_carries(word_sums(frame_bytes[:IP_HEADER_LEN])) != 0xFFFF:
            return False
    if (frame_bytes[32] >> 4) != 5:
        return False
    flags = frame_bytes[33]
    return bool(flags & 0x10) and not (flags & 0x07)


def judge_splice(frame1, frame2, selection, options):
    """Judge one splice exactly as a receiver would.

    Returns a dict with ``header_pass``, ``identical``, ``transport``
    (checksum accepted) and ``crc32`` (AAL5 CRC accepted) booleans,
    matching the engine's per-splice verdicts.
    """
    data = splice_frame_bytes(frame1, frame2, selection)
    iplen = len(frame2.payload)  # AAL5 length field == IP packet length
    # Delivered-data region: with trailer placement the final two bytes
    # are the check value, not user data.
    cmp_end = iplen - 2 if options.placement is ChecksumPlacement.TRAILER else iplen
    identical = data[:cmp_end] in (
        frame1.payload[:cmp_end] if len(frame1.payload) == iplen else None,
        frame2.payload[:cmp_end],
    )
    verdict = {
        "header_pass": _header_ok(
            data, iplen, require_ip_checksum=options.require_ip_checksum
        ),
        "identical": identical,
        "crc32": _crc32_ok(data),
        "transport": _transport_ok(data, iplen, options),
    }
    return verdict


def _crc32_ok(frame_bytes):
    engine = aal5_crc_engine()
    stored = int.from_bytes(frame_bytes[-4:], "big")
    return engine.compute(frame_bytes[:-4]) == stored


def _transport_ok(frame_bytes, iplen, options):
    segment = frame_bytes[IP_HEADER_LEN:iplen]
    if getattr(options, "legacy_coverage", False):
        # Section 6.2 legacy mode: whole-packet sum, no pseudo-header.
        return fold_carries(word_sums(frame_bytes[:iplen])) == 0xFFFF
    if options.algorithm in ("tcp", "internet"):
        header = parse_ipv4_header(frame_bytes)
        total = pseudo_header_word_sum(header.src, header.dst, len(segment))
        total += word_sums(segment)
        if options.invert or options.placement is ChecksumPlacement.TRAILER:
            return fold_carries(total) == 0xFFFF
        stored = int.from_bytes(segment[16:18], "big")
        rest = bytearray(segment)
        rest[16:18] = b"\x00\x00"
        total = pseudo_header_word_sum(header.src, header.dst, len(segment))
        total += word_sums(rest)
        return fold_carries(total) == stored
    modulus = int(options.algorithm[-3:])
    return Fletcher8(modulus).verify(segment)
