"""Supervised process-pool execution: faults cost time, never results.

The paper's subject is surviving corruption on the wire; this module
extends the same discipline to the execution substrate.  A bare
``ProcessPoolExecutor.map`` dies with its weakest worker: one crashed
process, one ``BrokenProcessPool``, one stalled shard and an hours-long
sweep discards everything it computed.  :class:`SupervisedPool` runs
the same pure per-shard jobs under a **degradation ladder** instead:

1. **retry** — a failed job is resubmitted with exponential backoff
   plus deterministic jitter, up to ``max_retries`` attempts;
2. **pool respawn** — a broken pool (worker crash / lost process) or a
   per-shard timeout condemns the executor; it is shut down, a fresh
   one is spawned, and every unresolved job is requeued;
3. **in-process fallback** — a job that exhausts its retries (or
   outlives ``max_pool_restarts``) runs in the parent process, with
   fault injection disabled, so the sweep always completes;
4. a job that fails even in-process raises :class:`RunAborted` — the
   only rung that surrenders, reserved for genuine bugs.

Because every job is a pure function of its payload, a retried or
requeued shard recomputes *bit-identical* counters; supervision can
therefore never change a result, only the time it takes to produce.

Everything the ladder does is recorded in a :class:`RunHealth` record
(JSON round-trippable) that the experiment layer attaches to its
reports, so a sweep that survived twelve injected faults says so.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields

from repro.telemetry.core import current as _telemetry

__all__ = ["RunAborted", "RunHealth", "SupervisedPool"]

import json


class RunAborted(RuntimeError):
    """A job failed every rung of the degradation ladder.

    Raised only when the in-process, fault-free fallback itself fails —
    i.e. the job is genuinely broken, not merely unlucky.  The CLI
    turns this into a one-line diagnostic and a nonzero exit status.
    """


@dataclass
class RunHealth:
    """Structured account of everything supervision had to absorb.

    All counters are zero for a run that never misbehaved
    (:attr:`eventful` is then False and reports omit the record).
    """

    #: jobs resubmitted after an exception, crash, or timeout.
    retries: int = 0
    #: per-shard timeouts that condemned a pool.
    timeouts: int = 0
    #: ``BrokenProcessPool`` events observed (worker crashes).
    broken_pools: int = 0
    #: executors shut down and respawned.
    pool_restarts: int = 0
    #: jobs that completed via the in-process fallback rung.
    fallbacks: int = 0
    #: store read/write ``OSError``\ s absorbed by the runner.
    store_errors: int = 0
    #: corrupt cache entries evicted and recomputed during the run.
    evictions: int = 0
    #: faults injected by an attached :class:`repro.faults.FaultPlan`.
    faults_injected: int = 0
    #: corpus files skipped as unreadable during ingest.
    files_skipped: int = 0
    #: True once the run demoted itself to store-less computation.
    storeless: bool = False
    #: why the run stopped early (``"deadline"``, a signal name such as
    #: ``"SIGTERM"``), or ``""`` for a run that finished its sweep.
    interrupted: str = ""
    #: human-readable notes, one per degradation decision.
    degradations: list = field(default_factory=list)

    _INT_FIELDS = (
        "retries", "timeouts", "broken_pools", "pool_restarts",
        "fallbacks", "store_errors", "evictions", "faults_injected",
        "files_skipped",
    )

    @property
    def eventful(self):
        """True if supervision ever had to intervene."""
        return (
            any(getattr(self, name) for name in self._INT_FIELDS)
            or self.storeless
            or bool(self.interrupted)
            or bool(self.degradations)
        )

    def degrade(self, note):
        """Record one degradation decision (idempotent per note)."""
        if note not in self.degradations:
            self.degradations.append(note)

    def merge(self, other):
        """Fold another record into this one (e.g. across passes)."""
        for name in self._INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.storeless = self.storeless or other.storeless
        self.interrupted = self.interrupted or other.interrupted
        for note in other.degradations:
            self.degrade(note)
        return self

    # -- serialization (attached to ExperimentReport JSON) -----------------

    def to_dict(self):
        """A JSON-native dict; inverse of :meth:`from_dict`."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a record, rejecting unknown fields (schema drift)."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown RunHealth fields: %s" % ", ".join(sorted(unknown))
            )
        return cls(**payload)

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def summary(self):
        """One line for reports: ``"2 retries, 1 pool restart, ..."``."""
        labels = [
            ("retries", "retry", "retries"),
            ("timeouts", "timeout", "timeouts"),
            ("broken_pools", "broken pool", "broken pools"),
            ("pool_restarts", "pool restart", "pool restarts"),
            ("fallbacks", "in-process fallback", "in-process fallbacks"),
            ("store_errors", "store error", "store errors"),
            ("evictions", "eviction", "evictions"),
            ("faults_injected", "fault injected", "faults injected"),
            ("files_skipped", "unreadable file skipped",
             "unreadable files skipped"),
        ]
        parts = []
        for name, singular, plural in labels:
            count = getattr(self, name)
            if count:
                parts.append("%d %s" % (count, singular if count == 1 else plural))
        if self.storeless:
            parts.append("store-less mode")
        if self.interrupted:
            parts.append("degraded: %s" % self.interrupted)
        return ", ".join(parts) if parts else "clean"

    def render(self):
        """Multi-line rendering for the chaos CLI."""
        lines = ["run health         %s" % self.summary()]
        for note in self.degradations:
            lines.append("  degradation      %s" % note)
        return "\n".join(lines)


def _identity_prepare(index, attempt, job):
    """Default ``prepare`` hook: the payload is the job itself."""
    return job


class SupervisedPool:
    """Run pure jobs across processes, surviving what the pool breaks.

    ``function`` must be a picklable module-level callable taking one
    payload argument; ``prepare(index, attempt, job)`` maps a job to
    the payload actually submitted (the fault-injection layer uses it
    to pair jobs with scheduled fault directives — ``attempt is None``
    marks the fault-free in-process fallback and MUST return a clean
    payload).  Results are bit-identical to ``map(function, jobs)``
    because jobs are pure and merging is order-independent.
    """

    def __init__(
        self,
        function,
        workers=None,
        *,
        health=None,
        max_retries=3,
        max_pool_restarts=3,
        timeout=None,
        backoff_base=0.05,
        backoff_cap=2.0,
        jitter_seed=0,
        prepare=None,
    ):
        self.function = function
        self.workers = int(workers or 0)
        self.health = health if health is not None else RunHealth()
        self.max_retries = max_retries
        self.max_pool_restarts = max_pool_restarts
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.prepare = prepare if prepare is not None else _identity_prepare
        self._jitter = random.Random(jitter_seed)

    # -- public API --------------------------------------------------------

    def map(self, jobs):
        """Results in job order (list), however rough the ride was."""
        jobs = list(jobs)
        results = {}
        for index, result in self.run(jobs):
            results[index] = result
        return [results[index] for index in range(len(jobs))]

    def run(self, jobs):
        """Yield ``(index, result)`` pairs as jobs resolve.

        Callers that checkpoint per shard (the sharded runner) consume
        this incrementally; order within a generation follows
        submission order, retries resolve later.
        """
        jobs = list(jobs)
        if self.workers > 1 and len(jobs) > 1:
            yield from self._run_pool(jobs)
        else:
            for index, job in enumerate(jobs):
                yield index, self._run_local_primary(index, job)

    # -- local (sequential) execution --------------------------------------

    def _run_local_primary(self, index, job):
        """Sequential rung: same retry ladder, no pool."""
        for attempt in range(self.max_retries + 1):
            payload = self.prepare(index, attempt, job)
            try:
                return self.function(payload)
            except Exception:
                if attempt >= self.max_retries:
                    break
                self.health.retries += 1
                self._sleep(attempt)
        return self._fallback(index, job)

    def _fallback(self, index, job):
        """Bottom rung: in-process, fault-free, last chance."""
        self.health.fallbacks += 1
        telemetry = _telemetry()
        payload = self.prepare(index, None, job)
        try:
            with telemetry.span("supervisor.fallback"):
                return self.function(payload)
        except Exception as exc:
            raise RunAborted(
                "job %d failed after retries, pool restarts, and the "
                "in-process fallback: %s" % (index, exc)
            ) from exc

    def _sleep(self, attempt):
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        with _telemetry().span("supervisor.backoff"):
            time.sleep(delay * (0.5 + self._jitter.random()))

    # -- pooled execution ---------------------------------------------------

    def _run_pool(self, jobs):
        results_seen = set()
        queue = [(index, 0) for index in range(len(jobs))]
        pool = None
        try:
            while queue:
                if self.health.pool_restarts > self.max_pool_restarts:
                    # The pool itself is hopeless; drain in-process.
                    self.health.degrade(
                        "pool restart budget exhausted; draining %d job(s) "
                        "in-process" % len(queue)
                    )
                    for index, _ in queue:
                        if index not in results_seen:
                            results_seen.add(index)
                            yield index, self._fallback(index, jobs[index])
                    queue = []
                    break
                if pool is None:
                    with _telemetry().span("supervisor.pool_spawn"):
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                generation, queue = queue, []
                futures = [
                    (pool.submit(
                        self.function, self.prepare(index, attempt, jobs[index])
                    ), index, attempt)
                    for index, attempt in generation
                ]
                condemned = False
                for future, index, attempt in futures:
                    if condemned:
                        # The pool is being replaced; requeue untouched.
                        queue.append((index, attempt))
                        continue
                    try:
                        result = future.result(timeout=self.timeout)
                    except (_FutureTimeout, BrokenProcessPool) as exc:
                        if isinstance(exc, BrokenProcessPool):
                            self.health.broken_pools += 1
                        else:
                            self.health.timeouts += 1
                        condemned = True
                        if attempt < self.max_retries:
                            self.health.retries += 1
                            queue.append((index, attempt + 1))
                        else:
                            results_seen.add(index)
                            yield index, self._fallback(index, jobs[index])
                    except Exception:
                        if attempt < self.max_retries:
                            self.health.retries += 1
                            self._sleep(attempt)
                            queue.append((index, attempt + 1))
                        else:
                            results_seen.add(index)
                            yield index, self._fallback(index, jobs[index])
                    else:
                        results_seen.add(index)
                        yield index, result
                if condemned:
                    with _telemetry().span("supervisor.pool_teardown"):
                        pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    self.health.pool_restarts += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
