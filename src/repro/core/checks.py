"""Vectorized header checks applied to splice leading cells.

A splice only reaches the checksum/CRC stage if its first 40 bytes form
a plausible TCP/IP header consistent with the AAL5 length (Section
3.1's three conditions).  These checks run per *candidate cell*: every
candidate that could occupy slot 0 of a splice is classified once, and
each splice then inherits the verdict of its leading cell.

The checks (matching the paper's "have a length consistent with the
packet length and certain bits must be set"):

1. IPv4 version/IHL byte is 0x45;
2. IP total length equals the AAL5 frame's payload length;
3. protocol is TCP;
4. the IP header checksum verifies (skipped under the Section 6.2
   "unfilled header" ablation, where the field was never written);
5. TCP data offset is 5 (no options);
6. TCP flags look like a data segment: ACK set, SYN/RST/FIN clear.
"""

from __future__ import annotations

import numpy as np

__all__ = ["candidate_header_validity", "candidate_pseudo_sums"]


def candidate_header_validity(cand, expected_iplen, require_ip_checksum=True):
    """Classify candidate cells as valid splice leaders.

    ``cand`` is a ``(B, C, 48)`` uint8 array of candidate cells;
    ``expected_iplen`` the AAL5-consistent IP total length.  Returns a
    ``(B, C)`` boolean array.
    """
    cand = np.asarray(cand, dtype=np.uint8)
    valid = cand[..., 0] == 0x45
    totlen = (cand[..., 2].astype(np.uint32) << 8) | cand[..., 3]
    valid &= totlen == expected_iplen
    valid &= cand[..., 9] == 6
    if require_ip_checksum:
        words = cand[..., :20].reshape(cand.shape[:-1] + (10, 2)).astype(np.uint64)
        total = ((words[..., 0] << np.uint64(8)) | words[..., 1]).sum(axis=-1)
        while (total >> np.uint64(16)).any():
            total = (total & np.uint64(0xFFFF)) + (total >> np.uint64(16))
        valid &= total == 0xFFFF
    valid &= (cand[..., 32] >> 4) == 5
    flags = cand[..., 33]
    valid &= (flags & 0x10) != 0  # ACK present
    valid &= (flags & 0x07) == 0  # no SYN/RST/FIN
    return valid


def candidate_pseudo_sums(cand, tcp_length):
    """Pseudo-header word sums derived from each candidate's IP fields.

    The verifier builds the pseudo-header from the splice's *own* first
    cell (source, destination, protocol) and the AAL5-consistent TCP
    length.  Returns a ``(B, C)`` uint64 array of unfolded word sums;
    values for candidates that fail the header checks are never used.
    """
    cand = np.asarray(cand, dtype=np.uint64)
    src_dst = cand[..., 12:20].reshape(cand.shape[:-1] + (4, 2))
    total = ((src_dst[..., 0] << np.uint64(8)) | src_dst[..., 1]).sum(axis=-1)
    return total + cand[..., 9] + np.uint64(tcp_length)
