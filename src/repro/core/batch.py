"""Vectorized batch kernels behind the splice hot path.

This module is the numerical core of the ``--engine batch`` path: the
engine proper (:mod:`repro.core.engine`) stays an orchestrator and every
per-cell reduction lives here, built on the checksums layer's batch tier
(:mod:`repro.checksums.batch`).

Three families of machinery:

* **Range kernels** -- :func:`range_word_sums` / :func:`range_fletcher`
  / :func:`fold16` reduce whole ``(batch, cells, 48)`` matrices in one
  NumPy pass per cell slot.

* **Per-slot CRC folds** -- :class:`CellCrcFold` unrolls the affine
  register recurrence ``reg' = Z^48(reg) XOR c_cell`` across all slots:

      ``reg = Z^{48*slots + tail}(init)
              XOR_j Z^{48*(slots-1-j) + tail}(c_j)  XOR  c_trailer``

  so each slot costs one zero-feed application on the *small* per-cell
  image array plus a single gather+XOR on the big ``(pairs, splices)``
  matrix -- instead of four gathers per slot on the big matrix.

* **Incremental cut-splice evaluation** --
  :func:`evaluate_cut_splices` judges every *contiguous* splice (prefix
  of packet 1 followed by the matching suffix of packet 2, the
  single-burst-loss family) in O(cells) total: exclusive prefix
  partial sums of packet 1 and suffix partial sums / CRC remainders of
  packet 2 are each computed once, and every cut point is one combine.
  The general enumeration is quadratic in cells *per pair* because
  there are that many splices; the cut family is where the prefix/
  suffix algebra collapses the cost.

:func:`resolve_engine_kind` maps an options record's ``engine`` field
(``"auto"``/``"scalar"``/``"batch"``) to the concrete
:class:`~repro.checksums.batch.EngineKind`, consulting the registry's
batch capability advertisement.
"""

from __future__ import annotations

import numpy as np

from repro.checksums.batch import EngineKind
from repro.checksums.registry import get_algorithm, supports_batch
from repro.core.checks import candidate_header_validity, candidate_pseudo_sums
from repro.protocols.aal5 import CELL_PAYLOAD, aal5_crc_engine
from repro.protocols.packetizer import ChecksumPlacement

__all__ = [
    "CellCrcFold",
    "cut_selections",
    "evaluate_cut_splices",
    "fold16",
    "range_fletcher",
    "range_word_sums",
    "resolve_engine_kind",
]

_IP_HEADER_LEN = 20
_TCP_CHECKSUM_SPLICE_OFFSET = 36  # IP header + TCP checksum field offset
_CRC_FIELD_LEN = 4


def range_word_sums(arr, lo, hi):
    """Unfolded 16-bit word sums of ``arr[..., lo:hi]`` (``lo`` even)."""
    if hi <= lo:
        return np.zeros(arr.shape[:-1], dtype=np.uint64)
    seg = arr[..., lo:hi]
    if seg.shape[-1] % 2:
        pad = np.zeros(seg.shape[:-1] + (1,), dtype=np.uint8)
        seg = np.concatenate([seg, pad], axis=-1)
    words = seg.reshape(seg.shape[:-1] + (-1, 2)).astype(np.uint64)
    return ((words[..., 0] << np.uint64(8)) | words[..., 1]).sum(axis=-1)


def range_fletcher(arr, lo, hi, modulus):
    """Local Fletcher (A, B) over ``arr[..., lo:hi]``; B ends at ``hi``."""
    shape = arr.shape[:-1]
    if hi <= lo:
        zero = np.zeros(shape, dtype=np.int64)
        return zero, zero.copy()
    seg = arr[..., lo:hi].astype(np.int64)
    a = seg.sum(axis=-1) % modulus
    weights = np.arange(hi - lo, 0, -1, dtype=np.int64)
    b = (seg * weights).sum(axis=-1) % modulus
    return a, b


def fold16(values):
    """Fold accumulated word sums down to 16 bits, vectorized."""
    values = values.astype(np.uint64, copy=True)
    while (values >> np.uint64(16)).any():
        values = (values & np.uint64(0xFFFF)) + (values >> np.uint64(16))
    return values


def resolve_engine_kind(options):
    """Concrete :class:`EngineKind` for an options record.

    ``auto`` resolves to ``batch`` exactly when the transport
    algorithm, the AAL5 CRC-32 and every auxiliary CRC advertise the
    registry's batch capability; anything else falls back to the
    scalar reference receiver.  Names the registry does not know count
    as not batch-capable here -- ``SpliceEngine`` raises its own
    (clearer) error for them.
    """
    kind = EngineKind(getattr(options, "engine", EngineKind.AUTO))
    if kind is not EngineKind.AUTO:
        return kind
    names = {options.algorithm, "crc32-aal5", *options.aux_crcs}
    try:
        if all(supports_batch(name) for name in names):
            return EngineKind.BATCH
    except KeyError:
        pass
    return EngineKind.SCALAR


class CellCrcFold:
    """Per-slot zero-feed fold of cell CRC images.

    Feeding ``slots`` candidate cells and then a ``tail``-byte trailer
    chunk from the preset register unrolls, by GF(2) linearity, to the
    XOR form in the module docstring.  The per-slot operators
    ``Z^{48*(slots-1-j) + tail}`` are built once (their tables are
    cached on the CRC engine) and applied to the per-cell image arrays
    *before* the per-splice gather, which is what removes the wide
    ``apply_vec`` from the inner loop.
    """

    def __init__(self, engine, slots, tail, span=CELL_PAYLOAD):
        self.engine = engine
        self.slots = slots
        self._ops = [
            engine.zero_feed(span * (slots - 1 - j) + tail)
            for j in range(slots)
        ]
        self._const = np.uint32(
            engine.zero_feed(span * slots + tail).apply(engine.register_init)
        )

    def fold_selected(self, images, idx, trailer_images):
        """Registers of every selection row: ``(B, S)`` from gathers.

        ``images`` is the ``(B, n_cand)`` per-cell image array,
        ``idx`` the ``(S, slots)`` selection matrix, ``trailer_images``
        the ``(B,)`` trailer-chunk images.
        """
        batch = images.shape[0]
        reg = np.empty((batch, idx.shape[0]), dtype=np.uint32)
        reg[...] = self._const
        reg ^= trailer_images[:, None]
        for j, op in enumerate(self._ops):
            reg ^= op.apply_vec(images)[:, idx[:, j]]
        return reg

    def fold_columns(self, columns, trailer_images):
        """Registers of one explicit per-slot column layout: ``(B,)``.

        ``columns`` is ``(B, slots)`` -- the image of the cell occupying
        each slot -- which is how the intact-frame reference value is
        folded without enumerating selections.
        """
        reg = self._const ^ trailer_images
        for j, op in enumerate(self._ops):
            reg = reg ^ op.apply_vec(columns[:, j])
        return reg


def cut_selections(n1, n2):
    """Selection rows of every contiguous cut splice, most-from-2 first.

    Cut ``j`` keeps the first ``j`` cells of packet 1 and the suffix of
    packet 2 from slot ``j`` on (plus its trailer); ``j`` ranges from 0
    (intact packet 2) to ``min(n2 - 1, n1 - 1)``.  Rows index the
    engine's candidate layout (packet 1's unmarked cells, then packet
    2's).
    """
    slots = n2 - 1
    cuts = min(slots, n1 - 1)
    rows = np.empty((cuts + 1, slots), dtype=np.int16)
    for j in range(cuts + 1):
        rows[j, :j] = np.arange(j, dtype=np.int16)
        rows[j, j:] = np.arange(n1 - 1 + j, n1 - 1 + slots, dtype=np.int16)
    return rows


def evaluate_cut_splices(cells1, cells2, iplen1, iplen2, options):
    """Verdicts of every contiguous cut splice in O(cells) total.

    ``cells1``/``cells2`` are ``(B, n, 48)`` uint8 arrays of same-shape
    frame pairs.  Returns ``(selections, verdicts)`` where
    ``selections`` is the :func:`cut_selections` matrix and each
    verdict array is ``(B, cuts)`` -- the same verdict semantics as
    ``SpliceEngine.splice_verdicts`` restricted to the cut columns,
    and bit-identical to them (the conformance suite asserts this).

    The cost argument: every per-slot quantity (word sums, Fletcher
    pairs, operator-applied CRC images, window equality) is computed
    once per frame, then cut ``j`` is read off an exclusive prefix
    scan of packet 1's values and a suffix scan of packet 2's --
    O(cells) work overall instead of O(cells) per cut.
    """
    cells1 = np.asarray(cells1, dtype=np.uint8)
    cells2 = np.asarray(cells2, dtype=np.uint8)
    batch, n1 = cells1.shape[:2]
    n2 = cells2.shape[1]
    slots = n2 - 1
    cuts = min(slots, n1 - 1)
    trailer = cells2[:, n2 - 1]
    iplen = iplen2

    coverage_start = 0 if options.legacy_coverage else _IP_HEADER_LEN
    windows = []
    for j in range(slots):
        lo = max(coverage_start - CELL_PAYLOAD * j, 0)
        hi = int(np.clip(iplen - CELL_PAYLOAD * j, lo, CELL_PAYLOAD))
        windows.append((lo, hi))
    t_hi = int(np.clip(iplen - CELL_PAYLOAD * slots, 0, CELL_PAYLOAD))

    # -- header: cut 0 leads with packet 2's first cell, the rest with
    #    packet 1's.
    valid2 = candidate_header_validity(
        cells2[:, :1], iplen, require_ip_checksum=options.require_ip_checksum
    )[:, 0]
    valid1 = candidate_header_validity(
        cells1[:, :1], iplen, require_ip_checksum=options.require_ip_checksum
    )[:, 0]
    header_pass = np.empty((batch, cuts + 1), dtype=bool)
    header_pass[:, 0] = valid2
    header_pass[:, 1:] = valid1[:, None]

    # -- transport ------------------------------------------------------
    if options.algorithm in ("tcp", "internet"):
        transport = _cut_tcp_valid(
            cells1, cells2, trailer, windows, t_hi, iplen, cuts, options
        )
    elif options.algorithm.startswith("fletcher"):
        transport = _cut_fletcher_valid(
            cells1, cells2, trailer, windows, t_hi, iplen, cuts,
            int(options.algorithm[-3:]),
        )
    else:
        raise ValueError(
            "unsupported transport algorithm %r" % options.algorithm
        )

    # -- CRCs: prefix/suffix XOR scans of operator-applied images ------
    crc32_engine = aal5_crc_engine()
    reg = _cut_crc_registers(
        crc32_engine, cells1, cells2, trailer, slots, cuts, CELL_PAYLOAD
    )
    crc32 = reg == np.uint32(crc32_engine.residue_register("big"))

    aux = {}
    for name in options.aux_crcs:
        engine = get_algorithm(name)
        reg = _cut_crc_registers(
            engine, cells1, cells2, trailer[:, : CELL_PAYLOAD - _CRC_FIELD_LEN],
            slots, cuts, CELL_PAYLOAD - _CRC_FIELD_LEN,
        )
        # Cut 0 *is* the intact second frame, i.e. the reference value.
        aux[name] = reg == reg[:, :1]

    # -- identical: prefix-AND / suffix-AND of per-slot window equality
    identical = _cut_identical(
        cells1, cells2, trailer, slots, cuts, iplen1, iplen2, options
    )

    verdicts = {
        "header_pass": header_pass,
        "transport": transport,
        "crc32": crc32,
        "identical": identical,
        "aux": aux,
    }
    return cut_selections(n1, n2), verdicts


def _cut_tcp_valid(cells1, cells2, trailer, windows, t_hi, iplen, cuts, options):
    batch = cells1.shape[0]
    slots = len(windows)
    prefix = np.zeros((batch, cuts + 1), dtype=np.uint64)
    for i in range(cuts):
        prefix[:, i + 1] = prefix[:, i] + range_word_sums(
            cells1[:, i], *windows[i]
        )
    suffix = np.zeros((batch, slots + 1), dtype=np.uint64)
    for i in range(slots - 1, -1, -1):
        suffix[:, i] = suffix[:, i + 1] + range_word_sums(
            cells2[:, i], *windows[i]
        )
    total = prefix + suffix[:, : cuts + 1]
    total += range_word_sums(trailer, 0, t_hi)[:, None]
    if not options.legacy_coverage:
        seg_len = iplen - _IP_HEADER_LEN
        pseudo2 = candidate_pseudo_sums(cells2[:, :1], seg_len)[:, 0]
        pseudo1 = candidate_pseudo_sums(cells1[:, :1], seg_len)[:, 0]
        total[:, 0] += pseudo2
        total[:, 1:] += pseudo1[:, None]
    if options.invert or options.placement is ChecksumPlacement.TRAILER:
        return fold16(total) == 0xFFFF
    # Section 6.3 ablation: compare against the field in the lead cell.
    field2 = (
        cells2[:, 0, _TCP_CHECKSUM_SPLICE_OFFSET].astype(np.uint64)
        << np.uint64(8)
    ) | cells2[:, 0, _TCP_CHECKSUM_SPLICE_OFFSET + 1]
    field1 = (
        cells1[:, 0, _TCP_CHECKSUM_SPLICE_OFFSET].astype(np.uint64)
        << np.uint64(8)
    ) | cells1[:, 0, _TCP_CHECKSUM_SPLICE_OFFSET + 1]
    field = np.empty((batch, cuts + 1), dtype=np.uint64)
    field[:, 0] = field2
    field[:, 1:] = field1[:, None]
    return fold16(total - field) == field


def _cut_fletcher_valid(
    cells1, cells2, trailer, windows, t_hi, iplen, cuts, modulus
):
    batch = cells1.shape[0]
    slots = len(windows)

    def contribution(cells, i):
        lo, hi = windows[i]
        a, b = range_fletcher(cells[:, i], lo, hi, modulus)
        distance = iplen - min(CELL_PAYLOAD * i + hi, iplen)
        return a, (b + distance * a) % modulus

    a_prefix = np.zeros((batch, cuts + 1), dtype=np.int64)
    b_prefix = np.zeros((batch, cuts + 1), dtype=np.int64)
    for i in range(cuts):
        a_i, b_i = contribution(cells1, i)
        a_prefix[:, i + 1] = a_prefix[:, i] + a_i
        b_prefix[:, i + 1] = b_prefix[:, i] + b_i
    a_suffix = np.zeros((batch, slots + 1), dtype=np.int64)
    b_suffix = np.zeros((batch, slots + 1), dtype=np.int64)
    for i in range(slots - 1, -1, -1):
        a_i, b_i = contribution(cells2, i)
        a_suffix[:, i] = a_suffix[:, i + 1] + a_i
        b_suffix[:, i] = b_suffix[:, i + 1] + b_i
    a_t, b_t = range_fletcher(trailer, 0, t_hi, modulus)
    a_total = a_prefix + a_suffix[:, : cuts + 1] + a_t[:, None]
    b_total = b_prefix + b_suffix[:, : cuts + 1] + b_t[:, None]
    return (a_total % modulus == 0) & (b_total % modulus == 0)


def _cut_crc_registers(engine, cells1, cells2, trailer_chunk, slots, cuts, tail):
    """Cut-splice registers via prefix/suffix XOR scans, ``(B, cuts+1)``."""
    fold = CellCrcFold(engine, slots, tail)
    trailer_images = engine.process_cells(trailer_chunk)
    batch = cells1.shape[0]
    prefix = np.zeros((batch, cuts + 1), dtype=np.uint32)
    suffix = np.zeros((batch, slots + 1), dtype=np.uint32)
    if slots:
        applied1 = np.stack(
            [
                fold._ops[i].apply_vec(engine.process_cells(cells1[:, i]))
                for i in range(cuts)
            ],
            axis=1,
        ) if cuts else np.zeros((batch, 0), dtype=np.uint32)
        applied2 = np.stack(
            [
                fold._ops[i].apply_vec(engine.process_cells(cells2[:, i]))
                for i in range(slots)
            ],
            axis=1,
        )
        for i in range(cuts):
            prefix[:, i + 1] = prefix[:, i] ^ applied1[:, i]
        for i in range(slots - 1, -1, -1):
            suffix[:, i] = suffix[:, i + 1] ^ applied2[:, i]
    reg = prefix ^ suffix[:, : cuts + 1]
    reg ^= (fold._const ^ trailer_images)[:, None]
    return reg


def _cut_identical(cells1, cells2, trailer, slots, cuts, iplen1, iplen2, options):
    batch = cells1.shape[0]
    iplen = iplen2
    if options.placement is ChecksumPlacement.TRAILER:
        iplen -= 2
    eq = np.ones((batch, slots), dtype=bool)
    for i in range(min(slots, cells1.shape[1])):
        cmp_len = int(np.clip(iplen - CELL_PAYLOAD * i, 0, CELL_PAYLOAD))
        if cmp_len:
            eq[:, i] = (
                cells1[:, i, :cmp_len] == cells2[:, i, :cmp_len]
            ).all(axis=-1)
    # Identical to packet 2: every substituted prefix slot must match.
    ident2 = np.ones((batch, cuts + 1), dtype=bool)
    for i in range(cuts):
        ident2[:, i + 1] = ident2[:, i] & eq[:, i]
    result = ident2
    # Identical to packet 1: only possible when lengths agree.
    if cells1.shape[1] == cells2.shape[1] and iplen1 == iplen2:
        t_len = int(np.clip(iplen - CELL_PAYLOAD * slots, 0, CELL_PAYLOAD))
        if t_len:
            trailer_ok = (
                trailer[:, :t_len] == cells1[:, -1, :t_len]
            ).all(axis=-1)
        else:
            trailer_ok = np.ones(batch, dtype=bool)
        ident1 = np.empty((batch, slots + 1), dtype=bool)
        ident1[:, slots] = True
        for i in range(slots - 1, -1, -1):
            ident1[:, i] = ident1[:, i + 1] & eq[:, i]
        result = result | (ident1[:, : cuts + 1] & trailer_ok[:, None])
    return result
