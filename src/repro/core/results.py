"""Counters behind the paper's splice tables.

The rows of Tables 1-3 (and the derived quantities of Tables 6 and 10)
all come from one set of counters accumulated over every splice of
every adjacent packet pair:

* ``total`` splices inspected;
* ``caught_by_header`` -- rejected by the IP/TCP/AAL5 header checks;
* ``identical`` -- payload identical to one of the original packets
  (benign: no corruption would be delivered);
* ``remaining`` -- corrupted splices that only the CRC or the transport
  checksum can catch;
* per-detector miss counts out of ``remaining``;
* per-substitution-length breakdowns (Table 6's "Actual" row);
* the second-header case split (Section 5.3);
* ``identical_rejected`` -- identical-data splices the transport
  checksum rejects anyway (the trailer checksum's benign false
  positives, Table 10).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field, fields

__all__ = ["SpliceCounters"]

_COUNTER_FIELDS = ("missed_aux", "remaining_by_len", "missed_by_len")
#: Counter fields whose keys are substitution lengths (ints); JSON
#: object keys are strings, so these round-trip through int().
_INT_KEYED = ("remaining_by_len", "missed_by_len")


@dataclass
class SpliceCounters:
    """Accumulated splice statistics; add instances to merge runs."""

    total: int = 0
    caught_by_header: int = 0
    identical: int = 0
    remaining: int = 0
    missed_transport: int = 0
    missed_crc32: int = 0
    missed_aux: Counter = field(default_factory=Counter)
    identical_rejected: int = 0
    remaining_by_len: Counter = field(default_factory=Counter)
    missed_by_len: Counter = field(default_factory=Counter)
    remaining_with_hdr2: int = 0
    missed_with_hdr2: int = 0
    pairs: int = 0
    packets: int = 0
    files: int = 0

    def __add__(self, other):
        merged = SpliceCounters()
        for name in (
            "total",
            "caught_by_header",
            "identical",
            "remaining",
            "missed_transport",
            "missed_crc32",
            "identical_rejected",
            "remaining_with_hdr2",
            "missed_with_hdr2",
            "pairs",
            "packets",
            "files",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.missed_aux = self.missed_aux + other.missed_aux
        merged.remaining_by_len = self.remaining_by_len + other.remaining_by_len
        merged.missed_by_len = self.missed_by_len + other.missed_by_len
        return merged

    # -- derived rates (all "percent of remaining", as in the tables) ------

    def _pct_of_remaining(self, count):
        return 100.0 * count / self.remaining if self.remaining else 0.0

    @property
    def caught_by_header_pct(self):
        """Header-caught splices as a percent of all splices."""
        return 100.0 * self.caught_by_header / self.total if self.total else 0.0

    @property
    def identical_pct(self):
        return 100.0 * self.identical / self.total if self.total else 0.0

    @property
    def miss_rate_transport(self):
        """Transport-checksum misses as a percent of remaining splices."""
        return self._pct_of_remaining(self.missed_transport)

    @property
    def miss_rate_crc32(self):
        return self._pct_of_remaining(self.missed_crc32)

    def miss_rate_aux(self, name):
        return self._pct_of_remaining(self.missed_aux.get(name, 0))

    def miss_rate_by_len(self, k):
        """Table 6's "Actual": misses / remaining for k-cell substitutions."""
        remaining = self.remaining_by_len.get(k, 0)
        if not remaining:
            return 0.0
        return 100.0 * self.missed_by_len.get(k, 0) / remaining

    @property
    def effective_bits(self):
        """Bits of a uniform checksum with the observed transport miss rate.

        The paper's headline: the 16-bit TCP sum performed "about as
        well as a 10-bit CRC".  Computed as ``log2(remaining/missed)``.
        """
        import math

        if not self.missed_transport or not self.remaining:
            return float("inf")
        return math.log2(self.remaining / self.missed_transport)

    # -- serialization (the repro.store result cache's wire format) --------

    def to_dict(self):
        """A JSON-native dict; inverse of :meth:`from_dict`."""
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in _COUNTER_FIELDS:
                value = {str(k): int(v) for k, v in sorted(value.items())}
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, payload):
        """Rebuild counters from :meth:`to_dict` output.

        Unknown keys are rejected rather than ignored: a schema drift
        between writer and reader must surface as an error, never as
        silently dropped counts.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown SpliceCounters fields: %s" % ", ".join(sorted(unknown))
            )
        kwargs = {}
        for name, value in payload.items():
            if name in _COUNTER_FIELDS:
                keyfn = int if name in _INT_KEYED else str
                value = Counter({keyfn(k): int(v) for k, v in value.items()})
            kwargs[name] = value
        return cls(**kwargs)

    def to_json(self):
        """Canonical JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def sanity_check(self):
        """Internal consistency of the counter relationships."""
        assert self.total == self.caught_by_header + self.identical + self.remaining
        assert self.missed_transport <= self.remaining
        assert self.missed_crc32 <= self.remaining
        assert sum(self.remaining_by_len.values()) == self.remaining
        assert self.missed_with_hdr2 <= self.remaining_with_hdr2
        for k, missed in self.missed_by_len.items():
            assert missed <= self.remaining_by_len.get(k, 0)
        return True
