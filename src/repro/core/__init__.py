"""The paper's experimental instrument: the AAL5 packet-splice engine.

A *packet splice* happens when ATM cell losses merge pieces of two
adjacent AAL5 frames into something that still looks like one frame
(Section 3.1).  This package enumerates every possible splice of each
adjacent packet pair of a simulated file transfer and tests it against
the header checks, the AAL5 CRC-32, and the configured transport
checksum -- exactly the paper's methodology.

- :mod:`repro.core.enumeration` -- exact splice combinatorics.
- :mod:`repro.core.checks` -- the IP/TCP/AAL5 header validity checks.
- :mod:`repro.core.results` -- the counters behind the paper's tables.
- :mod:`repro.core.engine` -- the vectorized splice evaluator.
- :mod:`repro.core.experiment` -- drives an engine over a filesystem.
- :mod:`repro.core.supervisor` -- fault-surviving pool execution and
  the :class:`RunHealth` record experiments attach to their reports.
"""

from repro.core.enumeration import (
    SpliceEnumeration,
    enumerate_splices,
    splice_count,
    structural_splice_count,
)
from repro.core.engine import EngineOptions, SpliceEngine
from repro.core.experiment import (
    SpliceExperimentResult,
    run_per_file_experiment,
    run_splice_experiment,
)
from repro.core.results import SpliceCounters
from repro.core.supervisor import RunAborted, RunHealth, SupervisedPool

__all__ = [
    "EngineOptions",
    "RunAborted",
    "RunHealth",
    "SpliceCounters",
    "SpliceEngine",
    "SpliceEnumeration",
    "SpliceExperimentResult",
    "SupervisedPool",
    "enumerate_splices",
    "run_per_file_experiment",
    "run_splice_experiment",
    "splice_count",
    "structural_splice_count",
]
