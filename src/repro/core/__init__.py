"""The paper's experimental instrument: the AAL5 packet-splice engine.

A *packet splice* happens when ATM cell losses merge pieces of two
adjacent AAL5 frames into something that still looks like one frame
(Section 3.1).  This package enumerates every possible splice of each
adjacent packet pair of a simulated file transfer and tests it against
the header checks, the AAL5 CRC-32, and the configured transport
checksum -- exactly the paper's methodology.

- :mod:`repro.core.enumeration` -- exact splice combinatorics.
- :mod:`repro.core.checks` -- the IP/TCP/AAL5 header validity checks.
- :mod:`repro.core.results` -- the counters behind the paper's tables.
- :mod:`repro.core.engine` -- the vectorized splice evaluator.
- :mod:`repro.core.experiment` -- drives an engine over a filesystem.
- :mod:`repro.core.supervisor` -- fault-surviving pool execution and
  the :class:`RunHealth` record experiments attach to their reports.

Exports resolve lazily (PEP 562), mirroring the top-level package:
importing :mod:`repro.core` -- which happens whenever *any* submodule
is imported, including the import-cheap :mod:`repro.core.supervisor`
and :mod:`repro.core.results` that the CLI and the store rely on --
must not drag in the vectorized engine and numpy.  Cold entry points
(a warm ``--cache`` hit, ``--help``) stay fast; reprolint rule REP303
enforces this discipline.
"""

from __future__ import annotations

import importlib

#: Public name -> defining submodule, resolved on first attribute use.
_EXPORTS = {
    "EngineOptions": "repro.core.engine",
    "RunAborted": "repro.core.supervisor",
    "RunHealth": "repro.core.supervisor",
    "SpliceCounters": "repro.core.results",
    "SpliceEngine": "repro.core.engine",
    "SpliceEnumeration": "repro.core.enumeration",
    "SpliceExperimentResult": "repro.core.experiment",
    "SupervisedPool": "repro.core.supervisor",
    "enumerate_splices": "repro.core.enumeration",
    "run_per_file_experiment": "repro.core.experiment",
    "run_splice_experiment": "repro.core.experiment",
    "splice_count": "repro.core.enumeration",
    "structural_splice_count": "repro.core.enumeration",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        # ``from repro.core import reference`` style submodule access.
        try:
            return importlib.import_module("%s.%s" % (__name__, name))
        except ModuleNotFoundError:
            raise AttributeError(
                "module %r has no attribute %r" % (__name__, name)
            ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
