"""Monte Carlo cell-loss simulation, cross-validating the enumeration.

Where the splice engine asks "what would happen for *every possible*
splice", this module drops cells with an actual loss process, reassembles
whatever arrives, and lets a receiver judge each frame -- the physical
experiment the enumeration abstracts.  Events:

* ``delivered_intact`` -- a frame identical to an original was accepted;
* ``detected_*`` -- a corrupted frame rejected by the length check, the
  header checks, or the check codes (attributed as "both", "CRC only"
  -- i.e. the transport sum missed it -- or "transport only");
* ``undetected_corruption`` -- a corrupted frame accepted by everything:
  the event the paper quantifies;
* ``benign_identical`` -- a splice whose delivered packet equals an
  original (no corruption even though cells were lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.reference import _header_ok, _transport_ok
from repro.protocols.aal5 import AAL5_TRAILER_LEN, CELL_PAYLOAD, aal5_crc_engine
from repro.protocols.cellstream import (
    AAL5Reassembler,
    apply_loss,
    stream_cells,
)

__all__ = ["MonteCarloTally", "judge_received_frame", "run_monte_carlo"]


@dataclass
class MonteCarloTally:
    """Event counts over a Monte Carlo run."""

    cells_sent: int = 0
    cells_delivered: int = 0
    frames_received: int = 0
    delivered_intact: int = 0
    benign_identical: int = 0
    detected_length: int = 0
    detected_header: int = 0
    detected_by_both: int = 0
    detected_by_crc_only: int = 0
    detected_by_transport_only: int = 0
    undetected_corruption: int = 0
    spurious_rejects: int = 0
    #: Corrupted frames by the number of original frames contributing
    #: cells -- span 2 is what the exact enumeration covers; larger
    #: spans require additional marked cells to be lost.
    corrupted_by_span: dict = field(default_factory=dict)

    def __add__(self, other):
        merged = MonteCarloTally()
        for name in self.__dataclass_fields__:
            if name == "corrupted_by_span":
                continue
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.corrupted_by_span = dict(self.corrupted_by_span)
        for span, count in other.corrupted_by_span.items():
            merged.corrupted_by_span[span] = (
                merged.corrupted_by_span.get(span, 0) + count
            )
        return merged

    @property
    def corrupted_frames(self):
        """Frames that were corrupted and reached the checksum stage."""
        return (
            self.detected_by_both
            + self.detected_by_crc_only
            + self.detected_by_transport_only
            + self.undetected_corruption
        )

    @property
    def transport_missed(self):
        """Corrupted frames the transport checksum accepted (the
        engine's ``missed_transport`` analogue: the CRC may still have
        caught them)."""
        return self.undetected_corruption + self.detected_by_crc_only

    @property
    def transport_miss_rate(self):
        """Percent of corrupted frames the transport sum accepted."""
        corrupted = self.corrupted_frames
        return 100.0 * self.transport_missed / corrupted if corrupted else 0.0

    def sanity_check(self):
        assert sum(self.corrupted_by_span.values()) == self.corrupted_frames
        assert self.frames_received == (
            self.delivered_intact
            + self.benign_identical
            + self.spurious_rejects
            + self.detected_length
            + self.detected_header
            + self.detected_by_both
            + self.detected_by_crc_only
            + self.detected_by_transport_only
            + self.undetected_corruption
        )
        return True


def judge_received_frame(frame_cells, options, originals):
    """Classify one reassembled frame as a receiver would.

    ``originals`` maps original frame bytes -> IP packet bytes, used
    only to decide (with oracle knowledge) whether an accepted frame
    was actually corrupted.

    Returns one of the :class:`MonteCarloTally` field names.
    """
    data = b"".join(frame_cells)

    if data in originals:
        # Cheapest oracle check first: byte-identical frame.
        return "delivered_intact"

    # AAL5 length check.
    length = int.from_bytes(data[-6:-4], "big")
    max_payload = len(data) - AAL5_TRAILER_LEN
    if not max_payload - (CELL_PAYLOAD - 1) <= length <= max_payload:
        return "detected_length"

    # IP/TCP header checks against the AAL5-consistent length.
    if len(data) < 40 or not _header_ok(
        data, length, require_ip_checksum=options.require_ip_checksum
    ):
        return "detected_header"

    transport_ok = _transport_ok(data, length, options)
    engine = aal5_crc_engine()
    crc_ok = engine.compute(data[:-4]) == int.from_bytes(data[-4:], "big")

    # Delivered-data region: with trailer placement the final two bytes
    # of the packet are the check value, not user data (mirrors the
    # engine's identical-data accounting).
    from repro.protocols.packetizer import ChecksumPlacement

    cmp_end = length
    if options.placement is ChecksumPlacement.TRAILER:
        cmp_end -= 2
    delivered_packet = data[:cmp_end]
    is_benign = any(
        original[:cmp_end] == delivered_packet for original in originals.values()
    )

    if transport_ok and crc_ok:
        return "benign_identical" if is_benign else "undetected_corruption"
    if is_benign:
        # A benign splice rejected by a check (e.g. the CRC over a
        # payload-identical splice carrying the other packet's trailer).
        return "spurious_rejects"
    if transport_ok:
        return "detected_by_crc_only"
    if crc_ok:
        return "detected_by_transport_only"
    return "detected_by_both"


def run_monte_carlo(units, loss_model, options, trials=1, seed=0):
    """Stream a transfer through a loss process ``trials`` times.

    ``units`` is a :class:`TransferUnit` list (one file's transfer);
    ``loss_model`` one of the processes in
    :mod:`repro.protocols.cellstream`; ``options`` the engine options
    matching the packetizer configuration.  Returns a
    :class:`MonteCarloTally`.
    """
    rng = np.random.default_rng(seed)
    cells = stream_cells(units)
    originals = {
        unit.frame.frame: unit.packet.ip_packet for unit in units
    }
    tally = MonteCarloTally()
    for _ in range(trials):
        delivered = apply_loss(cells, loss_model, rng)
        tally.cells_sent += len(cells)
        tally.cells_delivered += len(delivered)
        reassembler = AAL5Reassembler()
        pending_sources = []
        for cell in delivered:
            pending_sources.append(cell.frame_index)
            frame = reassembler.feed(cell)
            if frame is None:
                if reassembler.pending_cells == 0:  # oversize discard
                    pending_sources = []
                continue
            sources, pending_sources = pending_sources, []
            tally.frames_received += 1
            outcome = judge_received_frame(frame, options, originals)
            setattr(tally, outcome, getattr(tally, outcome) + 1)
            if outcome in (
                "detected_by_both",
                "detected_by_crc_only",
                "detected_by_transport_only",
                "undetected_corruption",
            ):
                span = len(set(sources))
                tally.corrupted_by_span[span] = (
                    tally.corrupted_by_span.get(span, 0) + 1
                )
    tally.sanity_check()
    return tally
