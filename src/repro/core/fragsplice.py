"""The fragmentation-and-reassembly error model.

A non-strict reassembler (IP ID wrap, middlebox bug) can combine
fragments from *two* datagrams of the same flow when their offsets
tile the packet -- the IP-layer analogue of the AAL5 splice.  For two
adjacent packets fragmented identically, every non-empty subset of
fragment positions can be taken from the second packet instead of the
first; the result reassembles cleanly and only the transport checksum
can object.

The key structural difference from the cell splice: substituted
fragments sit at the **same byte offset** they came from.  Nothing is
shifted, so Fletcher's positional term sees identical positions and
loses exactly the "colouring" advantage it enjoys in the cell-splice
model (where dropped cells shift their successors).  Comparing the
two models quantifies the paper's Section 5.2 analysis from the other
direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.checksums.batch import EngineKind
from repro.checksums.fletcher import Fletcher8, fletcher8
from repro.checksums.internet import fold_carries, word_sums
from repro.core.batch import fold16
from repro.protocols.fragmentation import fragment_packet, reassemble_fragments
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.ip import IP_HEADER_LEN
from repro.protocols.tcp import pseudo_header_word_sum

__all__ = ["FragmentSpliceCounters", "run_fragment_splice_experiment"]


@dataclass
class FragmentSpliceCounters:
    """Counters of the fragment-interchange experiment."""

    pairs: int = 0
    total: int = 0
    identical: int = 0
    remaining: int = 0
    missed: dict = field(default_factory=dict)

    def miss_rate(self, algorithm):
        if not self.remaining:
            return 0.0
        return 100.0 * self.missed.get(algorithm, 0) / self.remaining

    def __add__(self, other):
        merged = FragmentSpliceCounters(
            pairs=self.pairs + other.pairs,
            total=self.total + other.total,
            identical=self.identical + other.identical,
            remaining=self.remaining + other.remaining,
        )
        merged.missed = dict(self.missed)
        for key, value in other.missed.items():
            merged.missed[key] = merged.missed.get(key, 0) + value
        return merged


def _verify(algorithm, packet):
    """Receiver-side transport verification of a reassembled packet."""
    segment = packet[IP_HEADER_LEN:]
    if algorithm == "tcp":
        src = int.from_bytes(packet[12:16], "big")
        dst = int.from_bytes(packet[16:20], "big")
        total = pseudo_header_word_sum(src, dst, len(segment))
        total += word_sums(segment)
        return int(fold_carries(total)) == 0xFFFF
    return Fletcher8(int(algorithm[-3:])).verify(segment)


def run_fragment_splice_experiment(
    filesystem,
    config,
    mtu=92,
    algorithms=("tcp", "fletcher255", "fletcher256"),
    max_positions=8,
    max_files=None,
    engine="auto",
):
    """Run the fragment-interchange error model over a filesystem.

    For every adjacent packet pair (built per ``config``, one
    packetizer run per algorithm so each carries its own checksum),
    both packets are fragmented at ``mtu`` and every non-empty,
    non-total subset of same-offset fragment substitutions is applied
    to the first packet.  ``max_positions`` caps the number of
    fragment positions considered (2^k subsets).

    ``engine`` selects the evaluation path: ``batch`` (the default
    that ``auto`` resolves to here -- every algorithm this model
    accepts decomposes) judges all subsets of a pair at once from
    per-position partial sums; ``scalar`` reassembles and verifies
    each subset byte-at-a-time, bit-identically.

    Returns ``{algorithm: FragmentSpliceCounters}``.
    """
    kind = EngineKind(engine)
    if kind is EngineKind.AUTO:
        kind = EngineKind.BATCH
    judge = _judge_pair_scalar if kind is EngineKind.SCALAR else _judge_pair
    results = {}
    for algorithm in algorithms:
        simulator = FileTransferSimulator(config.with_overrides(algorithm=algorithm))
        counters = FragmentSpliceCounters()
        for index, file in enumerate(filesystem):
            if max_files is not None and index >= max_files:
                break
            packets = [u.packet.ip_packet for u in simulator.transfer(file.data)]
            for first, second in zip(packets, packets[1:]):
                if len(first) != len(second):
                    continue
                frags1 = fragment_packet(_clear_df(first), mtu)
                frags2 = fragment_packet(_clear_df(second), mtu)
                positions = min(len(frags1), max_positions)
                if positions < 2:
                    continue
                counters.pairs += 1
                counters += judge(
                    frags1[:positions] + frags1[positions:],
                    frags2,
                    positions,
                    algorithm,
                )
        results[algorithm] = counters
    return results


def _clear_df(packet):
    """Clear the DF bit (and fix the header checksum) so we may fragment."""
    from repro.checksums.internet import internet_checksum_field

    patched = bytearray(packet)
    flags = int.from_bytes(patched[6:8], "big") & ~0x4000
    patched[6:8] = flags.to_bytes(2, "big")
    patched[10:12] = b"\x00\x00"
    patched[10:12] = internet_checksum_field(patched[:IP_HEADER_LEN]).to_bytes(
        2, "big"
    )
    return bytes(patched)


def _subset_masks(positions):
    """Boolean rows of every non-empty, non-total position subset."""
    rows = np.arange(1, (1 << positions) - 1, dtype=np.uint32)
    bits = np.arange(positions, dtype=np.uint32)
    return ((rows[:, None] >> bits) & 1).astype(bool)


def _judge_pair(frags1, frags2, positions, algorithm):
    """Judge every substitution subset of one pair, vectorized.

    Fragment offsets are 8-byte multiples, so every non-final payload
    is word-aligned and both check codes decompose over positions: the
    TCP sum into per-payload word sums, Fletcher into per-payload
    ``(A, B)`` pairs with the positional shift ``B + D * A`` for a
    payload ending ``D`` bytes before the segment end.  One mask-matrix
    product then judges all ``2^k - 2`` subsets at once, bit-identical
    to :func:`_judge_pair_scalar` (the conformance suite asserts it).
    """
    counters = FragmentSpliceCounters()
    masks = _subset_masks(positions)
    pay1 = [f[IP_HEADER_LEN:] for f in frags1[:positions]]
    pay2 = [f[IP_HEADER_LEN:] for f in frags2[:positions]]
    tail = b"".join(f[IP_HEADER_LEN:] for f in frags1[positions:])
    seg_len = sum(len(p) for p in pay1) + len(tail)

    diff = np.array([p1 != p2 for p1, p2 in zip(pay1, pay2)], dtype=bool)
    changed = (masks & diff).any(axis=1)
    counters.total = masks.shape[0]
    counters.identical = int((~changed).sum())
    counters.remaining = int(changed.sum())
    if not counters.remaining:
        return counters

    taken = masks.astype(np.int64)
    kept = 1 - taken
    if algorithm == "tcp":
        header = frags1[0]
        src = int.from_bytes(header[12:16], "big")
        dst = int.from_bytes(header[16:20], "big")
        base = pseudo_header_word_sum(src, dst, seg_len) + word_sums(tail)
        ws1 = np.array([word_sums(p) for p in pay1], dtype=np.int64)
        ws2 = np.array([word_sums(p) for p in pay2], dtype=np.int64)
        totals = (base + taken @ ws2 + kept @ ws1).astype(np.uint64)
        ok = fold16(totals) == 0xFFFF
    else:
        modulus = int(algorithm[-3:])
        ends = np.cumsum([len(p) for p in pay1])
        distance = (seg_len - ends).astype(np.int64)

        def sums(payloads):
            pairs = [fletcher8(p, modulus) for p in payloads]
            a = np.array([s.a for s in pairs], dtype=np.int64)
            b = np.array([s.b for s in pairs], dtype=np.int64)
            return a, (b + distance * a) % modulus

        a1, b1 = sums(pay1)
        a2, b2 = sums(pay2)
        t = fletcher8(tail, modulus)
        a_total = taken @ a2 + kept @ a1 + t.a
        b_total = taken @ b2 + kept @ b1 + t.b
        ok = (a_total % modulus == 0) & (b_total % modulus == 0)

    missed = int((changed & ok).sum())
    if missed:
        counters.missed[algorithm] = missed
    return counters


def _judge_pair_scalar(frags1, frags2, positions, algorithm):
    """Byte-at-a-time reference: reassemble and verify every subset."""
    counters = FragmentSpliceCounters()
    original = reassemble_fragments(frags1, check_header=False)
    for count in range(1, positions):
        for subset in combinations(range(positions), count):
            mixed = list(frags1)
            changed = False
            for position in subset:
                if frags1[position][IP_HEADER_LEN:] != frags2[position][IP_HEADER_LEN:]:
                    changed = True
                mixed[position] = (
                    mixed[position][:IP_HEADER_LEN]
                    + frags2[position][IP_HEADER_LEN:]
                )
            counters.total += 1
            if not changed:
                counters.identical += 1
                continue
            counters.remaining += 1
            spliced = reassemble_fragments(mixed, check_header=False)
            assert len(spliced) == len(original)
            # The scalar conformance reference *is* the byte-at-a-time
            # path --engine scalar selects.  reprolint: disable=REP304
            if _verify(algorithm, spliced):
                counters.missed[algorithm] = counters.missed.get(algorithm, 0) + 1
    return counters
