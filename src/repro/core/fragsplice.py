"""The fragmentation-and-reassembly error model.

A non-strict reassembler (IP ID wrap, middlebox bug) can combine
fragments from *two* datagrams of the same flow when their offsets
tile the packet -- the IP-layer analogue of the AAL5 splice.  For two
adjacent packets fragmented identically, every non-empty subset of
fragment positions can be taken from the second packet instead of the
first; the result reassembles cleanly and only the transport checksum
can object.

The key structural difference from the cell splice: substituted
fragments sit at the **same byte offset** they came from.  Nothing is
shifted, so Fletcher's positional term sees identical positions and
loses exactly the "colouring" advantage it enjoys in the cell-splice
model (where dropped cells shift their successors).  Comparing the
two models quantifies the paper's Section 5.2 analysis from the other
direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import fold_carries, word_sums
from repro.protocols.fragmentation import fragment_packet, reassemble_fragments
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.ip import IP_HEADER_LEN
from repro.protocols.tcp import pseudo_header_word_sum

__all__ = ["FragmentSpliceCounters", "run_fragment_splice_experiment"]


@dataclass
class FragmentSpliceCounters:
    """Counters of the fragment-interchange experiment."""

    pairs: int = 0
    total: int = 0
    identical: int = 0
    remaining: int = 0
    missed: dict = field(default_factory=dict)

    def miss_rate(self, algorithm):
        if not self.remaining:
            return 0.0
        return 100.0 * self.missed.get(algorithm, 0) / self.remaining

    def __add__(self, other):
        merged = FragmentSpliceCounters(
            pairs=self.pairs + other.pairs,
            total=self.total + other.total,
            identical=self.identical + other.identical,
            remaining=self.remaining + other.remaining,
        )
        merged.missed = dict(self.missed)
        for key, value in other.missed.items():
            merged.missed[key] = merged.missed.get(key, 0) + value
        return merged


def _verify(algorithm, packet):
    """Receiver-side transport verification of a reassembled packet."""
    segment = packet[IP_HEADER_LEN:]
    if algorithm == "tcp":
        src = int.from_bytes(packet[12:16], "big")
        dst = int.from_bytes(packet[16:20], "big")
        total = pseudo_header_word_sum(src, dst, len(segment))
        total += word_sums(segment)
        return int(fold_carries(total)) == 0xFFFF
    return Fletcher8(int(algorithm[-3:])).verify(segment)


def run_fragment_splice_experiment(
    filesystem,
    config,
    mtu=92,
    algorithms=("tcp", "fletcher255", "fletcher256"),
    max_positions=8,
    max_files=None,
):
    """Run the fragment-interchange error model over a filesystem.

    For every adjacent packet pair (built per ``config``, one
    packetizer run per algorithm so each carries its own checksum),
    both packets are fragmented at ``mtu`` and every non-empty,
    non-total subset of same-offset fragment substitutions is applied
    to the first packet.  ``max_positions`` caps the number of
    fragment positions considered (2^k subsets).

    Returns ``{algorithm: FragmentSpliceCounters}``.
    """
    results = {}
    for algorithm in algorithms:
        simulator = FileTransferSimulator(config.with_overrides(algorithm=algorithm))
        counters = FragmentSpliceCounters()
        for index, file in enumerate(filesystem):
            if max_files is not None and index >= max_files:
                break
            packets = [u.packet.ip_packet for u in simulator.transfer(file.data)]
            for first, second in zip(packets, packets[1:]):
                if len(first) != len(second):
                    continue
                frags1 = fragment_packet(_clear_df(first), mtu)
                frags2 = fragment_packet(_clear_df(second), mtu)
                positions = min(len(frags1), max_positions)
                if positions < 2:
                    continue
                counters.pairs += 1
                counters += _judge_pair(
                    frags1[:positions] + frags1[positions:],
                    frags2,
                    positions,
                    algorithm,
                )
        results[algorithm] = counters
    return results


def _clear_df(packet):
    """Clear the DF bit (and fix the header checksum) so we may fragment."""
    from repro.checksums.internet import internet_checksum_field

    patched = bytearray(packet)
    flags = int.from_bytes(patched[6:8], "big") & ~0x4000
    patched[6:8] = flags.to_bytes(2, "big")
    patched[10:12] = b"\x00\x00"
    patched[10:12] = internet_checksum_field(patched[:IP_HEADER_LEN]).to_bytes(
        2, "big"
    )
    return bytes(patched)


def _judge_pair(frags1, frags2, positions, algorithm):
    counters = FragmentSpliceCounters()
    original = reassemble_fragments(frags1, check_header=False)
    # Pre-compute payload word sums per position for the TCP fast path;
    # for Fletcher the positions are identical so bytes are simply
    # substituted and verified directly (fragment counts are small).
    for count in range(1, positions):
        for subset in combinations(range(positions), count):
            mixed = list(frags1)
            changed = False
            for position in subset:
                if frags1[position][IP_HEADER_LEN:] != frags2[position][IP_HEADER_LEN:]:
                    changed = True
                mixed[position] = (
                    mixed[position][:IP_HEADER_LEN]
                    + frags2[position][IP_HEADER_LEN:]
                )
            counters.total += 1
            if not changed:
                counters.identical += 1
                continue
            counters.remaining += 1
            spliced = reassemble_fragments(mixed, check_header=False)
            assert len(spliced) == len(original)
            if _verify(algorithm, spliced):
                counters.missed[algorithm] = counters.missed.get(algorithm, 0) + 1
    return counters
