"""Signal-safe, deadline-aware sweep interruption.

The paper's headline numbers come from exhaustive splice sweeps that
run for hours at production corpus sizes — exactly the workloads that
get preempted, Ctrl-C'd, or run under a time budget.  This module is
the *control plane* for stopping such a sweep **at a shard boundary**
instead of mid-shard:

* :class:`SweepController` owns the stop decision.  It watches for
  ``SIGINT``/``SIGTERM`` (handlers installed only in the main thread,
  previous handlers restored on exit) and for an optional **deadline**
  (seconds of ``time.monotonic`` budget).  Sweep loops poll
  :meth:`SweepController.stop_reason` after every drained shard.
* :class:`SweepInterrupted` is raised by a sweep that stopped on a
  signal *after* flushing its checkpoint journal; the CLI turns it
  into a ``checkpointed at shard k/N`` one-liner and exit code
  ``128 + signum`` (130 for SIGINT, 143 for SIGTERM).
* A deadline does **not** raise: the sweep merges the shards it
  completed, marks ``degraded: deadline`` in its
  :class:`~repro.core.supervisor.RunHealth` record (which rides into
  report JSON and Markdown footnotes), and the CLI exits 3 for the
  partial report.

The active controller is ambient (like the telemetry registry) so the
experiment layer does not thread it through every table function:
:func:`sweep_guard` installs one for the duration of a CLI command and
:func:`current_controller` hands sweeps either that controller or the
shared never-stopping null controller.  The controller also carries
the run-wide robustness knobs the CLI exposes (``--shard-timeout``,
``--resume``, the journal directory) so deeply nested sweeps see them
without signature churn.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager

__all__ = [
    "SweepController",
    "SweepInterrupted",
    "current_controller",
    "sweep_guard",
]

#: The signals a guarded sweep converts into checkpointed shutdowns.
_GUARDED_SIGNALS = ("SIGINT", "SIGTERM")


class SweepInterrupted(Exception):
    """A sweep stopped on an operator signal after checkpointing.

    Raised only at shard boundaries, *after* the journal flush, so the
    state on disk is exactly "the first ``done`` shards are recorded".
    ``signum`` drives the CLI's exit code (``128 + signum``).
    """

    def __init__(self, reason, done=0, total=0, signum=None):
        super().__init__(
            "%s: checkpointed at shard %d/%d" % (reason, done, total)
        )
        self.reason = reason
        self.done = done
        self.total = total
        self.signum = signum


class SweepController:
    """The stop decision for one guarded command's sweeps.

    ``deadline`` is a wall-time budget in seconds (measured with the
    monotonic clock from :meth:`install`); ``shard_timeout`` and
    ``journal_dir``/``resume`` are ambient robustness knobs sweeps read
    via :func:`current_controller`.
    """

    def __init__(
        self,
        deadline=None,
        shard_timeout=None,
        journal_dir=None,
        resume=False,
    ):
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 seconds")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard timeout must be > 0 seconds")
        self.deadline = deadline
        self.shard_timeout = shard_timeout
        self.journal_dir = journal_dir
        self.resume = bool(resume)
        #: True once a sweep actually stopped on the deadline (the CLI
        #: maps this to exit code 3: partial report).
        self.deadline_fired = False
        self._started = time.monotonic()
        self._stop_signal = None
        self._previous = {}

    # -- signal handling ----------------------------------------------------

    def install(self):
        """Install SIGINT/SIGTERM handlers (main thread only).

        Off the main thread (or on platforms missing a signal) this is
        a no-op — the controller still enforces the deadline.  The
        clock for the deadline budget restarts here.
        """
        self._started = time.monotonic()
        if threading.current_thread() is not threading.main_thread():
            return
        for name in _GUARDED_SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - non-POSIX platforms
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # pragma: no cover - exotic envs
                continue

    def uninstall(self):
        """Restore whatever handlers :meth:`install` replaced."""
        while self._previous:
            signum, previous = self._previous.popitem()
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _handle(self, signum, frame):
        """First signal: request a checkpointed stop.  Second: abort."""
        if self._stop_signal is not None:
            raise KeyboardInterrupt
        self._stop_signal = signum

    # -- the stop decision --------------------------------------------------

    @property
    def stop_signal(self):
        """The pending stop signal number, or None."""
        return self._stop_signal

    def request_stop(self, signum=None):
        """Programmatic stop request (tests, embedders)."""
        if self._stop_signal is None:
            self._stop_signal = (
                signum if signum is not None else getattr(signal, "SIGINT", 2)
            )

    def deadline_exceeded(self):
        """True once the monotonic budget has been spent."""
        if self.deadline is None:
            return False
        return time.monotonic() - self._started >= self.deadline

    def stop_reason(self):
        """``"signal"``, ``"deadline"``, or None — polled per shard.

        A pending signal wins over an expired deadline: the operator's
        explicit interrupt should exit with the signal's code, not be
        reclassified as a budget overrun.
        """
        if self._stop_signal is not None:
            return "signal"
        if self.deadline_exceeded():
            return "deadline"
        return None

    def signal_name(self):
        """Human-readable name of the pending stop signal."""
        if self._stop_signal is None:
            return ""
        try:
            return signal.Signals(self._stop_signal).name
        except ValueError:  # pragma: no cover - unnamed signal number
            return "signal %d" % self._stop_signal

    def interrupt(self, done, total):
        """Raise the checkpointed-stop exception for a signal stop."""
        raise SweepInterrupted(
            self.signal_name() or "interrupted",
            done=done,
            total=total,
            signum=self._stop_signal,
        )

    # -- provenance ---------------------------------------------------------

    def provenance(self):
        """The robustness knobs active for this run, for reports."""
        out = {}
        if self.shard_timeout is not None:
            out["shard_timeout"] = self.shard_timeout
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.resume:
            out["resume"] = True
        return out


class _NullController:
    """The ambient default: never stops, carries no knobs."""

    deadline = None
    shard_timeout = None
    journal_dir = None
    resume = False
    deadline_fired = False
    stop_signal = None

    def stop_reason(self):
        return None

    def deadline_exceeded(self):
        return False

    def provenance(self):
        return {}

    def signal_name(self):
        return ""


#: Shared never-stopping controller (so sweeps can poll unconditionally).
NULL_CONTROLLER = _NullController()

_ACTIVE = None


def current_controller():
    """The installed :class:`SweepController`, or the null controller."""
    return _ACTIVE if _ACTIVE is not None else NULL_CONTROLLER


@contextmanager
def sweep_guard(
    deadline=None,
    shard_timeout=None,
    journal_dir=None,
    resume=False,
    install_signals=True,
):
    """Install a :class:`SweepController` for the duration of a block.

    The CLI wraps ``run``/``splice``/``chaos`` dispatch in this guard;
    nested guards stack (the inner one wins while active).  Signal
    handlers are installed only when ``install_signals`` is true and
    the caller is the main thread, and are always restored.
    """
    global _ACTIVE
    controller = SweepController(
        deadline=deadline,
        shard_timeout=shard_timeout,
        journal_dir=journal_dir,
        resume=resume,
    )
    if install_signals:
        controller.install()
    previous, _ACTIVE = _ACTIVE, controller
    try:
        yield controller
    finally:
        _ACTIVE = previous
        controller.uninstall()
