"""Alternative error models: bit flips, bursts, swaps, and run overwrites.

Section 7 of the paper contrasts the splice model with "alternative
error models where data is replaced by garbage" and with hardware
faults that produce runs of zeros or ones.  This module injects such
errors into framed packets and measures each check code's detection
rate, empirically confirming the classical guarantees the paper cites
in Section 2:

* the TCP sum catches every burst of 15 bits or fewer (and every
  16-bit burst except a 0x0000 <-> 0xFFFF swap);
* CRC-32 catches all bursts shorter than 32 bits and all odd-weight
  errors of the spec's class;
* *no* sum catches a transposition of 16-bit words -- while Fletcher
  and the CRC do;
* random garbage is caught at 1 - 2^-16 by any decent 16-bit sum.

Errors are injected into the TCP payload region of a framed packet, so
the header checks stay satisfied and the measurement isolates the
check codes (injectors report the byte region they touched, so callers
can also aim at headers if they wish).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reference import _transport_ok
from repro.protocols.aal5 import aal5_crc_engine
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.ip import IP_HEADER_LEN

__all__ = [
    "BitFlips",
    "BurstError",
    "DetectionRow",
    "GarbageRun",
    "RunOverwrite",
    "WordSwap",
    "error_detection_experiment",
]

_TCP_DATA_START = IP_HEADER_LEN + 20


class BitFlips:
    """Flip ``count`` distinct random bits within the target region."""

    def __init__(self, count=1):
        if count < 1:
            raise ValueError("count must be positive")
        self.count = count
        self.name = "%d-bit flip%s" % (count, "" if count == 1 else "s")

    def apply(self, buf, lo, hi, rng):
        span_bits = (hi - lo) * 8
        if span_bits < self.count:
            return False
        positions = rng.choice(span_bits, size=self.count, replace=False)
        for position in positions:
            buf[lo + position // 8] ^= 1 << (7 - position % 8)
        return True


class BurstError:
    """XOR a random pattern across ``bits`` contiguous bit positions.

    The first and last bit of the burst are always flipped (that is
    what defines the burst length).
    """

    def __init__(self, bits):
        if bits < 1:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.name = "%d-bit burst" % bits

    def apply(self, buf, lo, hi, rng):
        span_bits = (hi - lo) * 8
        if span_bits < self.bits:
            return False
        start = int(rng.integers(0, span_bits - self.bits + 1))
        if self.bits == 1:
            pattern = 1
        else:
            inner = int(rng.integers(0, 1 << (self.bits - 2))) if self.bits > 2 else 0
            pattern = (1 << (self.bits - 1)) | (inner << 1) | 1
        for offset in range(self.bits):
            if pattern >> (self.bits - 1 - offset) & 1:
                position = start + offset
                buf[lo + position // 8] ^= 1 << (7 - position % 8)
        return True


class WordSwap:
    """Transpose two random (distinct-valued) 16-bit aligned words.

    The Internet checksum cannot see this by construction -- "the sum
    of a set of 16-bit values is the same, regardless of the order".
    """

    name = "16-bit word swap"

    def apply(self, buf, lo, hi, rng):
        lo += lo % 2
        words = (hi - lo) // 2
        if words < 2:
            return False
        for _ in range(16):  # find two words that actually differ
            i, j = rng.choice(words, size=2, replace=False)
            a = slice(lo + 2 * int(i), lo + 2 * int(i) + 2)
            b = slice(lo + 2 * int(j), lo + 2 * int(j) + 2)
            if buf[a] != buf[b]:
                buf[a], buf[b] = buf[b], buf[a]
                return True
        return False


class RunOverwrite:
    """Overwrite ``length`` bytes with a constant (0x00 or 0xFF) run.

    Models DMA/buffer-management faults that deposit runs of zeros or
    ones (Section 7's hardware-fault discussion).
    """

    def __init__(self, length, value=0):
        if length < 1:
            raise ValueError("length must be positive")
        if value not in (0x00, 0xFF):
            raise ValueError("run value is 0x00 or 0xFF")
        self.length = length
        self.value = value
        self.name = "%d-byte 0x%02X run" % (length, value)

    def apply(self, buf, lo, hi, rng):
        if hi - lo < self.length:
            return False
        start = int(rng.integers(lo, hi - self.length + 1))
        region = buf[start : start + self.length]
        replacement = bytes([self.value]) * self.length
        if bytes(region) == replacement:
            return False
        buf[start : start + self.length] = replacement
        return True


class GarbageRun:
    """Replace ``length`` bytes with uniform random garbage."""

    def __init__(self, length):
        if length < 1:
            raise ValueError("length must be positive")
        self.length = length
        self.name = "%d-byte garbage" % length

    def apply(self, buf, lo, hi, rng):
        if hi - lo < self.length:
            return False
        start = int(rng.integers(lo, hi - self.length + 1))
        original = bytes(buf[start : start + self.length])
        garbage = rng.integers(0, 256, size=self.length).astype(np.uint8).tobytes()
        if garbage == original:
            return False
        buf[start : start + self.length] = garbage
        return True


@dataclass
class DetectionRow:
    """Detection statistics of one injector over one corpus."""

    injector: str
    trials: int = 0
    transport_detected: int = 0
    crc32_detected: int = 0

    def transport_rate(self):
        return 100.0 * self.transport_detected / self.trials if self.trials else 0.0

    def crc32_rate(self):
        return 100.0 * self.crc32_detected / self.trials if self.trials else 0.0


def error_detection_experiment(
    filesystem, config, injectors, trials_per_packet=4, seed=0, max_packets=None
):
    """Measure per-injector detection rates over a filesystem.

    For each packet of the simulated transfer, each injector corrupts
    the TCP payload region of the framed packet ``trials_per_packet``
    times; the corrupted frame is then checked by the transport
    checksum and the AAL5 CRC-32 exactly as a receiver would.

    Returns ``{injector.name: DetectionRow}``.
    """
    from repro.core.engine import EngineOptions

    options = EngineOptions.from_packetizer(config, aux_crcs=())
    simulator = FileTransferSimulator(config)
    crc = aal5_crc_engine()
    rng = np.random.default_rng(seed)
    rows = {injector.name: DetectionRow(injector.name) for injector in injectors}

    packets_seen = 0
    for file in filesystem:
        for unit in simulator.transfer(file.data):
            if max_packets is not None and packets_seen >= max_packets:
                return rows
            packets_seen += 1
            frame = unit.frame.frame
            iplen = len(unit.packet.ip_packet)
            lo, hi = _TCP_DATA_START, iplen
            if hi - lo < 4:
                continue
            for injector in injectors:
                for _ in range(trials_per_packet):
                    buf = bytearray(frame)
                    if not injector.apply(buf, lo, hi, rng):
                        continue
                    row = rows[injector.name]
                    row.trials += 1
                    if not _transport_ok(bytes(buf), iplen, options):
                        row.transport_detected += 1
                    stored = int.from_bytes(buf[-4:], "big")
                    if crc.compute(bytes(buf[:-4])) != stored:
                        row.crc32_detected += 1
    return rows
