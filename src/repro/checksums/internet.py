"""The Internet checksum (RFC 1071) and its partial-sum algebra.

The TCP/IP checksum is the 16-bit ones-complement sum of the data taken
as big-endian 16-bit words; the stored header field is the ones
complement of that sum, so a receiver summing an intact segment
(including the stored field) obtains ``0xFFFF``.

Two properties of the sum drive the paper's methodology and this
implementation:

* **Decomposability** -- the sum of a packet equals the ones-complement
  sum of the sums of its pieces, as long as each piece starts on an even
  byte offset.  The splice engine exploits this: it computes one 48-byte
  partial sum per ATM cell and evaluates every candidate splice as a sum
  of per-cell partials.
* **Order independence** -- the sum of a set of 16-bit words does not
  depend on their order, which is precisely the weakness the paper's
  splice error model probes.

All bulk operations are vectorized with NumPy; the scalar entry points
accept any bytes-like object.
"""

from __future__ import annotations

import numpy as np

from repro.checksums.batch import block_matrix, swap16

__all__ = [
    "MOD_MASK",
    "InternetChecksum",
    "fold_carries",
    "internet_checksum",
    "internet_checksum_field",
    "ones_complement_add",
    "ones_complement_sum",
    "update_checksum_field",
    "word_sums",
]

#: All-ones 16-bit mask; ``0xFFFF`` and ``0x0000`` both represent zero in
#: ones-complement arithmetic (the "two zeros" the paper discusses).
MOD_MASK = 0xFFFF


def fold_carries(value):
    """Fold a (possibly very wide) unsigned sum down to 16 bits.

    Repeatedly adds the high bits back into the low 16 bits, which is
    how deferred end-around-carry ones-complement addition is realised
    on twos-complement hardware.  Accepts Python ints or NumPy arrays.
    """
    if isinstance(value, np.ndarray):
        value = value.astype(np.uint64, copy=True)
        while (value >> np.uint64(16)).any():
            value = (value & np.uint64(MOD_MASK)) + (value >> np.uint64(16))
        return value.astype(np.uint32)
    value = int(value)
    while value >> 16:
        value = (value & MOD_MASK) + (value >> 16)
    return value


def ones_complement_add(a, b):
    """Ones-complement 16-bit addition with end-around carry."""
    return fold_carries(int(a) + int(b))


def word_sums(data):
    """Return the plain (unfolded) integer sum of big-endian 16-bit words.

    Odd-length data is conceptually padded with a trailing zero byte, as
    RFC 1071 specifies.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.reshape(-1, 2).astype(np.uint64)
    return int((words[:, 0] << np.uint64(8) | words[:, 1]).sum())


def ones_complement_sum(data):
    """The 16-bit ones-complement sum of ``data`` (not inverted)."""
    return fold_carries(word_sums(data))


def internet_checksum(data):
    """Alias of :func:`ones_complement_sum` under its common name."""
    return ones_complement_sum(data)


def internet_checksum_field(data):
    """The value stored in a header checksum field.

    RFC 1071: the ones complement of the ones-complement sum, so that a
    verifier summing the data *with* the stored field obtains ``0xFFFF``.
    """
    return ones_complement_sum(data) ^ MOD_MASK


def update_checksum_field(old_field, old_word, new_word):
    """Incrementally update a stored checksum field (RFC 1624 style).

    Given the previously stored field value and one 16-bit word changing
    from ``old_word`` to ``new_word``, return the new field value without
    re-summing the data.

    The RFC 1624 corner case is handled: the arithmetic can produce the
    field value 0x0000 where a from-scratch computation yields 0xFFFF
    (the two ones-complement zeros).  0xFFFF is congruent and also
    satisfies strict ``sum == 0xFFFF`` verifiers, so it is returned in
    that case.
    """
    old_sum = old_field ^ MOD_MASK
    new_sum = fold_carries(old_sum + (old_word ^ MOD_MASK) + new_word)
    return (new_sum ^ MOD_MASK) or MOD_MASK


class InternetChecksum:
    """Object API over the Internet checksum, including vectorized forms.

    Instances are stateless; the class conforms to the registry's
    :class:`~repro.checksums.registry.ChecksumAlgorithm` protocol
    (``compute``/``field``/``verify`` plus ``width``/``name``) and adds
    the vectorized ``cell_sums`` used by the splice engine.
    """

    name: str = "internet"
    width: int = 16
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 16

    def compute(self, data) -> int:
        """16-bit ones-complement sum of ``data``."""
        return ones_complement_sum(data)

    def field(self, data) -> bytes:
        """Check-field bytes to append to ``data`` (RFC 1071).

        The sum is position-independent only across *even* byte
        offsets, so for odd-length data the two field bytes are swapped
        to land in the byte lanes the verifier's word framing assigns
        them -- either way ``verify(data + field(data))`` holds.  (Use
        :func:`internet_checksum_field` for the integer form.)
        """
        value = internet_checksum_field(data)
        return value.to_bytes(2, "big" if len(bytes(data)) % 2 == 0 else "little")

    def verify(self, data) -> bool:
        """True if ``data`` (including its stored field) sums to 0xFFFF."""
        return ones_complement_sum(data) == MOD_MASK

    @staticmethod
    def cell_sums(cells):
        """Unfolded word sums of many equal-length even-size chunks.

        ``cells`` is a ``(..., L)`` uint8 array with even ``L``.  Returns
        a ``(...,)`` uint64 array of plain word sums (callers fold after
        accumulating across cells, which keeps the hot path add-only).
        """
        cells = np.asarray(cells, dtype=np.uint8)
        if cells.shape[-1] % 2:
            raise ValueError("cell length must be even for word alignment")
        words = cells.reshape(cells.shape[:-1] + (-1, 2)).astype(np.uint64)
        return (words[..., 0] << np.uint64(8) | words[..., 1]).sum(axis=-1)

    @staticmethod
    def fold(values):
        """Fold accumulated word sums down to 16 bits (array or int)."""
        return fold_carries(values)

    # -- batch tier ----------------------------------------------------------

    def compute_many(self, blocks) -> np.ndarray:
        """Folded sums of a matrix of equal-length buffers, one pass."""
        blocks = block_matrix(blocks)
        if blocks.shape[-1] % 2:
            pad_shape = blocks.shape[:-1] + (1,)
            blocks = np.concatenate(
                [blocks, np.zeros(pad_shape, dtype=np.uint8)], axis=-1
            )
        return fold_carries(self.cell_sums(blocks)).astype(np.uint64)

    def prefix_state(self, data) -> tuple:
        """``(folded word sum, length parity)`` after absorbing ``data``.

        The parity is what :meth:`combine` needs: a suffix starting at
        an odd offset contributes its sum byte-swapped (RFC 1071,
        section 2(B) -- byte swap commutes with end-around carry).
        """
        data = bytes(data)
        return (ones_complement_sum(data), len(data) % 2)

    def combine(self, state_a, state_b, len_b) -> tuple:
        """State of ``A || B`` from the two prefix states."""
        sum_a, parity_a = state_a
        sum_b, _ = state_b
        if parity_a:
            sum_b = swap16(sum_b)
        return (fold_carries(sum_a + sum_b), (parity_a + len_b) % 2)

    def state_value(self, state) -> int:
        """The folded ones-complement sum of a batch-tier state."""
        return state[0]
