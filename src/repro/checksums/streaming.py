"""Streaming (hashlib-style) interfaces over every check code.

Receivers and routers rarely see a packet as one contiguous buffer;
they fold data in as it arrives.  These classes expose the familiar
``update()`` / ``digest()`` protocol on top of the same arithmetic the
batch functions use, and the test suite verifies that any split of the
input produces the same value as a one-shot computation.

>>> s = StreamingInternetChecksum()
>>> s.update(b"hello ")
>>> s.update(b"world")
>>> hex(s.value())
'0x91ce'
"""

from __future__ import annotations

from repro.checksums.crc import CRCEngine
from repro.checksums.fletcher import fletcher8, fletcher_combine
from repro.checksums.internet import fold_carries, word_sums
from repro.checksums.registry import get_algorithm

__all__ = [
    "StreamingCRC",
    "StreamingFletcher",
    "StreamingInternetChecksum",
    "open_stream",
]


class StreamingInternetChecksum:
    """Incremental 16-bit ones-complement sum.

    Handles odd-length updates correctly: a dangling byte is held back
    and paired with the first byte of the next update, so arbitrary
    chunking matches the one-shot sum.
    """

    def __init__(self):
        self._total = 0
        self._pending = b""
        self._length = 0

    def update(self, data):
        data = self._pending + bytes(data)
        if len(data) % 2:
            data, self._pending = data[:-1], data[-1:]
        else:
            self._pending = b""
        self._total += word_sums(data)
        self._length += len(data)

    def value(self):
        """The folded 16-bit sum of everything seen so far."""
        total = self._total
        if self._pending:
            total += self._pending[0] << 8
        return int(fold_carries(total))

    def field(self):
        """The header-field value (the complement of the sum)."""
        return self.value() ^ 0xFFFF

    def copy(self):
        clone = StreamingInternetChecksum()
        clone._total = self._total
        clone._pending = self._pending
        clone._length = self._length
        return clone


class StreamingFletcher:
    """Incremental Fletcher sums (mod 255 or 256).

    The positional term is maintained with the combine rule
    ``B_total = B_prev + len(chunk) * A_prev + B_chunk``, so the final
    (A, B) matches a one-shot computation over the concatenation.
    """

    def __init__(self, modulus=255):
        if modulus not in (255, 256):
            raise ValueError("Fletcher modulus must be 255 or 256")
        self.modulus = modulus
        self._sums = fletcher8(b"", modulus)

    def update(self, data):
        data = bytes(data)
        chunk = fletcher8(data, self.modulus)
        self._sums = fletcher_combine(self._sums, chunk, len(data), self.modulus)

    def sums(self):
        return self._sums

    def value(self):
        """The packed 16-bit checksum ``(B << 8) | A``."""
        return self._sums.packed()

    def copy(self):
        clone = StreamingFletcher(self.modulus)
        clone._sums = self._sums
        return clone


class StreamingCRC:
    """Incremental CRC over any :class:`~repro.checksums.crc.CRCSpec`."""

    def __init__(self, engine):
        if not isinstance(engine, CRCEngine):
            engine = get_algorithm(engine)
        self.engine = engine
        self._reg = engine.register_init

    def update(self, data):
        self._reg = self.engine.process(self._reg, data)

    def value(self):
        """The CRC of everything seen so far."""
        return self.engine.finalize(self._reg)

    def digest(self, byteorder="big"):
        """The CRC serialised to bytes, as it would go on the wire."""
        width_bytes = (self.engine.spec.width + 7) // 8
        return self.value().to_bytes(width_bytes, byteorder)

    def copy(self):
        clone = StreamingCRC(self.engine)
        clone._reg = self._reg
        return clone


def open_stream(name):
    """A streaming instance for any registered algorithm name."""
    algorithm = get_algorithm(name)
    if isinstance(algorithm, CRCEngine):
        return StreamingCRC(algorithm)
    if hasattr(algorithm, "modulus"):
        return StreamingFletcher(algorithm.modulus)
    return StreamingInternetChecksum()
