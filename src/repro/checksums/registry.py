"""Name-based registry of the check-code algorithms the paper studies.

Every registered algorithm conforms to the :class:`ChecksumAlgorithm`
protocol -- the single calling convention the CLI, the artifact store,
the bench harness, and :func:`repro.api.sum_file` rely on:

=================  ====================================================
member             meaning
=================  ====================================================
``name``           registry name (``"internet"``, ``"crc32-aal5"``, ...)
``width``          check-value width in bits
``compute(data)``  the check value of ``data`` as an ``int``
``field(data)``    the bytes to *append* to ``data`` so that the
                   framed whole verifies (big-endian for the sums,
                   spec byte order for CRCs)
``verify(data)``   True if ``data`` **with its check field included**
                   validates -- sum-to-``0xFFFF`` for the Internet
                   checksum, sum-to-zero for Fletcher, the residue
                   register for CRCs, a trailing-field compare for the
                   suffix codes
=================  ====================================================

For every algorithm ``a`` and message ``m``, the framing identity
``a.verify(m + a.field(m))`` holds; this is what the artifact store's
integrity trailers and the splice engine's verdict checks build on.

Older call shapes (two-argument ``verify(data, stored)``, the ``bits``
attribute) still work but the two-argument ``verify`` raises a
``DeprecationWarning``; see each engine's docstring.

Algorithms may additionally implement the optional *batch* tier
(:class:`~repro.checksums.batch.BatchChecksumAlgorithm`:
``compute_many`` / ``prefix_state`` / ``combine`` / ``state_value``);
:func:`supports_batch` reports whether a registered name or instance
advertises it, which is how ``SpliceEngine`` auto-selects its
vectorized path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Union, runtime_checkable

from repro.checksums.batch import BatchChecksumAlgorithm, EngineKind
from repro.checksums.batch import supports_batch as _instance_supports_batch
from repro.checksums.crc import (
    CRC10_ATM,
    CRC16_ARC,
    CRC16_CCITT,
    CRC32_AAL5,
    CRC32C,
    CRCEngine,
)
from repro.checksums.extra import Adler32, Fletcher16, Xor16
from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import InternetChecksum

__all__ = [
    "BatchChecksumAlgorithm",
    "ByteSource",
    "ChecksumAlgorithm",
    "EngineKind",
    "available_algorithms",
    "get_algorithm",
    "supports_batch",
]

#: Anything the engines accept as message bytes.  ``memoryview`` is the
#: splice engine's native currency (zero-copy windows over the corpus).
ByteSource = Union[bytes, bytearray, memoryview]


@runtime_checkable
class ChecksumAlgorithm(Protocol):
    """The uniform interface every registered check code implements.

    ``runtime_checkable`` so ``isinstance(x, ChecksumAlgorithm)``
    verifies structural conformance (methods/attributes present; it
    cannot check signatures -- the conformance tests do that).

    ``compute`` returns a value already reduced modulo the code, i.e.
    ``0 <= compute(data) < (1 << width)``; engines that keep a wider
    accumulator mask with ``(1 << width) - 1`` before returning (the
    REP501 lint rule checks the literal masks statically).
    """

    name: str
    width: int

    def compute(self, data: ByteSource) -> int:
        """The check value of ``data`` (``< 1 << width``)."""
        ...  # pragma: no cover - protocol stub

    def field(self, data: ByteSource) -> bytes:
        """Bytes to append to ``data`` so the framed whole verifies."""
        ...  # pragma: no cover - protocol stub

    def verify(self, data: ByteSource) -> bool:
        """True if ``data`` (check field included) validates."""
        ...  # pragma: no cover - protocol stub


_FACTORIES: Dict[str, Callable[[], ChecksumAlgorithm]] = {
    "internet": InternetChecksum,
    "tcp": InternetChecksum,
    "fletcher255": lambda: Fletcher8(255),
    "fletcher256": lambda: Fletcher8(256),
    "fletcher16-65535": lambda: Fletcher16(65535),
    "fletcher16-65536": lambda: Fletcher16(65536),
    "adler32": Adler32,
    "xor16": Xor16,
    "crc32-aal5": lambda: CRCEngine(CRC32_AAL5),
    "crc16-arc": lambda: CRCEngine(CRC16_ARC),
    "crc16-ccitt": lambda: CRCEngine(CRC16_CCITT),
    "crc10-atm": lambda: CRCEngine(CRC10_ATM),
    "crc32c": lambda: CRCEngine(CRC32C),
}

_INSTANCES: Dict[str, ChecksumAlgorithm] = {}


def available_algorithms() -> List[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_FACTORIES)


def get_algorithm(name: str) -> ChecksumAlgorithm:
    """Return the (cached) algorithm instance registered under ``name``."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            "unknown algorithm %r; available: %s"
            % (name, ", ".join(available_algorithms()))
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def supports_batch(algorithm: Union[str, object]) -> bool:
    """True when an algorithm (name or instance) has the batch tier.

    Registry names resolve through :func:`get_algorithm`; anything else
    is checked structurally against
    :class:`~repro.checksums.batch.BatchChecksumAlgorithm`.
    """
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    return _instance_supports_batch(algorithm)
