"""Name-based registry of the check-code algorithms the paper studies.

Checksum algorithms (``internet``, ``fletcher255``, ``fletcher256``)
expose ``compute(data)`` / ``verify(data)``; CRC engines additionally
carry the register-level API.  The registry powers the CLI and the
experiment configuration layer, which refer to algorithms by name.
"""

from __future__ import annotations

from repro.checksums.crc import (
    CRC10_ATM,
    CRC16_ARC,
    CRC16_CCITT,
    CRC32_AAL5,
    CRC32C,
    CRCEngine,
)
from repro.checksums.extra import Adler32, Fletcher16, Xor16
from repro.checksums.fletcher import Fletcher8
from repro.checksums.internet import InternetChecksum

__all__ = ["available_algorithms", "get_algorithm"]

_FACTORIES = {
    "internet": InternetChecksum,
    "tcp": InternetChecksum,
    "fletcher255": lambda: Fletcher8(255),
    "fletcher256": lambda: Fletcher8(256),
    "fletcher16-65535": lambda: Fletcher16(65535),
    "fletcher16-65536": lambda: Fletcher16(65536),
    "adler32": Adler32,
    "xor16": Xor16,
    "crc32-aal5": lambda: CRCEngine(CRC32_AAL5),
    "crc16-arc": lambda: CRCEngine(CRC16_ARC),
    "crc16-ccitt": lambda: CRCEngine(CRC16_CCITT),
    "crc10-atm": lambda: CRCEngine(CRC10_ATM),
    "crc32c": lambda: CRCEngine(CRC32C),
}

_INSTANCES = {}


def available_algorithms():
    """Sorted names of every registered algorithm."""
    return sorted(_FACTORIES)


def get_algorithm(name):
    """Return the (cached) algorithm instance registered under ``name``."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            "unknown algorithm %r; available: %s"
            % (name, ", ".join(available_algorithms()))
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]
