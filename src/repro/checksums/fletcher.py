"""Fletcher's checksum, in the mod-255 and mod-256 variants of the paper.

Fletcher's 16-bit checksum keeps two 8-bit running sums over the data
bytes ``d[0..n-1]``:

* ``A = sum(d[i]) mod M``
* ``B = sum((n - i) * d[i]) mod M`` -- each byte weighted by its
  position from the end of the packet, which is what gives the sum its
  positional sensitivity (and, over non-uniform data, the cell
  "colouring" effect the paper analyses in Section 5.2).

``M`` is 255 for the ones-complement variant (two representations of
zero: 0x00 and 0xFF, the root of the PBM pathology in Section 5.5) and
256 for the twos-complement variant.

The decomposition used throughout the splice engine: for a chunk whose
*end* lies ``D`` bytes before the end of the covered region,

    ``A_total += A_chunk``
    ``B_total += B_chunk + D * A_chunk``        (all mod M)

which is exactly the paper's per-cell contribution rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checksums.batch import block_matrix

__all__ = [
    "Fletcher8",
    "FletcherSums",
    "fletcher8",
    "fletcher8_cells",
    "fletcher_check_bytes",
    "fletcher_combine",
]


@dataclass(frozen=True)
class FletcherSums:
    """The (A, B) running-sum pair of a Fletcher checksum over a chunk."""

    a: int
    b: int

    def packed(self):
        """The conventional 16-bit checksum value ``(B << 8) | A``."""
        return (self.b << 8) | self.a


def fletcher8(data, modulus=255):
    """Compute Fletcher (A, B) sums over ``data``.

    ``B`` weights each byte by its position from the end (the last byte
    has weight 1), matching the paper's definition.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int64)
    n = buf.size
    a = int(buf.sum() % modulus)
    if n:
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = int((buf * weights).sum() % modulus)
    else:
        b = 0
    return FletcherSums(a, b)


def fletcher8_cells(cells, modulus=255):
    """Vectorized per-chunk Fletcher sums.

    ``cells`` is a ``(..., L)`` uint8 array.  Returns ``(A, B)`` int64
    arrays of shape ``(...,)`` where ``B`` is local to each chunk (last
    byte of the chunk has weight 1).  Combine across chunks with
    ``B_total = B_local + D * A_local`` for a chunk ending ``D`` bytes
    before the end of the covered region.
    """
    cells = np.asarray(cells, dtype=np.uint8).astype(np.int64)
    length = cells.shape[-1]
    a = cells.sum(axis=-1) % modulus
    weights = np.arange(length, 0, -1, dtype=np.int64)
    b = (cells * weights).sum(axis=-1) % modulus
    return a, b


def fletcher_combine(first, second, second_len, modulus=255):
    """Fletcher sums of the concatenation ``first || second``.

    ``second_len`` is the byte length of the second chunk, i.e. the
    distance of the first chunk's end from the end of the whole.
    """
    a = (first.a + second.a) % modulus
    b = (first.b + second_len * first.a + second.b) % modulus
    return FletcherSums(a, b)


def fletcher_check_bytes(sums, distance_from_end, modulus=255):
    """Solve the two check bytes for a sum-to-zero Fletcher packet.

    ``sums`` are the (A, B) sums of the covered region with the two
    check-byte positions already counted as zeros.  The check bytes
    ``(x, y)`` occupy adjacent positions whose *second* byte lies
    ``distance_from_end`` bytes before the end of the covered region
    (0 when the field is the trailing pair).  Returns ``(x, y)`` such
    that the full region sums to (0, 0) -- the "sum-to-zero inversion"
    the paper applies to its Fletcher results.

    The 2x2 system ``A + x + y = 0``, ``B + (d+2)x + (d+1)y = 0`` has
    determinant -1, hence a unique solution for any modulus.
    """
    d = distance_from_end
    x = ((d + 1) * sums.a - sums.b) % modulus
    y = (-sums.a - x) % modulus
    return int(x), int(y)


class Fletcher8:
    """Fletcher's 8-bit-chunk checksum with configurable modulus.

    ``Fletcher8(255)`` is the ones-complement variant ("F-255" in the
    paper's tables); ``Fletcher8(256)`` the twos-complement one
    ("F-256", the TP4 flavour).  Conforms to the registry's
    :class:`~repro.checksums.registry.ChecksumAlgorithm` protocol.
    """

    width: int = 16
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 16

    def __init__(self, modulus: int = 255) -> None:
        if modulus not in (255, 256):
            raise ValueError("Fletcher modulus must be 255 or 256")
        self.modulus = modulus
        self.name = "fletcher%d" % modulus

    def compute(self, data) -> int:
        """The packed 16-bit checksum ``(B << 8) | A`` of ``data``."""
        return fletcher8(data, self.modulus).packed()

    def sums(self, data):
        """The raw (A, B) pair over ``data``."""
        return fletcher8(data, self.modulus)

    def check_bytes(self, data, field_offset):
        """Check bytes to place at ``data[field_offset:field_offset+2]``.

        The two bytes at the field offset must currently be zero.
        """
        buf = bytes(data)
        if buf[field_offset] or buf[field_offset + 1]:
            raise ValueError("checksum field must be zeroed before solving")
        sums = fletcher8(buf, self.modulus)
        distance = len(buf) - (field_offset + 2)
        return fletcher_check_bytes(sums, distance, self.modulus)

    def field(self, data) -> bytes:
        """The two check bytes to *append* to ``data``.

        Solves the trailing-pair case of :meth:`check_bytes`:
        ``data + field(data)`` sums to (0, 0), so :meth:`verify`
        accepts the framed whole.
        """
        x, y = self.check_bytes(bytes(data) + b"\x00\x00", len(data))
        return bytes((x, y))

    def verify(self, data) -> bool:
        """True if ``data`` (with embedded check bytes) sums to zero."""
        sums = fletcher8(data, self.modulus)
        return sums.a == 0 and sums.b == 0

    # -- batch tier ----------------------------------------------------------

    def compute_many(self, blocks) -> np.ndarray:
        """Packed checksums of a matrix of equal-length buffers."""
        blocks = block_matrix(blocks)
        a, b = fletcher8_cells(blocks, self.modulus)
        return ((b.astype(np.uint64) << np.uint64(8)) | a.astype(np.uint64))

    def prefix_state(self, data):
        """The (A, B) running sums after absorbing ``data``."""
        return fletcher8(data, self.modulus)

    def combine(self, state_a, state_b, len_b):
        """Sums of ``A || B``: shift A's positional term by ``len_b``."""
        return fletcher_combine(state_a, state_b, len_b, self.modulus)

    def state_value(self, state) -> int:
        """The packed 16-bit value of a batch-tier state."""
        return state.packed()
