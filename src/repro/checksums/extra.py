"""Additional check codes: Fletcher-16 (32-bit), Adler-32, XOR-16.

The paper's Section 2 notes that "Fletcher also defined a 32-bit
version, where 16-bit sums are kept"; Adler-32 (RFC 1950) is the same
construction with a prime modulus, designed after the paper and a
natural member of the comparison; the 16-bit XOR (longitudinal parity
word) is the historical baseline the Internet checksum replaced --
strictly weaker, since it cannot even count.

These participate in the distribution analyses and the registry; the
splice engine proper evaluates the codes the paper's packets carry.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.checksums.fletcher import FletcherSums

__all__ = ["Adler32", "Fletcher16", "Xor16", "adler32", "fletcher16", "xor16"]

_ADLER_MOD = 65521  # largest prime below 2^16

_UNSET = object()


class _SuffixCode:
    """Shared protocol plumbing for codes carried as a trailing field.

    Subclasses provide ``width``/``name`` and ``compute``; this mixin
    derives ``field`` (big-endian serialization of the check value) and
    the unified single-argument ``verify`` -- true when the trailing
    ``width // 8`` bytes equal the field of everything before them.

    The pre-protocol two-argument shape ``verify(data, stored)`` still
    works but raises a :class:`DeprecationWarning`; compare against
    ``compute(data)`` directly instead.
    """

    #: Provided by subclasses (declared here for the type checker).
    width: int
    name: str

    def compute(self, data) -> int:  # pragma: no cover - subclass hook
        raise NotImplementedError

    def field(self, data) -> bytes:
        """Bytes to append to ``data`` so the framed whole verifies."""
        return self.compute(data).to_bytes(self.width // 8, "big")

    def verify(self, data, stored=_UNSET) -> bool:
        """True if ``data`` (trailing check field included) validates."""
        if stored is not _UNSET:
            warnings.warn(
                "%s.verify(data, stored) is deprecated; use "
                "verify(data) on the framed message or compare "
                "compute(data) == stored" % type(self).__name__,
                DeprecationWarning,
                stacklevel=2,
            )
            return self.compute(data) == stored
        buf = bytes(data)
        n = self.width // 8
        if len(buf) < n:
            return False
        return self.field(buf[:-n]) == buf[-n:]


def fletcher16(data, modulus=65535):
    """Fletcher's 32-bit checksum: two 16-bit running sums.

    Data is taken as big-endian 16-bit words (odd length padded with a
    zero byte); ``B`` weights each word by its position from the end.
    Returns a :class:`FletcherSums` whose ``a``/``b`` are 16-bit.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.reshape(-1, 2).astype(np.int64)
    values = (words[:, 0] << 8) | words[:, 1]
    n = values.size
    a = int(values.sum() % modulus)
    if n:
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = int((values * weights).sum() % modulus)
    else:
        b = 0
    return FletcherSums(a, b)


class Fletcher16(_SuffixCode):
    """Object API for the 32-bit Fletcher checksum."""

    width: int = 32
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 32

    def __init__(self, modulus: int = 65535) -> None:
        if modulus not in (65535, 65536):
            raise ValueError("Fletcher-16 modulus must be 65535 or 65536")
        self.modulus = modulus
        self.name = "fletcher16-%d" % modulus

    def compute(self, data) -> int:
        sums = fletcher16(data, self.modulus)
        return (sums.b << 16) | sums.a


def adler32(data):
    """Adler-32 (RFC 1950): byte sums mod 65521, A initialised to 1."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int64)
    n = buf.size
    a = int((1 + buf.sum()) % _ADLER_MOD)
    # B accumulates A after every byte, starting from B = 0 with A = 1:
    # B = n * 1 + sum((n - i) * d[i])  (mod 65521)
    if n:
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = int((n + (buf * weights).sum()) % _ADLER_MOD)
    else:
        b = 0
    return (b << 16) | a


class Adler32(_SuffixCode):
    """Object API for Adler-32."""

    width: int = 32
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 32
    name: str = "adler32"

    def compute(self, data) -> int:
        return adler32(data)


def xor16(data):
    """The 16-bit longitudinal parity word (XOR of all 16-bit words).

    The historical pre-checksum baseline: position-blind *and*
    count-blind (a word XORed in twice vanishes), which is why every
    sum in the paper supersedes it.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.reshape(-1, 2).astype(np.uint16)
    values = (words[:, 0].astype(np.uint32) << 8) | words[:, 1]
    return int(np.bitwise_xor.reduce(values)) if values.size else 0


class Xor16(_SuffixCode):
    """Object API for the XOR parity word."""

    width: int = 16
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 16
    name: str = "xor16"

    def compute(self, data) -> int:
        return xor16(data)
