"""Additional check codes: Fletcher-16 (32-bit), Adler-32, XOR-16.

The paper's Section 2 notes that "Fletcher also defined a 32-bit
version, where 16-bit sums are kept"; Adler-32 (RFC 1950) is the same
construction with a prime modulus, designed after the paper and a
natural member of the comparison; the 16-bit XOR (longitudinal parity
word) is the historical baseline the Internet checksum replaced --
strictly weaker, since it cannot even count.

These participate in the distribution analyses and the registry; the
splice engine proper evaluates the codes the paper's packets carry.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.checksums.batch import block_matrix, swap16
from repro.checksums.fletcher import FletcherSums

__all__ = ["Adler32", "Fletcher16", "Xor16", "adler32", "fletcher16", "xor16"]


def _block_words(blocks) -> np.ndarray:
    """Big-endian 16-bit words of a ``(..., L)`` block matrix (padded)."""
    blocks = block_matrix(blocks)
    if blocks.shape[-1] % 2:
        pad_shape = blocks.shape[:-1] + (1,)
        blocks = np.concatenate(
            [blocks, np.zeros(pad_shape, dtype=np.uint8)], axis=-1
        )
    words = blocks.reshape(blocks.shape[:-1] + (-1, 2)).astype(np.int64)
    return (words[..., 0] << 8) | words[..., 1]

_ADLER_MOD = 65521  # largest prime below 2^16

_UNSET = object()


class _SuffixCode:
    """Shared protocol plumbing for codes carried as a trailing field.

    Subclasses provide ``width``/``name`` and ``compute``; this mixin
    derives ``field`` (big-endian serialization of the check value) and
    the unified single-argument ``verify`` -- true when the trailing
    ``width // 8`` bytes equal the field of everything before them.

    The pre-protocol two-argument shape ``verify(data, stored)`` still
    works but raises a :class:`DeprecationWarning`; compare against
    ``compute(data)`` directly instead.
    """

    #: Provided by subclasses (declared here for the type checker).
    width: int
    name: str

    def compute(self, data) -> int:  # pragma: no cover - subclass hook
        raise NotImplementedError

    def field(self, data) -> bytes:
        """Bytes to append to ``data`` so the framed whole verifies."""
        return self.compute(data).to_bytes(self.width // 8, "big")

    def verify(self, data, stored=_UNSET) -> bool:
        """True if ``data`` (trailing check field included) validates."""
        if stored is not _UNSET:
            warnings.warn(
                "%s.verify(data, stored) is deprecated; use "
                "verify(data) on the framed message or compare "
                "compute(data) == stored" % type(self).__name__,
                DeprecationWarning,
                stacklevel=2,
            )
            return self.compute(data) == stored
        buf = bytes(data)
        n = self.width // 8
        if len(buf) < n:
            return False
        return self.field(buf[:-n]) == buf[-n:]


def fletcher16(data, modulus=65535):
    """Fletcher's 32-bit checksum: two 16-bit running sums.

    Data is taken as big-endian 16-bit words (odd length padded with a
    zero byte); ``B`` weights each word by its position from the end.
    Returns a :class:`FletcherSums` whose ``a``/``b`` are 16-bit.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.reshape(-1, 2).astype(np.int64)
    values = (words[:, 0] << 8) | words[:, 1]
    n = values.size
    a = int(values.sum() % modulus)
    if n:
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = int((values * weights).sum() % modulus)
    else:
        b = 0
    return FletcherSums(a, b)


class Fletcher16(_SuffixCode):
    """Object API for the 32-bit Fletcher checksum."""

    width: int = 32
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 32

    def __init__(self, modulus: int = 65535) -> None:
        if modulus not in (65535, 65536):
            raise ValueError("Fletcher-16 modulus must be 65535 or 65536")
        self.modulus = modulus
        self.name = "fletcher16-%d" % modulus

    def compute(self, data) -> int:
        sums = fletcher16(data, self.modulus)
        return (sums.b << 16) | sums.a

    # -- batch tier ----------------------------------------------------------

    def compute_many(self, blocks) -> np.ndarray:
        """Packed values of a matrix of equal-length buffers."""
        values = _block_words(blocks)
        n = values.shape[-1]
        a = values.sum(axis=-1) % self.modulus
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = (values * weights).sum(axis=-1) % self.modulus
        return (b.astype(np.uint64) << np.uint64(16)) | a.astype(np.uint64)

    def prefix_state(self, data) -> tuple:
        """``(A, B, length parity)`` after absorbing ``data``.

        Fletcher-16 runs over 16-bit words, so only *word-aligned*
        (even-length) prefixes compose; the parity lets ``combine``
        reject the rest.
        """
        data = bytes(data)
        sums = fletcher16(data, self.modulus)
        return (sums.a, sums.b, len(data) % 2)

    def combine(self, state_a, state_b, len_b) -> tuple:
        """State of ``A || B``; A must be word-aligned (even length)."""
        a1, b1, parity_a = state_a
        a2, b2, _ = state_b
        if parity_a:
            raise ValueError(
                "Fletcher-16 prefixes must be word-aligned (even length)"
            )
        words_b = (len_b + 1) // 2
        a = (a1 + a2) % self.modulus
        b = (b1 + words_b * a1 + b2) % self.modulus
        return (a, b, len_b % 2)

    def state_value(self, state) -> int:
        """The packed 32-bit value of a batch-tier state."""
        return (state[1] << 16) | state[0]


def adler32(data):
    """Adler-32 (RFC 1950): byte sums mod 65521, A initialised to 1."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int64)
    n = buf.size
    a = int((1 + buf.sum()) % _ADLER_MOD)
    # B accumulates A after every byte, starting from B = 0 with A = 1:
    # B = n * 1 + sum((n - i) * d[i])  (mod 65521)
    if n:
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = int((n + (buf * weights).sum()) % _ADLER_MOD)
    else:
        b = 0
    return (b << 16) | a


class Adler32(_SuffixCode):
    """Object API for Adler-32."""

    width: int = 32
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 32
    name: str = "adler32"

    def compute(self, data) -> int:
        return adler32(data)

    # -- batch tier ----------------------------------------------------------

    def compute_many(self, blocks) -> np.ndarray:
        """Adler-32 values of a matrix of equal-length buffers."""
        blocks = block_matrix(blocks).astype(np.int64)
        n = blocks.shape[-1]
        a = (1 + blocks.sum(axis=-1)) % _ADLER_MOD
        weights = np.arange(n, 0, -1, dtype=np.int64)
        b = (n + (blocks * weights).sum(axis=-1)) % _ADLER_MOD
        return (b.astype(np.uint64) << np.uint64(16)) | a.astype(np.uint64)

    def prefix_state(self, data) -> tuple:
        """The ``(A, B)`` running sums after absorbing ``data``."""
        value = adler32(data)
        return (value & 0xFFFF, value >> 16)

    def combine(self, state_a, state_b, len_b) -> tuple:
        """State of ``A || B``; cancels B's ``A = 1`` preset."""
        a1, b1 = state_a
        a2, b2 = state_b
        a = (a1 + a2 - 1) % _ADLER_MOD
        b = (b1 + b2 + len_b * (a1 - 1)) % _ADLER_MOD
        return (a, b)

    def state_value(self, state) -> int:
        """The packed 32-bit value of a batch-tier state."""
        return (state[1] << 16) | state[0]


def xor16(data):
    """The 16-bit longitudinal parity word (XOR of all 16-bit words).

    The historical pre-checksum baseline: position-blind *and*
    count-blind (a word XORed in twice vanishes), which is why every
    sum in the paper supersedes it.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.reshape(-1, 2).astype(np.uint16)
    values = (words[:, 0].astype(np.uint32) << 8) | words[:, 1]
    return int(np.bitwise_xor.reduce(values)) if values.size else 0


class Xor16(_SuffixCode):
    """Object API for the XOR parity word."""

    width: int = 16
    #: Legacy alias of :attr:`width` (pre-protocol name).
    bits: int = 16
    name: str = "xor16"

    def compute(self, data) -> int:
        return xor16(data)

    # -- batch tier ----------------------------------------------------------

    def compute_many(self, blocks) -> np.ndarray:
        """Parity words of a matrix of equal-length buffers."""
        values = _block_words(blocks)
        return np.bitwise_xor.reduce(values, axis=-1).astype(np.uint64)

    def prefix_state(self, data) -> tuple:
        """``(parity word, length parity)`` after absorbing ``data``."""
        data = bytes(data)
        return (xor16(data), len(data) % 2)

    def combine(self, state_a, state_b, len_b) -> tuple:
        """State of ``A || B``; odd prefixes swap B's byte lanes."""
        x_a, parity_a = state_a
        x_b, _ = state_b
        if parity_a:
            x_b = swap16(x_b)
        return (x_a ^ x_b, (parity_a + len_b) % 2)

    def state_value(self, state) -> int:
        """The parity word of a batch-tier state."""
        return state[0]
