"""The optional *batch* tier of the checksum protocol.

The scalar :class:`~repro.checksums.registry.ChecksumAlgorithm` protocol
answers one buffer at a time.  The paper's splice enumeration needs the
same answer for millions of closely related buffers, which is only
tractable with three extra capabilities:

``compute_many(blocks)``
    Check values for a whole ``(n_blocks, length)`` matrix of
    equal-length buffers in one vectorized pass -- slicing-by-8 tables
    for CRCs, NumPy column reductions for the modular sums.

``prefix_state(data)``
    The algorithm's *internal running state* after absorbing ``data``:
    a CRC register, an Internet ``(sum, parity)`` pair, Fletcher
    ``(A, B)`` sums.  States are opaque to callers; map one to the
    external check value with ``state_value``.

``combine(state_a, state_b, len_b)``
    The state of the concatenation ``A || B`` from the two independent
    states -- O(1) for the modular sums, O(log len_b) for CRCs via the
    zero-feed operator.  This is what makes cut-splice evaluation
    O(cells) per packet pair instead of O(cells^2): prefix states of
    packet 1 and suffix states of packet 2 are each computed once and
    every splice point costs a single ``combine``.

Algorithms advertise the capability *structurally*: there is no base
class to inherit, :func:`supports_batch` simply checks the methods are
present, and the registry re-exports the check so ``SpliceEngine`` can
auto-select the batch path when every algorithm in play provides it.
:class:`EngineKind` names that choice on CLI flags, telemetry counters
and bench rows.

This module sits at the very bottom of the checksums layer and imports
nothing else from the project, so any layer can talk about the batch
capability without cycles.  NumPy is a hard dependency of the batch
tier (and only of the batch tier -- the scalar protocol remains pure
Python).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Protocol, Union, runtime_checkable

import numpy as np

__all__ = [
    "BatchChecksumAlgorithm",
    "EngineKind",
    "block_matrix",
    "supports_batch",
    "swap16",
]


class EngineKind(str, enum.Enum):
    """Which splice-evaluation path a sweep runs on.

    ``BATCH`` is the vectorized production path; ``SCALAR`` is the
    byte-at-a-time reference receiver retained for conformance;
    ``AUTO`` resolves to ``BATCH`` exactly when every algorithm in play
    supports the batch tier.
    """

    SCALAR = "scalar"
    BATCH = "batch"
    AUTO = "auto"

    def __str__(self) -> str:  # argparse-friendly
        return self.value


@runtime_checkable
class BatchChecksumAlgorithm(Protocol):
    """Structural type for algorithms that implement the batch tier.

    Restates the scalar protocol members (the batch tier is a superset,
    not a replacement) and adds the vectorized/incremental methods.
    """

    name: str
    width: int

    def compute(self, data: bytes) -> int:
        """The check value of one buffer (scalar reference)."""
        ...

    def field(self, data: bytes) -> bytes:
        """The trailer/field bytes protecting ``data``."""
        ...

    def compute_many(self, blocks: Any) -> np.ndarray:
        """Check values of a ``(..., L)`` uint8 matrix of buffers."""
        ...

    def prefix_state(self, data: bytes) -> Any:
        """Internal running state after absorbing ``data``."""
        ...

    def combine(self, state_a: Any, state_b: Any, len_b: int) -> Any:
        """State of ``A || B`` from the states of A and B."""
        ...

    def state_value(self, state: Any) -> int:
        """Map an internal state to the external check value."""
        ...


def supports_batch(algorithm: object) -> bool:
    """True when ``algorithm`` implements the batch capability tier.

    The check is structural (``isinstance`` against the runtime
    protocol), so third-party algorithms opt in simply by providing the
    methods -- no registration or inheritance required.
    """
    return isinstance(algorithm, BatchChecksumAlgorithm)


def swap16(value: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """Swap the two bytes of a 16-bit quantity (int or uint array).

    Byte-swapping commutes with ones-complement (end-around carry)
    addition, which is what lets odd-length prefixes combine with a
    byte-swapped suffix sum (RFC 1071, section 2(B)).
    """
    return ((value & 0xFF) << 8) | ((value >> 8) & 0xFF)


def block_matrix(blocks: Union[np.ndarray, Iterable[bytes]]) -> np.ndarray:
    """Coerce equal-length buffers into the ``(n, L)`` uint8 matrix form.

    Accepts an existing ``(..., L)`` uint8 array unchanged (no copy) or
    any iterable of equal-length bytes-likes.  Raises ``ValueError`` on
    ragged input -- the batch tier is defined over rectangular matrices.
    """
    if isinstance(blocks, np.ndarray):
        if blocks.dtype != np.uint8:
            raise ValueError("block matrices must be uint8")
        return blocks
    rows = [np.frombuffer(bytes(blob), dtype=np.uint8) for blob in blocks]
    if not rows:
        return np.empty((0, 0), dtype=np.uint8)
    length = rows[0].shape[0]
    if any(row.shape[0] != length for row in rows):
        raise ValueError("compute_many requires equal-length blocks")
    return np.stack(rows) if rows else np.empty((0, length), dtype=np.uint8)
