"""Checksum and CRC algorithms studied by the paper.

This package implements every check-code the paper evaluates, plus the
partial-sum algebra that lets the splice engine evaluate millions of
candidate splices without re-summing bytes:

- :mod:`repro.checksums.internet` -- the 16-bit ones-complement Internet
  checksum used by IP, TCP and UDP (RFC 1071), with vectorized per-cell
  partial sums and incremental-update helpers.
- :mod:`repro.checksums.fletcher` -- Fletcher's checksum in both the
  ones-complement (mod 255) and twos-complement (mod 256) variants the
  paper compares, including the positional (A, B) cell decomposition.
- :mod:`repro.checksums.crc` -- a generic table-driven CRC engine
  (any width/polynomial/reflection), the specific CRCs the paper uses
  (CRC-32 for AAL5, CRC-16, CRC-CCITT, CRC-10 for ATM OAM), and GF(2)
  zero-feed operators that combine per-cell CRC images in O(1) per cell.
- :mod:`repro.checksums.batch` -- the optional batch capability tier
  (``compute_many`` / ``prefix_state`` / ``combine``) behind the
  vectorized splice engine, plus :class:`EngineKind`.
- :mod:`repro.checksums.registry` -- name-based lookup of algorithms.
"""

from repro.checksums.batch import (
    BatchChecksumAlgorithm,
    EngineKind,
    block_matrix,
    swap16,
)
from repro.checksums.internet import (
    InternetChecksum,
    fold_carries,
    internet_checksum,
    internet_checksum_field,
    ones_complement_add,
    ones_complement_sum,
    update_checksum_field,
    word_sums,
)
from repro.checksums.fletcher import (
    Fletcher8,
    FletcherSums,
    fletcher8,
    fletcher8_cells,
    fletcher_check_bytes,
    fletcher_combine,
)
from repro.checksums.crc import (
    CRC10_ATM,
    CRC16_ARC,
    CRC16_CCITT,
    CRC32_AAL5,
    CRCEngine,
    CRCSpec,
    ZeroFeedOperator,
    crc_combine,
)
from repro.checksums.registry import (
    ChecksumAlgorithm,
    available_algorithms,
    get_algorithm,
    supports_batch,
)

__all__ = [
    "BatchChecksumAlgorithm",
    "CRC10_ATM",
    "CRC16_ARC",
    "CRC16_CCITT",
    "CRC32_AAL5",
    "CRCEngine",
    "CRCSpec",
    "ChecksumAlgorithm",
    "EngineKind",
    "Fletcher8",
    "FletcherSums",
    "InternetChecksum",
    "ZeroFeedOperator",
    "available_algorithms",
    "block_matrix",
    "crc_combine",
    "fletcher8",
    "fletcher8_cells",
    "fletcher_check_bytes",
    "fletcher_combine",
    "fold_carries",
    "get_algorithm",
    "internet_checksum",
    "internet_checksum_field",
    "ones_complement_add",
    "ones_complement_sum",
    "supports_batch",
    "swap16",
    "update_checksum_field",
    "word_sums",
]
