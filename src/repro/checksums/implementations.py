"""Alternative Internet-checksum implementation strategies (RFC 1071 §2).

The paper's Section 2 weighs checksum speed against strength, and
RFC 1071 catalogues the implementation tricks that made the TCP sum
"fast enough" in the 1980s: wider accumulators with deferred carries,
byte-order independence, word-size-agnostic summation.  This module
implements the strategies side by side -- all provably computing the
same 16-bit ones-complement sum -- so the equivalences can be tested
and the relative speeds benchmarked on a modern interpreter:

* :func:`sum_bytewise` -- the naive per-byte reference loop;
* :func:`sum_wordwise` -- pure-Python 16-bit words, folding at the end;
* :func:`sum_deferred_32bit` -- 32-bit accumulation with carries
  deferred to a final fold (RFC 1071's main trick);
* :func:`sum_numpy_words` -- vectorized 16-bit view (the library's
  production path);
* :func:`sum_numpy_32bit_pairs` -- vectorized 32-bit accumulation,
  halving the number of adds per byte.
"""

from __future__ import annotations

import numpy as np

from repro.checksums.internet import fold_carries

__all__ = [
    "ALL_STRATEGIES",
    "sum_bytewise",
    "sum_deferred_32bit",
    "sum_numpy_32bit_pairs",
    "sum_numpy_words",
    "sum_wordwise",
]


def _padded(data):
    data = bytes(data)
    return data + b"\x00" if len(data) % 2 else data


def sum_bytewise(data):
    """Reference: accumulate bytes with explicit positional weights."""
    total = 0
    for index, byte in enumerate(_padded(data)):
        total += byte << (8 if index % 2 == 0 else 0)
    return int(fold_carries(total))


def sum_wordwise(data):
    """Pure-Python 16-bit words, one add per word, fold at the end."""
    data = _padded(data)
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    return int(fold_carries(total))


def sum_deferred_32bit(data):
    """RFC 1071: sum 32-bit chunks, defer all carries to a final fold.

    Byte-swap independence makes this legal: the 32-bit big-endian
    chunks are two stacked 16-bit columns, and column sums commute
    with the final fold.
    """
    data = _padded(data)
    trailing = b""
    if len(data) % 4:
        data, trailing = data[:-2], data[-2:]
    total = 0
    for index in range(0, len(data), 4):
        total += int.from_bytes(data[index : index + 4], "big")
    # Collapse the two 16-bit columns, then add any trailing word.
    total = (total >> 16) + (total & 0xFFFF)
    if trailing:
        total += int.from_bytes(trailing, "big")
    return int(fold_carries(total))


def sum_numpy_words(data):
    """Vectorized 16-bit words (the production implementation)."""
    buf = np.frombuffer(_padded(data), dtype=np.uint8)
    words = buf.reshape(-1, 2).astype(np.uint64)
    return int(fold_carries(int((words[:, 0] << np.uint64(8) | words[:, 1]).sum())))


def sum_numpy_32bit_pairs(data):
    """Vectorized 32-bit accumulation: half the adds of the 16-bit path."""
    data = _padded(data)
    trailing = 0
    if len(data) % 4:
        trailing = int.from_bytes(data[-2:], "big")
        data = data[:-2]
    if data:
        chunks = np.frombuffer(data, dtype=">u4").astype(np.uint64)
        total = int(chunks.sum())
    else:
        total = 0
    total = (total >> 16) + (total & 0xFFFF) + trailing
    return int(fold_carries(total))


ALL_STRATEGIES = {
    "bytewise": sum_bytewise,
    "wordwise": sum_wordwise,
    "deferred-32bit": sum_deferred_32bit,
    "numpy-16bit": sum_numpy_words,
    "numpy-32bit": sum_numpy_32bit_pairs,
}
