"""A generic table-driven CRC engine plus GF(2) combine operators.

CRCs are polynomial division over GF(2); everything a CRC register does
to its *state* is linear over GF(2), and the data bytes enter the state
additively.  Concretely, processing a chunk ``X`` from register ``r``
yields

    ``f_X(r) = Z^{|X|}(r)  XOR  c_X``

where ``Z`` is the linear "feed one zero byte" operator and
``c_X = f_X(0)`` is the chunk's image from the zero register.  The
splice engine exploits this: it computes ``c`` once per 48-byte ATM cell
and then evaluates any splice as a fold of cheap ``Z^48`` applications
and XORs -- no byte is ever re-read.  :class:`ZeroFeedOperator`
materialises ``Z^n`` as byte-sliced XOR lookup tables so the fold
vectorizes over millions of splices.

The specific CRCs the paper relies on are provided as specs:

* :data:`CRC32_AAL5` -- the AAL5 CPCS CRC-32 (the non-reflected,
  complemented CRC-32 used when bits go on the wire MSB-first).
* :data:`CRC16_CCITT`, :data:`CRC16_ARC` -- observable-rate stand-ins
  used to verify the "CRC behaves like the uniform prediction" claim at
  simulation scale.
* :data:`CRC10_ATM` -- the ATM OAM CRC-10.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.checksums.batch import block_matrix

__all__ = [
    "CRC10_ATM",
    "CRC32C",
    "CRC16_ARC",
    "CRC16_CCITT",
    "CRC32_AAL5",
    "CRCEngine",
    "CRCSpec",
    "ZeroFeedOperator",
    "crc_combine",
    "reflect_bits",
]


def reflect_bits(value, width):
    """Reverse the low ``width`` bits of ``value``."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@dataclass(frozen=True)
class CRCSpec:
    """A CRC parameter set in the Rocksoft/catalogue convention."""

    name: str
    width: int
    poly: int
    init: int
    refin: bool
    refout: bool
    xorout: int

    def __post_init__(self):
        if not 8 <= self.width <= 32:
            raise ValueError("supported CRC widths are 8..32 bits")
        mask = (1 << self.width) - 1
        if self.poly & ~mask or self.init & ~mask or self.xorout & ~mask:
            raise ValueError("poly/init/xorout exceed the CRC width")


#: AAL5 CPCS CRC-32: CRC-32 polynomial, all-ones preset, complemented,
#: no reflection (ATM transmits most-significant bit first).
CRC32_AAL5 = CRCSpec("crc32-aal5", 32, 0x04C11DB7, 0xFFFFFFFF, False, False, 0xFFFFFFFF)

#: Classic reflected CRC-16 (ARC / IBM).
CRC16_ARC = CRCSpec("crc16-arc", 16, 0x8005, 0x0000, True, True, 0x0000)

#: CRC-16/CCITT-FALSE, the common X.25-family parameterisation.
CRC16_CCITT = CRCSpec("crc16-ccitt", 16, 0x1021, 0xFFFF, False, False, 0x0000)

#: ATM OAM cell CRC-10.
CRC10_ATM = CRCSpec("crc10-atm", 10, 0x233, 0x000, False, False, 0x000)

#: CRC-32C (Castagnoli): the post-paper polynomial chosen for its
#: superior Hamming distance, used by SCTP and iSCSI.
CRC32C = CRCSpec("crc32c", 32, 0x1EDC6F41, 0xFFFFFFFF, True, True, 0xFFFFFFFF)

_UNSET = object()


class CRCEngine:
    """Table-driven CRC computation over a :class:`CRCSpec`.

    The engine exposes both a conventional ``compute``/``verify`` API
    and the register-level API (``register_init`` / ``process`` /
    ``finalize``) that the splice engine composes with
    :class:`ZeroFeedOperator`.
    """

    def __init__(self, spec: CRCSpec) -> None:
        self.spec = spec
        self.mask: int = (1 << spec.width) - 1
        self.name: str = spec.name
        self.width: int = spec.width
        #: Legacy alias of :attr:`width` (pre-protocol name).
        self.bits: int = spec.width
        self._table = self._build_table()
        self._table_np = np.asarray(self._table, dtype=np.uint32)
        self._zero_ops = {}
        self._residues = {}
        self._frame_residue = None

    # -- table construction -------------------------------------------------

    def _build_table(self):
        spec = self.spec
        table = []
        if spec.refin:
            poly = reflect_bits(spec.poly, spec.width)
            for index in range(256):
                reg = index
                for _ in range(8):
                    reg = (reg >> 1) ^ (poly if reg & 1 else 0)
                table.append(reg)
        else:
            top = 1 << (spec.width - 1)
            for index in range(256):
                reg = index << (spec.width - 8)
                for _ in range(8):
                    reg = ((reg << 1) ^ spec.poly if reg & top else reg << 1) & self.mask
                table.append(reg)
        return table

    # -- register-level API --------------------------------------------------

    @property
    def register_init(self):
        """The register image of the spec's ``init`` value."""
        if self.spec.refin:
            return reflect_bits(self.spec.init, self.spec.width)
        return self.spec.init

    def step(self, reg, byte):
        """Feed one data byte into the register."""
        if self.spec.refin:
            return (reg >> 8) ^ self._table[(reg ^ byte) & 0xFF]
        shift = self.spec.width - 8
        return ((reg << 8) & self.mask) ^ self._table[((reg >> shift) ^ byte) & 0xFF]

    def process(self, reg, data):
        """Feed ``data`` into register ``reg`` and return the new register."""
        for byte in bytes(data):
            reg = self.step(reg, byte)
        return reg

    def finalize(self, reg):
        """Map a register value to the spec's external CRC value."""
        if self.spec.refout != self.spec.refin:
            reg = reflect_bits(reg, self.spec.width)
        return reg ^ self.spec.xorout

    def unfinalize(self, value):
        """Inverse of :meth:`finalize`."""
        value ^= self.spec.xorout
        if self.spec.refout != self.spec.refin:
            value = reflect_bits(value, self.spec.width)
        return value

    # -- conventional API ----------------------------------------------------

    def compute(self, data) -> int:
        """The CRC value of ``data``."""
        return self.finalize(self.process(self.register_init, data))

    @property
    def _wire_order(self):
        """The byte order CRC bytes travel in for this spec.

        Reflected CRCs ship least-significant byte first (Ethernet
        convention); non-reflected ones most-significant first (the
        AAL5/ATM convention) -- the order under which the residue
        register is a constant of the spec.
        """
        return "little" if self.spec.refout else "big"

    def _feed_zero_bits(self, reg, count):
        """Feed ``count`` single zero *bits* into the register.

        Needed for specs whose width is not a byte multiple (CRC-10):
        the stored field pads the CRC to whole bytes, and the pad bits
        must enter the polynomial division for the framed message to
        land on a message-independent residue.
        """
        if self.spec.refin:
            poly = reflect_bits(self.spec.poly, self.spec.width)
            for _ in range(count):
                reg = (reg >> 1) ^ (poly if reg & 1 else 0)
        else:
            top = 1 << (self.spec.width - 1)
            for _ in range(count):
                reg = ((reg << 1) ^ self.spec.poly if reg & top else reg << 1)
                reg &= self.mask
        return reg

    def field(self, data) -> bytes:
        """The CRC bytes to append to ``data`` (spec wire order).

        ``data + field(data)`` streams to a message-independent residue
        register, so :meth:`verify` accepts the framed whole.  For
        byte-multiple widths this is exactly :meth:`crc_bytes`; for
        CRC-10 the value is bit-aligned so the 6 pad bits participate
        in the division (the ATM OAM cell layout).
        """
        width_bytes = (self.spec.width + 7) // 8
        pad = 8 * width_bytes - self.spec.width
        if pad == 0:
            return self.crc_bytes(data, self._wire_order)
        reg = self.process(self.register_init, data)
        reg = self._feed_zero_bits(reg, pad)
        return self.finalize(reg).to_bytes(width_bytes, self._wire_order)

    def verify(self, data, stored=_UNSET) -> bool:
        """True if ``data`` (trailing CRC bytes included) validates.

        Streams the whole frame and compares the register against the
        spec's residue constant -- the check a receiver that cannot see
        the frame boundary performs, and the one the splice engine
        models.

        The pre-protocol two-argument shape ``verify(data, stored)``
        still works but raises a :class:`DeprecationWarning`; compare
        against :meth:`compute` directly instead.
        """
        if stored is not _UNSET:
            warnings.warn(
                "CRCEngine.verify(data, stored) is deprecated; use "
                "verify(data) on the framed message or compare "
                "compute(data) == stored",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.compute(data) == stored
        reg = self.process(self.register_init, data)
        if self._frame_residue is None:
            probe = b"\xa5\x5a\x00\xff checksum residue probe"
            probe_reg = self.process(self.register_init, probe)
            self._frame_residue = self.process(probe_reg, self.field(probe))
        return reg == self._frame_residue

    def crc_bytes(self, data, byteorder="big"):
        """The CRC of ``data`` serialised to bytes for transmission."""
        width_bytes = (self.spec.width + 7) // 8
        return self.compute(data).to_bytes(width_bytes, byteorder)

    def residue_register(self, byteorder="big"):
        """Register value after a correct message *and* its CRC bytes.

        This is a constant of the spec, so a verifier that has streamed
        an entire frame can validate it by comparing the register to
        this value -- the check the splice engine uses.
        """
        if byteorder not in self._residues:
            probe = b"\xa5\x5a\x00\xff checksum residue probe"
            reg = self.process(self.register_init, probe)
            reg = self.process(reg, self.crc_bytes(probe, byteorder))
            self._residues[byteorder] = reg
        return self._residues[byteorder]

    # -- vectorized forms ----------------------------------------------------

    def process_cells(self, cells, init=0):
        """Register images of many equal-length chunks, vectorized.

        ``cells`` is a ``(..., L)`` uint8 array; each chunk is processed
        starting from register ``init`` (default 0, producing the ``c_X``
        images that :class:`ZeroFeedOperator` composes).  Returns a
        ``(...,)`` uint32 array of register values.
        """
        cells = np.asarray(cells, dtype=np.uint8)
        reg = np.empty(cells.shape[:-1], dtype=np.uint32)
        reg[...] = init
        table = self._table_np
        if self.spec.refin:
            for j in range(cells.shape[-1]):
                reg = (reg >> np.uint32(8)) ^ table[
                    (reg ^ cells[..., j]) & np.uint32(0xFF)
                ]
        else:
            shift = np.uint32(self.spec.width - 8)
            mask = np.uint32(self.mask)
            for j in range(cells.shape[-1]):
                idx = ((reg >> shift) ^ cells[..., j]) & np.uint32(0xFF)
                reg = ((reg << np.uint32(8)) & mask) ^ table[idx]
        return reg

    def zero_feed(self, nbytes):
        """The cached :class:`ZeroFeedOperator` for ``nbytes`` zero bytes."""
        if nbytes not in self._zero_ops:
            self._zero_ops[nbytes] = ZeroFeedOperator(self, nbytes)
        return self._zero_ops[nbytes]

    # -- batch tier (slicing-by-8) -------------------------------------------

    def _advance_many(self, regs, blocks):
        """Feed each ``(..., L)`` row of ``blocks`` into its register.

        The hot kernel behind :meth:`compute_many`: eight data bytes
        enter the register per iteration via the per-polynomial sliced
        tables (``S_j = Z^j(table)``), so the Python-level loop runs
        ``L // 8`` times instead of ``L``.  By GF(2) linearity, feeding
        bytes ``d0..d7`` from register ``r`` is

            ``Z^8(r) XOR S_7[d0] XOR S_6[d1] XOR ... XOR S_0[d7]``

        which is exactly what the body evaluates.  The byte tail falls
        back to the one-byte-per-step vectorized loop.
        """
        blocks = np.asarray(blocks, dtype=np.uint8)
        length = blocks.shape[-1]
        head = length - length % 8
        if head:
            sliced = _slice_tables(self)
            z8 = self.zero_feed(8)
            for base in range(0, head, 8):
                acc = sliced[7][blocks[..., base]]
                for k in range(1, 8):
                    acc = acc ^ sliced[7 - k][blocks[..., base + k]]
                regs = z8.apply_vec(regs) ^ acc
        if head != length:
            regs = self.process_cells(blocks[..., head:], init=regs)
        return regs

    def finalize_many(self, regs):
        """Vectorized :meth:`finalize` over a uint32 register array."""
        regs = np.asarray(regs, dtype=np.uint32)
        if self.spec.refout != self.spec.refin:
            regs = _reflect_many(regs, self.spec.width)
        return regs ^ np.uint32(self.spec.xorout)

    def compute_many(self, blocks):
        """CRC values of equal-length buffers, one vectorized pass.

        ``blocks`` is a ``(..., L)`` uint8 array (or an iterable of
        equal-length bytes); the result is a ``(...,)`` uint64 array of
        external CRC values, bit-identical to mapping :meth:`compute`
        over the rows.
        """
        blocks = block_matrix(blocks)
        regs = np.empty(blocks.shape[:-1], dtype=np.uint32)
        regs[...] = np.uint32(self.register_init)
        regs = self._advance_many(regs, blocks)
        return self.finalize_many(regs).astype(np.uint64)

    def prefix_state(self, data) -> int:
        """The register after absorbing ``data`` from the preset.

        The batch-tier state of a CRC *is* its register; combine two
        with :meth:`combine` and externalise with :meth:`state_value`.
        """
        blob = np.frombuffer(bytes(data), dtype=np.uint8)
        regs = np.asarray(np.uint32(self.register_init))
        return int(self._advance_many(regs, blob))

    def combine(self, state_a, state_b, len_b) -> int:
        """Register of ``A || B`` from the registers of A and B.

        Both input states start from the preset register, so B's
        preset contribution must be cancelled:

            ``Z^{len_b}(state_a) XOR state_b XOR Z^{len_b}(init)``
        """
        op = self.zero_feed(len_b)
        return op.apply(state_a) ^ state_b ^ op.apply(self.register_init)

    def state_value(self, state) -> int:
        """External CRC value of a batch-tier state (a register)."""
        return self.finalize(state)


class ZeroFeedOperator:
    """The GF(2)-linear operator ``Z^n``: feed ``n`` zero bytes.

    Built by exponentiating the one-byte bit-matrix and baked into
    byte-sliced XOR lookup tables so it applies in a handful of gathers
    per call even across large NumPy register arrays.
    """

    def __init__(self, engine, nbytes):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.engine = engine
        self.nbytes = nbytes
        width = engine.spec.width
        matrix = _matrix_power(_one_byte_matrix(engine), nbytes, width)
        self._matrix = matrix
        self._tables = _bake_tables(matrix, width)

    def apply(self, reg):
        """Apply the operator to a scalar register value."""
        result = 0
        for k, table in enumerate(self._tables):
            result ^= int(table[(reg >> (8 * k)) & 0xFF])
        return result

    def apply_vec(self, regs):
        """Apply the operator to a uint32 array of register values."""
        regs = np.asarray(regs, dtype=np.uint32)
        result = self._tables[0][regs & np.uint32(0xFF)]
        for k in range(1, len(self._tables)):
            result = result ^ self._tables[k][
                (regs >> np.uint32(8 * k)) & np.uint32(0xFF)
            ]
        return result


def _one_byte_matrix(engine):
    """Images of each register basis bit under one zero-byte feed."""
    return [engine.step(1 << j, 0) for j in range(engine.spec.width)]


def _matrix_apply(matrix, value):
    """Image of ``value`` under a bit-matrix (list of basis images)."""
    result = 0
    j = 0
    while value:
        if value & 1:
            result ^= matrix[j]
        value >>= 1
        j += 1
    return result


def _matrix_compose(first, second, width):
    """The matrix applying ``first`` then ``second``."""
    return [_matrix_apply(second, first[j]) for j in range(width)]


def _matrix_power(matrix, exponent, width):
    """``matrix`` composed with itself ``exponent`` times."""
    result = [1 << j for j in range(width)]  # identity
    base = matrix
    while exponent:
        if exponent & 1:
            result = _matrix_compose(result, base, width)
        base = _matrix_compose(base, base, width)
        exponent >>= 1
    return result


def _bake_tables(matrix, width):
    """Byte-sliced XOR lookup tables realising a bit-matrix."""
    tables = []
    for k in range((width + 7) // 8):
        table = np.zeros(256, dtype=np.uint32)
        for j in range(min(8, width - 8 * k)):
            bit = 1 << j
            image = np.uint32(matrix[8 * k + j])
            # Extend the table to indices with bit j set via superposition.
            table[bit : 2 * bit] = table[:bit] ^ image
        tables.append(table)
    return tables


#: Byte-reversal lookup used by the vectorized finalize for specs with
#: ``refout != refin`` (none of the paper's specs, but the engine stays
#: generic).
_REV8 = np.array([reflect_bits(b, 8) for b in range(256)], dtype=np.uint32)


def _reflect_many(values, width):
    """Reverse the low ``width`` bits of each element, vectorized."""
    values = np.asarray(values, dtype=np.uint32)
    full = (
        (_REV8[values & np.uint32(0xFF)] << np.uint32(24))
        | (_REV8[(values >> np.uint32(8)) & np.uint32(0xFF)] << np.uint32(16))
        | (_REV8[(values >> np.uint32(16)) & np.uint32(0xFF)] << np.uint32(8))
        | _REV8[(values >> np.uint32(24)) & np.uint32(0xFF)]
    )
    return full >> np.uint32(32 - width)


#: Slicing-by-8 table cache, keyed per polynomial -- the tables depend
#: only on ``(width, poly, refin)``, so every engine instance (and every
#: worker process) reuses one baked set per spec.
_SLICE_TABLES: dict = {}


def _slice_tables(engine):
    """The 8 sliced tables ``S_j = Z^j(table)`` for ``engine``'s spec."""
    key = (engine.spec.width, engine.spec.poly, engine.spec.refin)
    if key not in _SLICE_TABLES:
        tables = [engine._table_np]
        for j in range(1, 8):
            tables.append(engine.zero_feed(j).apply_vec(engine._table_np))
        _SLICE_TABLES[key] = tables
    return _SLICE_TABLES[key]


def crc_combine(engine, crc_first, crc_second, second_len):
    """CRC of the concatenation of two messages from their CRCs.

    ``crc_first`` is the CRC of message A, ``crc_second`` the CRC of
    message B, ``second_len`` the byte length of B.  Returns the CRC of
    ``A || B`` (the zlib ``crc32_combine`` generalised to any spec).
    """
    op = engine.zero_feed(second_len)
    reg_a = engine.unfinalize(crc_first)
    reg_b = engine.unfinalize(crc_second)
    reg = op.apply(reg_a) ^ reg_b ^ op.apply(engine.register_init)
    return engine.finalize(reg)
