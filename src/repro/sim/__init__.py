"""End-to-end transfer simulation: the "so what" of checksum misses.

The splice tables measure how often checks fail; this package runs the
whole loop -- packetize, frame, lose cells, reassemble, validate,
retransmit -- and reports what the *application* experiences: goodput,
retransmissions, and above all the probability that corrupted data is
silently delivered.
"""

from repro.sim.transfer import (
    TransferReport,
    frame_acceptable,
    simulate_file_transfer,
)

__all__ = ["TransferReport", "frame_acceptable", "simulate_file_transfer"]
