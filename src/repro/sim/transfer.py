"""A reliable file transfer over a lossy ATM link, end to end.

The sender packetizes a file (per a :class:`PacketizerConfig`), frames
each packet for AAL5, and sends cells through a loss process.  The
receiver reassembles frames, applies the full check stack (AAL5 length,
IP/TCP header checks, the transport checksum, the AAL5 CRC), accepts
in-sequence packets, and implicitly NAKs everything else; the sender
retransmits each packet until it is accepted (stop-and-wait per
packet -- timing is out of scope, integrity is the subject).

What this adds over the splice tables: the *application-level*
consequence.  An accepted frame whose payload differs from the packet
the sender sent at that sequence position is silent corruption
delivered to the application -- the event all the paper's machinery
exists to prevent -- and its probability per transferred file is the
bottom line.  Disabling the CRC (``use_crc=False``) shows what the
transport checksum alone would let through.

:func:`frame_acceptable` is the receiver's whole integrity stack over
one reassembled frame; the timed channel simulator
(:mod:`repro.channel`) drives its ARQ recovery decisions through the
same function, so both simulations accept exactly the same frames.

Retry exhaustion is a *degradation*, not a silent counter: a transfer
that gave up on any packet marks its report's :class:`RunHealth`
degraded, and the CLI surfaces it with a nonzero exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.engine import EngineOptions
from repro.core.supervisor import RunHealth
from repro.protocols.aal5 import AAL5_TRAILER_LEN, CELL_PAYLOAD, aal5_crc_engine
from repro.core.reference import _header_ok, _transport_ok
from repro.protocols.cellstream import AAL5Reassembler, MarkedCell, apply_loss
from repro.protocols.ftpsim import FileTransferSimulator
from repro.protocols.packetizer import PacketizerConfig

__all__ = ["TransferReport", "frame_acceptable", "simulate_file_transfer"]


@dataclass
class TransferReport:
    """What happened during one simulated reliable transfer."""

    packets: int = 0
    transmissions: int = 0
    cells_sent: int = 0
    cells_delivered: int = 0
    frames_rejected: int = 0
    out_of_sequence: int = 0
    delivered_clean: int = 0
    delivered_corrupted: int = 0
    gave_up: int = 0
    #: supervision record: retry exhaustion degrades here rather than
    #: hiding in the ``gave_up`` counter.
    health: RunHealth = field(default_factory=RunHealth)

    def __add__(self, other):
        """Merge two reports: counters sum, health records merge."""
        merged = TransferReport()
        for spec in fields(self):
            if spec.name == "health":
                continue
            setattr(
                merged, spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        merged.health.merge(self.health)
        merged.health.merge(other.health)
        return merged

    @property
    def retransmission_ratio(self):
        return self.transmissions / self.packets if self.packets else 0.0

    @property
    def goodput(self):
        """Delivered payload cells per delivered cell (very rough)."""
        if not self.cells_delivered:
            return 0.0
        return min(1.0, self.packets * 7 / self.cells_delivered)

    @property
    def silent_corruption(self):
        """Packets delivered to the application with wrong bytes."""
        return self.delivered_corrupted

    @property
    def degraded(self):
        """Did delivery fall short (packets abandoned or corrupted)?"""
        return self.gave_up > 0 or self.delivered_corrupted > 0


def frame_acceptable(data, options, use_crc=True):
    """The receiver's integrity stack over one reassembled frame.

    Returns ``(acceptable, payload_length)``.  The stack, in order:
    AAL5 length plausibility (cell-aligned size, encoded length within
    the last cell's window), the IP header checks, the transport
    checksum per ``options``, and -- unless ``use_crc`` is False -- the
    AAL5 CRC-32 over the whole frame.
    """
    if len(data) < CELL_PAYLOAD or len(data) % CELL_PAYLOAD:
        return False, 0
    length = int.from_bytes(data[-6:-4], "big")
    max_payload = len(data) - AAL5_TRAILER_LEN
    if not max_payload - (CELL_PAYLOAD - 1) <= length <= max_payload:
        return False, 0
    if length < 40 or not _header_ok(
        data, length, require_ip_checksum=options.require_ip_checksum
    ):
        return False, 0
    if not _transport_ok(data, length, options):
        return False, 0
    if use_crc:
        engine = aal5_crc_engine()
        if engine.compute(data[:-4]) != int.from_bytes(data[-4:], "big"):
            return False, 0
    return True, length


def simulate_file_transfer(
    data,
    loss_model,
    config=None,
    use_crc=True,
    max_attempts=64,
    seed=0,
    health=None,
):
    """Reliably transfer ``data`` over a lossy link; report the outcome.

    The sender transmits each packet (alongside its successor, so
    adjacent-packet splices can form exactly as in the paper's error
    model) until the receiver accepts a frame for that sequence
    position; ``max_attempts`` bounds the retries.  Returns a
    :class:`TransferReport`; a transfer that exhausted the retry
    budget on any packet records a degradation note in the report's
    ``health`` (and in ``health`` when one is passed in).
    """
    config = config or PacketizerConfig()
    options = EngineOptions.from_packetizer(config, aux_crcs=())
    rng = np.random.default_rng(seed)
    units = FileTransferSimulator(config).transfer(data)

    report = TransferReport(packets=len(units))
    if health is not None:
        report.health = health
    for index, unit in enumerate(units):
        # The wire window: this packet followed by the next (if any),
        # so losses can splice them -- the paper's scenario.
        window = [unit] + ([units[index + 1]] if index + 1 < len(units) else [])
        cells = []
        for w_index, w_unit in enumerate(window):
            payloads = w_unit.frame.cells()
            last = len(payloads) - 1
            cells.extend(
                MarkedCell(p.tobytes(), c == last, w_index)
                for c, p in enumerate(payloads)
            )
        expected = unit.packet.ip_packet
        expected_seq = unit.packet.seq

        accepted = False
        for _ in range(max_attempts):
            report.transmissions += 1
            report.cells_sent += len(cells)
            delivered = apply_loss(cells, loss_model, rng)
            report.cells_delivered += len(delivered)
            frames = AAL5Reassembler().feed_all(delivered)
            if not frames:
                continue
            frame_bytes = b"".join(frames[0])
            ok, length = frame_acceptable(frame_bytes, options, use_crc)
            if not ok:
                report.frames_rejected += 1
                continue
            # Sequence placement: the receiver only accepts data for
            # the sequence position it is waiting on.  (An intact
            # *next* packet arriving while this one was lost is simply
            # early, not corruption.)
            seq = int.from_bytes(frame_bytes[24:28], "big")
            if seq != expected_seq:
                report.out_of_sequence += 1
                continue
            accepted = True
            if frame_bytes[:length] == expected:
                report.delivered_clean += 1
            else:
                report.delivered_corrupted += 1
            break
        if not accepted:
            report.gave_up += 1
    if report.gave_up:
        report.health.degrade(
            "transfer degraded: gave up on %d of %d packet(s) after %d "
            "attempt(s) each; delivery is incomplete"
            % (report.gave_up, report.packets, max_attempts)
        )
    return report
