"""A miniature exhaustive model of the paper's theory.

The appendix proves its results for arbitrary moduli; on a *small*
modulus the entire space is enumerable, so the inequalities can be
checked exactly -- not sampled, not asymptotically, but over every
distribution vertex and every constant.  This module builds miniature
analogues (sums over Z_M for small M, a toy splice with header/data
colouring) and verifies:

* Lemma 9 exactly: ``P[X == Y] >= P[X - Y == c]`` for every c, with
  equality analysis;
* Theorem 10's mechanism exactly: over a toy splice model where the
  header and data cells come from different distributions, the
  trailer-style condition (difference equal to a constant drawn from a
  *different* distribution) never beats the header-style condition
  (plain equality within one distribution).

These are the same statements the statistical tests check at full
scale; here they are closed-form, which makes them ideal property-test
targets.
"""

from __future__ import annotations

from itertools import product

import numpy as np

__all__ = [
    "exact_prob_equal",
    "exact_prob_offset",
    "header_vs_trailer_failure",
    "verify_lemma9_exhaustive",
]


def exact_prob_equal(pmf):
    """P[X == Y] for X, Y iid ~ pmf, exactly."""
    pmf = np.asarray(pmf, dtype=np.float64)
    return float((pmf * pmf).sum())


def exact_prob_offset(pmf, offset):
    """P[X - Y == offset (mod M)] for X, Y iid ~ pmf, exactly."""
    pmf = np.asarray(pmf, dtype=np.float64)
    return float((pmf * np.roll(pmf, -int(offset))).sum())


def verify_lemma9_exhaustive(modulus=5, resolution=4):
    """Check Lemma 9 at every lattice distribution over Z_modulus.

    Enumerates every PMF whose probabilities are multiples of
    ``1/resolution`` and every offset, returning the number of
    (distribution, offset) pairs checked.  Raises ``AssertionError``
    on any violation -- there are none; this is the lemma, made
    exhaustive.
    """
    checked = 0
    for ticks in product(range(resolution + 1), repeat=modulus):
        total = sum(ticks)
        if total != resolution:
            continue
        pmf = np.array(ticks, dtype=np.float64) / resolution
        equal = exact_prob_equal(pmf)
        for offset in range(1, modulus):
            assert exact_prob_offset(pmf, offset) <= equal + 1e-12
            checked += 1
    return checked


def header_vs_trailer_failure(data_pmf, header_delta_pmf):
    """Exact failure probabilities of the toy header/trailer splice.

    Toy model (Theorem 10's skeleton): a splice fails a *header*
    checksum when two data-cell sums drawn iid from ``data_pmf`` are
    equal; it fails a *trailer* checksum when their difference equals
    a header-to-header delta drawn from ``header_delta_pmf`` (the
    sequence-number difference distribution).  Returns
    ``(p_header_fail, p_trailer_fail)``; Theorem 10 guarantees
    ``p_trailer_fail <= p_header_fail``.
    """
    data_pmf = np.asarray(data_pmf, dtype=np.float64)
    delta_pmf = np.asarray(header_delta_pmf, dtype=np.float64)
    if data_pmf.shape != delta_pmf.shape:
        raise ValueError("distributions must share a modulus")
    header_fail = exact_prob_equal(data_pmf)
    trailer_fail = sum(
        float(delta_pmf[c]) * exact_prob_offset(data_pmf, c)
        for c in range(data_pmf.size)
    )
    return header_fail, float(trailer_fail)
