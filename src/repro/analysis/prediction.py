"""The paper's final model: predicting actual splice failure rates.

Sections 4.6 and 5.4 build, in stages, a predictor for the measured
per-substitution-length failure rate:

1. start from the *local, identical-excluded* congruence probability
   of k-cell blocks (Table 5's last column) -- substitutions draw from
   nearby data;
2. apply the cell-colouring correction ``(m - k) / (m - 1)``: only
   substitutions avoiding the second packet's header cell can fail at
   the data rate (the rest effectively never fail);
3. combine per-length predictions into a total using the known number
   of splices of each length, ``C(m-2, k-1) * C(m-1, m-1-k)``-ish --
   here taken directly from the enumeration.

"Our sample probabilities now closely match the actual measured
failure probabilities, and we are reasonably confident that we have
explained the behavior we have observed."  This module packages that
model as a function so the claim is testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.locality import locality_statistics
from repro.analysis.theory import coloring_correction
from repro.core.enumeration import enumerate_splices

__all__ = ["SplicePrediction", "predict_failure_rates"]


@dataclass(frozen=True)
class SplicePrediction:
    """Predicted vs measured per-length and total failure rates (%)"""

    ks: tuple
    predicted_by_len: tuple
    splices_by_len: tuple

    @property
    def total_pct(self):
        """Splice-count-weighted total predicted miss rate."""
        weights = np.asarray(self.splices_by_len, dtype=np.float64)
        rates = np.asarray(self.predicted_by_len, dtype=np.float64)
        total = weights.sum()
        return float((weights * rates).sum() / total) if total else 0.0

    def as_dict(self):
        return {
            int(k): float(rate)
            for k, rate in zip(self.ks, self.predicted_by_len)
        }


def predict_failure_rates(filesystem, cells_per_packet=7, window=512):
    """Predict the splice experiment's miss rates from sample statistics.

    Uses only distribution-level measurements (no splice is ever
    formed): the local identical-excluded congruence per block length,
    discounted by the colouring correction, weighted by each length's
    share of header-led splices.  Compare against
    :class:`~repro.core.results.SpliceCounters` per-length "actual"
    rates to reproduce the paper's Section 5.4 reconciliation.
    """
    m = cells_per_packet
    enum = enumerate_splices(m, m)
    header_led = enum.selection[:, 0] == 0
    lens = enum.substitution_len[header_led]
    ks = tuple(range(1, m))
    splices_by_len = tuple(int((lens == k).sum()) for k in ks)

    stats = locality_statistics(filesystem, ks=ks, window=window)
    predicted = []
    for k in ks:
        base = stats[k].local_match_excluding_identical * 100.0
        predicted.append(base * coloring_correction(m, k))
    return SplicePrediction(
        ks=ks,
        predicted_by_len=tuple(predicted),
        splices_by_len=splices_by_len,
    )
