"""Distribution analyses behind the paper's figures and tables.

- :mod:`repro.analysis.distribution` -- per-cell checksum value
  distributions (Figure 2's PDFs/CDFs, Figure 3, Section 4.3's
  hot-spot statistics).
- :mod:`repro.analysis.convolution` -- the i.i.d. convolution
  predictor over ones-complement arithmetic (Figure 2's "Predict"
  line, Table 4's "Predicted" column).
- :mod:`repro.analysis.locality` -- global vs local congruence with
  identical-data exclusion (Tables 5 and 6).
- :mod:`repro.analysis.theory` -- numerical forms of the appendix
  results (Lemma 1, Corollary 3, Theorem 4's modular CLT, Lemma 9) and
  the Section 5.4 cell-colouring correction.
"""

from repro.analysis.convolution import (
    ONES_COMPLEMENT_CLASSES,
    match_probability,
    ones_complement_classes,
    predicted_block_distribution,
    predicted_match_probability,
)
from repro.analysis.distribution import (
    ChecksumDistribution,
    block_checksum_values,
    cell_checksum_values,
    distribution_over,
)
from repro.analysis.locality import LocalityStats, locality_statistics
from repro.analysis.theory import (
    coloring_correction,
    effective_checksum_bits,
    modular_clt_pmax,
    prob_equal,
    prob_offset,
)

__all__ = [
    "ChecksumDistribution",
    "LocalityStats",
    "ONES_COMPLEMENT_CLASSES",
    "block_checksum_values",
    "cell_checksum_values",
    "coloring_correction",
    "distribution_over",
    "effective_checksum_bits",
    "locality_statistics",
    "match_probability",
    "modular_clt_pmax",
    "ones_complement_classes",
    "predicted_block_distribution",
    "predicted_match_probability",
    "prob_equal",
    "prob_offset",
]
