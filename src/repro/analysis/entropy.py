"""Entropy measures of data and checksum distributions.

The paper's story is ultimately about entropy: real data has far less
than 8 bits per byte, checksum values over small cells inherit the
deficit, and the miss rate tracks the collision probability.  This
module quantifies that chain:

* :func:`byte_entropy` -- Shannon entropy of the byte-value
  distribution (bits/byte);
* :func:`distribution_entropy` / :func:`effective_value_bits` -- the
  entropy of a checksum-value distribution and the size of the uniform
  space with the same collision probability (the Renyi-2 "effective
  bits", which is what failure rates actually follow);
* :func:`kl_from_uniform` -- how far a distribution sits from the
  uniform ideal;
* :func:`corpus_statistics` -- the per-file-family summary table
  behind the corpus documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FamilyStats",
    "byte_entropy",
    "corpus_statistics",
    "distribution_entropy",
    "effective_value_bits",
    "kl_from_uniform",
]


def _as_pmf(counts):
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise ValueError("empty distribution")
    return counts / total


def byte_entropy(data):
    """Shannon entropy of the byte values of ``data``, in bits/byte."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if not buf.size:
        return 0.0
    return distribution_entropy(np.bincount(buf, minlength=256))


def distribution_entropy(counts):
    """Shannon entropy (bits) of a count/probability vector."""
    pmf = _as_pmf(counts)
    nonzero = pmf[pmf > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def effective_value_bits(counts):
    """Renyi-2 entropy: ``-log2(sum p^2)``.

    The collision probability of the distribution equals that of a
    uniform distribution over ``2^H2`` values -- the "10-bit checksum"
    arithmetic of the paper's headline, applied to distributions.
    """
    pmf = _as_pmf(counts)
    return float(-math.log2(float((pmf * pmf).sum())))


def kl_from_uniform(counts):
    """KL divergence (bits) of a distribution from uniform over its space."""
    pmf = _as_pmf(counts)
    space = pmf.size
    nonzero = pmf[pmf > 0]
    return float((nonzero * np.log2(nonzero * space)).sum())


@dataclass(frozen=True)
class FamilyStats:
    """Summary statistics of one file family / corpus slice."""

    name: str
    sample_bytes: int
    byte_entropy_bits: float
    zero_fraction: float
    checksum_pmax_pct: float
    checksum_effective_bits: float


def corpus_statistics(filesystem):
    """Per-kind :class:`FamilyStats` over a filesystem.

    ``checksum_*`` statistics are computed over the Internet checksum
    of 48-byte cells, matching the paper's measurement unit.
    """
    from repro.analysis.distribution import cell_checksum_values
    from repro.analysis.convolution import class_pmf

    by_kind = {}
    for file in filesystem:
        by_kind.setdefault(file.kind, []).append(file.data)

    stats = []
    for kind in sorted(by_kind):
        data = b"".join(by_kind[kind])
        values = cell_checksum_values(data)
        pmf = class_pmf(values)
        counts = np.asarray(pmf * max(values.size, 1))
        buf = np.frombuffer(data, dtype=np.uint8)
        stats.append(
            FamilyStats(
                name=kind,
                sample_bytes=len(data),
                byte_entropy_bits=byte_entropy(data),
                zero_fraction=float((buf == 0).mean()) if buf.size else 0.0,
                checksum_pmax_pct=100.0 * float(pmf.max()),
                checksum_effective_bits=effective_value_bits(pmf)
                if values.size
                else 0.0,
            )
        )
    return stats
