"""The i.i.d. convolution predictor (Figure 2's "Predict" line).

If every cell were an independent draw from the single-cell checksum
distribution, the distribution of the k-cell block checksum would be
the k-fold convolution of the single-cell distribution under
ones-complement addition:

    ``P_k(c) = sum_x P_{k-1}(c - x) P_1(x)``   (Section 4.4)

Ones-complement 16-bit addition is addition modulo 65535 with two
representations of zero (0x0000 and 0xFFFF), so the convolution is
cyclic over 65535 residue classes; :func:`ones_complement_classes`
maps value space to class space.  The k-fold convolution is computed
in the FFT domain in O(M log M).

The paper's central observation is that the *measured* k-cell
distribution stays far more skewed than this prediction -- real cells
are locally correlated, not i.i.d.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ONES_COMPLEMENT_CLASSES",
    "cyclic_convolve",
    "cyclic_self_convolve",
    "match_probability",
    "ones_complement_classes",
    "predicted_block_distribution",
    "predicted_match_probability",
]

#: Residue classes of 16-bit ones-complement arithmetic (0xFFFF == 0).
ONES_COMPLEMENT_CLASSES = 0xFFFF


def ones_complement_classes(values):
    """Map 16-bit checksum values to their mod-65535 residue classes."""
    values = np.asarray(values, dtype=np.int64)
    return values % ONES_COMPLEMENT_CLASSES


def class_pmf(values, space=ONES_COMPLEMENT_CLASSES):
    """Empirical PMF over residue classes from raw checksum values."""
    classes = ones_complement_classes(values)
    counts = np.bincount(classes, minlength=space).astype(np.float64)
    total = counts.sum()
    if total:
        counts /= total
    return counts


def cyclic_convolve(p, q):
    """Cyclic convolution of two PMFs over the same modulus."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("PMFs must share a modulus")
    result = np.fft.irfft(np.fft.rfft(p) * np.fft.rfft(q), n=p.size)
    np.clip(result, 0.0, None, out=result)
    total = result.sum()
    if total:
        result /= total
    return result


def cyclic_self_convolve(p, k):
    """The k-fold cyclic self-convolution of a PMF (k >= 1)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    p = np.asarray(p, dtype=np.float64)
    spectrum = np.fft.rfft(p) ** k
    result = np.fft.irfft(spectrum, n=p.size)
    np.clip(result, 0.0, None, out=result)
    total = result.sum()
    if total:
        result /= total
    return result


def predicted_block_distribution(cell_values, k):
    """Predicted k-cell block PMF from measured single-cell values.

    ``cell_values`` are raw single-cell checksum values; the result is
    the i.i.d. prediction over ones-complement residue classes, i.e.
    the dotted "Predict" line of Figure 2.
    """
    return cyclic_self_convolve(class_pmf(cell_values), k)


def match_probability(pmf):
    """P[two independent draws from ``pmf`` are equal]."""
    pmf = np.asarray(pmf, dtype=np.float64)
    return float((pmf * pmf).sum())


def predicted_match_probability(cell_values, k):
    """Table 4's "Predicted": match probability of i.i.d. k-cell blocks."""
    return match_probability(predicted_block_distribution(cell_values, k))
