"""Numerical forms of the paper's appendix results.

These functions make the appendix checkable by tests and usable by the
experiment code:

* Lemma 1 / Corollary 3 / Theorem 4 ("a central limit theorem for
  modular sums"): convolution can only shrink PMax and grow PMin, and
  the sum of many independent observations mod M tends to uniform --
  :func:`modular_clt_pmax` traces PMax as terms are added.
* Lemma 9: drawing two values from any distribution, equality is at
  least as likely as any fixed non-zero difference --
  :func:`prob_equal` vs :func:`prob_offset`.  This is why Fletcher's
  positional term and the trailer placement help on non-uniform data
  (they turn "must be equal" into "must differ by a splice-specific
  constant").
* The Section 5.4 cell-colouring correction: a k-cell substitution
  avoids the second packet's header cell with probability
  ``(m-1-k)/(m-1)``; only those substitutions can fail at the local
  data rate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.convolution import cyclic_convolve

__all__ = [
    "coloring_correction",
    "effective_checksum_bits",
    "modular_clt_pmax",
    "prob_equal",
    "prob_offset",
]


def prob_equal(pmf):
    """P[X == Y] for independent X, Y ~ pmf (Lemma 9's left side)."""
    pmf = np.asarray(pmf, dtype=np.float64)
    return float((pmf * pmf).sum())


def prob_offset(pmf, c):
    """P[X - Y == c (mod M)] for independent X, Y ~ pmf.

    Lemma 9 guarantees this never exceeds :func:`prob_equal` -- with
    equality only for uniform distributions (or ``c == 0``).
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    return float((pmf * np.roll(pmf, -int(c))).sum())


def modular_clt_pmax(pmf, terms):
    """PMax of the mod-M sum of 1..``terms`` independent observations.

    Returns a list of PMax values; Corollary 3 says it is
    non-increasing and Theorem 4 that it tends to 1/M.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    current = pmf.copy()
    trajectory = [float(current.max())]
    for _ in range(terms - 1):
        current = cyclic_convolve(current, pmf)
        trajectory.append(float(current.max()))
    return trajectory


def coloring_correction(m, k):
    """Probability a k-cell substitution in an m-cell packet is all-data.

    Section 5.4: the substitution keeps the second packet's trailer and
    draws its remaining ``k - 1`` cells from the other ``m - 1``; of
    the ``C(m-1, k-1)`` choices, ``C(m-2, k-1)`` avoid the second
    header cell, a fraction of ``(m - k) / (m - 1)``.  Substitutions
    that include the header are "coloured" and fail at the ~2^-16
    rate, so the local-data failure prediction must be scaled by this
    factor.
    """
    if not 1 <= k <= m:
        raise ValueError("substitution length must satisfy 1 <= k <= m")
    if m == 1:
        return 0.0
    return (m - k) / (m - 1)


def effective_checksum_bits(miss_probability):
    """Bits of a uniform check code with the given miss probability.

    The paper's headline restated: a measured miss rate of ~2^-10
    means the 16-bit TCP checksum performs like a 10-bit CRC.
    """
    if miss_probability <= 0:
        return float("inf")
    return -math.log2(miss_probability)
