"""Checksum value distributions over cells of real data.

Section 4.3 of the paper measures the distribution of the TCP checksum
over 48-byte cells and finds severe hot-spots: the single most common
value (usually zero) covers 0.01%-1% of cells, and the next 65 values
(0.1% of the space) cover 1%-5%.  This module computes those
distributions -- for the Internet checksum and for both Fletcher
variants -- and the frequency-sorted PDF/CDF views of Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checksums.fletcher import fletcher8_cells
from repro.checksums.internet import InternetChecksum

__all__ = [
    "ChecksumDistribution",
    "block_checksum_values",
    "cell_checksum_values",
    "distribution_over",
]

_CELL = 48


def _data_to_cells(data, cell_size):
    """Full ``cell_size``-byte cells of ``data`` (or of each file)."""
    if hasattr(data, "files"):
        chunks = [f.data for f in data]
    else:
        chunks = [bytes(data)]
    cells = []
    for chunk in chunks:
        usable = len(chunk) - len(chunk) % cell_size
        if usable:
            cells.append(
                np.frombuffer(chunk, dtype=np.uint8, count=usable).reshape(
                    -1, cell_size
                )
            )
    if not cells:
        return np.empty((0, cell_size), dtype=np.uint8)
    return np.concatenate(cells)


def cell_checksum_values(data, algorithm="internet", cell_size=_CELL):
    """Per-cell checksum values over ``data`` (bytes or a Filesystem).

    Returns a uint32 array with one checksum value per full cell.
    ``algorithm`` is ``"internet"``, ``"fletcher255"`` or
    ``"fletcher256"`` (the three Figure 3 compares).
    """
    cells = _data_to_cells(data, cell_size)
    if algorithm in ("internet", "tcp"):
        sums = InternetChecksum.cell_sums(cells)
        return InternetChecksum.fold(sums)
    if algorithm in ("fletcher255", "fletcher256"):
        a, b = fletcher8_cells(cells, int(algorithm[-3:]))
        return ((b.astype(np.uint32) << 8) | a.astype(np.uint32))
    raise ValueError("unknown algorithm %r" % algorithm)


def block_checksum_values(data, k, cell_size=_CELL):
    """Internet checksum over adjacent ``k``-cell blocks (Figure 2).

    Blocks are non-overlapping runs of ``k`` consecutive cells within
    each file; the block checksum is the ones-complement sum of its
    cells' word sums, which equals the checksum of the concatenated
    bytes.
    """
    if hasattr(data, "files"):
        parts = [block_checksum_values(f.data, k, cell_size) for f in data]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.uint32)
        return np.concatenate(parts)
    cells = _data_to_cells(data, cell_size)
    usable = cells.shape[0] - cells.shape[0] % k
    if usable <= 0:
        return np.empty(0, dtype=np.uint32)
    sums = InternetChecksum.cell_sums(cells[:usable])
    block_sums = sums.reshape(-1, k).sum(axis=1)
    return InternetChecksum.fold(block_sums)


@dataclass
class ChecksumDistribution:
    """An empirical distribution of checksum values.

    ``counts[v]`` is the number of observations of value ``v``; the
    space size is ``counts.size`` (65536 for 16-bit sums).
    """

    counts: np.ndarray

    @classmethod
    def from_values(cls, values, space=65536):
        values = np.asarray(values)
        return cls(np.bincount(values.astype(np.int64), minlength=space))

    @property
    def observations(self):
        return int(self.counts.sum())

    @property
    def space(self):
        return self.counts.size

    def pmf(self):
        """Probabilities per value (unsorted)."""
        total = self.observations
        if not total:
            return np.zeros(self.space)
        return self.counts / total

    def sorted_pmf(self):
        """Figure 2's view: probabilities sorted most-common-first."""
        return np.sort(self.pmf())[::-1]

    def sorted_cdf(self):
        """Cumulative share covered by the most common values."""
        return np.cumsum(self.sorted_pmf())

    @property
    def pmax(self):
        return float(self.sorted_pmf()[0]) if self.observations else 0.0

    @property
    def pmin(self):
        pmf = self.pmf()
        return float(pmf.min())

    def top_value_share(self, n):
        """Fraction of observations covered by the ``n`` most common values."""
        if not self.observations:
            return 0.0
        return float(self.sorted_pmf()[:n].sum())

    def most_common(self, n=1):
        """The ``n`` most common (value, probability) pairs."""
        pmf = self.pmf()
        order = np.argsort(pmf)[::-1][:n]
        return [(int(v), float(pmf[v])) for v in order]

    def match_probability(self):
        """P[two independent draws are equal] = sum of squared probs."""
        pmf = self.pmf()
        return float((pmf * pmf).sum())

    def uniform_match_probability(self):
        """The uniform-data baseline 1/space."""
        return 1.0 / self.space


def distribution_over(data, algorithm="internet", k=1, cell_size=_CELL):
    """The :class:`ChecksumDistribution` of ``k``-cell blocks of ``data``."""
    if k == 1:
        values = cell_checksum_values(data, algorithm, cell_size)
    else:
        if algorithm not in ("internet", "tcp"):
            raise ValueError("multi-cell blocks are defined for the Internet sum")
        values = block_checksum_values(data, k, cell_size)
    return ChecksumDistribution.from_values(values)
