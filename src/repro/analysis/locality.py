"""Global vs local congruence of block checksums (Tables 5 and 6).

The paper's key diagnostic for *why* splices beat the TCP checksum:
two blocks drawn from nearby offsets in the same file are far more
likely to have congruent checksums than two blocks drawn from anywhere
in the filesystem -- and most nearby congruences are identical bytes
(benign).  Splices substitute cells from at most two packet lengths
away, so the local statistics, not the global ones, predict the actual
failure rate.

Definitions used here (matching Section 4.6):

* blocks are ``k`` consecutive 48-byte cells (cell-aligned, within one
  file);
* two blocks are *congruent* when their ones-complement sums agree
  (compared as mod-65535 residue classes, since 0x0000 and 0xFFFF are
  interchangeable in a checksum);
* the *local* statistic restricts pairs to block starts at most
  ``window`` bytes apart (512, i.e. two packet lengths);
* *excluding identical* drops byte-for-byte equal pairs, which cause
  no corruption when substituted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.convolution import ONES_COMPLEMENT_CLASSES
from repro.checksums.internet import InternetChecksum

__all__ = ["LocalityStats", "locality_statistics"]

_CELL = 48


@dataclass
class LocalityStats:
    """Congruence statistics for one block length ``k``."""

    k: int
    global_match: float = 0.0
    local_pairs: int = 0
    local_congruent: int = 0
    local_identical_congruent: int = 0

    @property
    def local_match(self):
        if not self.local_pairs:
            return 0.0
        return self.local_congruent / self.local_pairs

    @property
    def local_match_excluding_identical(self):
        if not self.local_pairs:
            return 0.0
        return (
            self.local_congruent - self.local_identical_congruent
        ) / self.local_pairs

    def as_percentages(self):
        """(global, local, local-excluding-identical) in percent."""
        return (
            100.0 * self.global_match,
            100.0 * self.local_match,
            100.0 * self.local_match_excluding_identical,
        )


def _file_cells(data):
    usable = len(data) - len(data) % _CELL
    if usable <= 0:
        return np.empty((0, _CELL), dtype=np.uint8)
    return np.frombuffer(data, dtype=np.uint8, count=usable).reshape(-1, _CELL)


def _block_classes(cell_sums, k):
    """Mod-65535 classes of k-cell block sums, all start offsets."""
    if cell_sums.size < k:
        return np.empty(0, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(cell_sums, k)
    return (windows.sum(axis=1) % ONES_COMPLEMENT_CLASSES).astype(np.int64)


def locality_statistics(filesystem, ks=(1, 2, 4, 5), window=512):
    """Compute Table 5's statistics over a filesystem.

    Returns ``{k: LocalityStats}``.  The local statistic enumerates
    *every* pair of cell-aligned blocks within ``window`` bytes inside
    each file (an exact count, not a sample).
    """
    max_lag = max(1, window // _CELL)
    stats = {k: LocalityStats(k=k) for k in ks}
    global_counts = {k: np.zeros(ONES_COMPLEMENT_CLASSES, dtype=np.int64) for k in ks}

    for file in filesystem:
        cells = _file_cells(file.data)
        if not cells.shape[0]:
            continue
        sums = InternetChecksum.cell_sums(cells).astype(np.int64)
        # Per-lag cell equality, shared across block lengths.
        cell_eq = {
            d: (cells[:-d] == cells[d:]).all(axis=1) for d in range(1, max_lag + 1)
            if cells.shape[0] > d
        }
        for k in ks:
            classes = _block_classes(sums, k)
            if not classes.size:
                continue
            global_counts[k] += np.bincount(classes, minlength=ONES_COMPLEMENT_CLASSES)
            entry = stats[k]
            for d, eq in cell_eq.items():
                n = classes.size - d
                if n <= 0:
                    continue
                congruent = classes[:n] == classes[d : d + n]
                entry.local_pairs += n
                entry.local_congruent += int(congruent.sum())
                # Identical blocks: all k cell-lag equalities hold.
                if eq.size >= n + k - 1:
                    ident = np.lib.stride_tricks.sliding_window_view(
                        eq[: n + k - 1], k
                    ).all(axis=1)
                else:
                    width = eq[: n + k - 1]
                    pad = np.zeros(n + k - 1 - width.size, dtype=bool)
                    ident = np.lib.stride_tricks.sliding_window_view(
                        np.concatenate([width, pad]), k
                    ).all(axis=1)
                entry.local_identical_congruent += int((congruent & ident[:n]).sum())

    for k in ks:
        total = global_counts[k].sum()
        if total:
            pmf = global_counts[k] / total
            stats[k].global_match = float((pmf * pmf).sum())
    return stats
