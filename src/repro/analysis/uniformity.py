"""Statistical verification of the appendix uniformity theorems.

Theorem 6: over uniformly distributed data, the Internet checksum is
uniformly distributed.  Theorem 7: so is Fletcher's checksum (with the
A/B component subtlety the appendix works through).  These are exact
statements about ideal distributions; this module checks the
*implementations* against them with chi-square goodness-of-fit tests
over large seeded samples -- a bug in the arithmetic (a missed carry,
a wrong modulus) shows up as a catastrophically small p-value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.distribution import cell_checksum_values

__all__ = ["UniformityResult", "checksum_uniformity_test", "fletcher_component_test"]


@dataclass(frozen=True)
class UniformityResult:
    """Outcome of one chi-square uniformity test."""

    algorithm: str
    samples: int
    bins: int
    statistic: float
    p_value: float

    @property
    def consistent_with_uniform(self):
        """True when the sample does not refute uniformity (p > 1e-3)."""
        return self.p_value > 1e-3


def _uniform_cells(samples, cell_size, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(samples, cell_size)).astype(np.uint8)


def checksum_uniformity_test(
    algorithm="internet", samples=200_000, cell_size=48, bins=256, seed=2024
):
    """Chi-square test of checksum uniformity over uniform data.

    Values are reduced to residue classes where the algorithm has
    congruent representations (mod 65535 for the Internet sum, the
    component moduli for Fletcher) and folded into ``bins`` coarse
    bins for the test.
    """
    cells = _uniform_cells(samples, cell_size, seed)
    data = cells.tobytes()
    values = cell_checksum_values(data, algorithm, cell_size).astype(np.float64)
    if algorithm in ("internet", "tcp"):
        classes, space = values % 65535, 65535
    elif algorithm == "fletcher255":
        a = values.astype(np.int64) & 0xFF
        b = values.astype(np.int64) >> 8
        classes = (a % 255) * 255 + (b % 255)
        space = 255 * 255
    elif algorithm == "fletcher256":
        classes, space = values, 65536
    else:
        raise ValueError("unsupported algorithm %r" % algorithm)
    binned = np.floor(classes * bins / space).astype(np.int64).clip(0, bins - 1)
    counts = np.bincount(binned, minlength=bins)
    statistic, p_value = stats.chisquare(counts)
    return UniformityResult(
        algorithm=algorithm,
        samples=samples,
        bins=bins,
        statistic=float(statistic),
        p_value=float(p_value),
    )


def fletcher_component_test(modulus=255, samples=150_000, seed=7):
    """Independence of Fletcher's A and B components over uniform data.

    The appendix's Theorem 7 requires A and B to be (near-)independent
    and individually uniform; this runs a chi-square contingency test
    over a coarse (16 x 16) binning of the two components.
    """
    from repro.checksums.fletcher import fletcher8_cells

    cells = _uniform_cells(samples, 48, seed)
    a, b = fletcher8_cells(cells, modulus)
    grid = 16
    a_bin = (a * grid // modulus).clip(0, grid - 1)
    b_bin = (b * grid // modulus).clip(0, grid - 1)
    table = np.zeros((grid, grid), dtype=np.int64)
    np.add.at(table, (a_bin, b_bin), 1)
    statistic, p_value, _, _ = stats.chi2_contingency(table)
    return UniformityResult(
        algorithm="fletcher%d-independence" % modulus,
        samples=samples,
        bins=grid * grid,
        statistic=float(statistic),
        p_value=float(p_value),
    )
