"""Section 6.x / 7 ablations.

* inverted vs plain stored checksum: equivalent miss rates (6.3);
* unfilled IP header (the 1995 simulator bug): misses inflate by
  orders of magnitude (6.2);
* adding a constant to every word: permuted distribution, comparable
  rate -- zero is frequent, not special (6.1);
* Early Packet Discard: zero valid splices (7).
"""

from benchmarks.conftest import regenerate


def test_inverted_checksum_equivalence(benchmark):
    report = regenerate(benchmark, "ablation-inverted", fs_bytes=500_000)
    inverted = report.data["inverted_pct"]
    plain = report.data["plain_pct"]
    assert inverted > 0
    assert 0.5 < plain / inverted < 2.0


def test_unfilled_header_inflation(benchmark):
    report = regenerate(benchmark, "ablation-unfilled-header", fs_bytes=500_000)
    assert report.data["inflation"] > 10


def test_add_constant_rate_stable(benchmark):
    report = regenerate(benchmark, "ablation-add-constant", fs_bytes=500_000)
    original = report.data["original_pct"]
    shifted = report.data["shifted_pct"]
    assert original > 0
    assert 0.2 < shifted / original < 5.0


def test_early_packet_discard(benchmark):
    report = regenerate(benchmark, "epd")
    assert report.data["reachable_splices"] == 0
