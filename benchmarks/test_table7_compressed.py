"""Table 7: compressing the data restores the uniform miss rate.

Paper shape: the worst filesystem's ~0.17% miss rate falls roughly a
hundredfold after compression, back to the ~0.0015% uniform-data
expectation.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def test_table7(benchmark):
    report = regenerate(benchmark, "table7", fs_bytes=700_000)
    before = report.data["miss_rate_before_pct"]
    after = report.data["miss_rate_after_pct"]
    assert before > 20 * UNIFORM_PCT
    assert after < 10 * UNIFORM_PCT
    assert after < before / 20
