"""Table 4: match probability for k-cell substitutions.

Paper shape: the i.i.d. prediction collapses to the uniform 0.0015% by
k = 2-4, while the measured probability barely decays -- real cells are
locally correlated, not independent.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def test_table4(benchmark):
    report = regenerate(benchmark, "table4")
    rows = {row["k"]: row for row in report.data["rows"]}

    # k = 1: prediction equals measurement by construction.
    assert abs(rows[1]["predicted_pct"] - rows[1]["measured_pct"]) < 1e-6

    # The prediction tails off to uniform ...
    assert rows[4]["predicted_pct"] < 3 * UNIFORM_PCT
    assert rows[5]["predicted_pct"] < 2 * UNIFORM_PCT

    # ... while the measurement stays orders of magnitude above it.
    for k in (2, 3, 4, 5):
        assert rows[k]["measured_pct"] > 10 * rows[k]["predicted_pct"], k
        assert rows[k]["measured_pct"] > 10 * UNIFORM_PCT, k

    # Measured decay is gentle (within ~4x of k=1 by k=5).
    assert rows[5]["measured_pct"] > rows[1]["measured_pct"] / 4
