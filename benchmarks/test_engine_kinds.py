"""The batch-engine speedup guarantee on the smoke corpus.

The batch compute tier's contract (docs/architecture.md, "Batch
engine"): ``--engine batch`` and ``--engine scalar`` produce
bit-identical counters, and on the bench smoke corpus the batch path
is **at least 5x faster** than the byte-at-a-time reference receiver.
The same pair of rows lands in every ``repro-checksums bench``
snapshot (``engine[batch]``/``engine[scalar]`` at the comparison
corpus), so a regression is visible in the delta table too.

Not part of the tier-1 suite (``testpaths = ["tests"]``); run with
``pytest benchmarks/test_engine_kinds.py -s``, ``make bench-compare``,
or the CI bench-smoke job.
"""

from __future__ import annotations

import time

from repro.core.experiment import run_splice_experiment
from repro.corpus.profiles import build_filesystem
from repro.protocols.packetizer import PacketizerConfig

#: The bench comparison corpus: small enough that the scalar reference
#: receiver finishes in seconds (mirrors telemetry.bench._COMPARE_BYTES).
SMOKE_BYTES = 8_000
SEED = 1

#: The advertised floor.  The measured ratio is typically well above
#: 10x; 5x is the contract CI enforces.
MIN_SPEEDUP = 5.0


def _best_run(fs, engine, rounds=3):
    """(result, best-of-``rounds`` seconds) for one engine kind."""
    config = PacketizerConfig()
    result = None
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_splice_experiment(fs, config, engine=engine)
        dt = max(time.perf_counter() - t0, 1e-9)
        if best is None or dt < best:
            best = dt
    return result, best


def test_batch_engine_at_least_5x_scalar():
    fs = build_filesystem("stanford-u1", SMOKE_BYTES, SEED)
    batch, t_batch = _best_run(fs, "batch")
    scalar, t_scalar = _best_run(fs, "scalar")

    # Conformance first: a speedup over different answers is meaningless.
    assert batch.counters == scalar.counters
    assert batch.counters.total > 0

    speedup = t_scalar / t_batch
    print(
        "\nengine comparison @%d bytes: batch %.4fs (%.0f splices/s) "
        "vs scalar %.4fs (%.0f splices/s) -> %.1fx"
        % (
            SMOKE_BYTES,
            t_batch,
            batch.counters.total / t_batch,
            t_scalar,
            scalar.counters.total / t_scalar,
            speedup,
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        "batch engine is only %.1fx the scalar reference (floor %.1fx)"
        % (speedup, MIN_SPEEDUP)
    )
