"""Table 10: header vs trailer failure modes.

Paper shape: the header checksum never rejects identical-data splices
but misses far more corrupted ones; the trailer checksum spuriously
rejects identical-data splices (benign) while missing a small fraction
of the header sum's count.
"""

from benchmarks.conftest import regenerate


def test_table10(benchmark):
    report = regenerate(benchmark, "table10", fs_bytes=700_000)
    data = report.data
    assert data["header_identical_rejected"] == 0
    assert data["trailer_identical_rejected"] > 0
    assert data["trailer_missed"] < data["header_missed"] / 5
    # The spurious rejections outnumber the real misses it still has
    # (the paper's "two numbers are not comparable" row).
    assert data["trailer_identical_rejected"] > data["trailer_missed"]
