"""Figure 3: per-cell PDFs of TCP, F-255 and F-256.

Paper shape: all three sums have similarly skewed per-cell
distributions over real data -- the per-cell match probabilities are
all within a small factor of each other (0.011%-0.016% in the paper).
Fletcher's splice advantage comes from positional colouring, not from
a more uniform per-cell distribution.
"""

from benchmarks.conftest import regenerate


def test_figure3(benchmark):
    report = regenerate(benchmark, "figure3", fs_bytes=700_000)
    match = report.data["match_pct"]

    uniform_pct = 100.0 / 65536
    for label, value in match.items():
        # Every sum is an order of magnitude worse than uniform per cell.
        assert value > 10 * uniform_pct, label

    values = sorted(match.values())
    # ... and they are within a small factor of each other.
    assert values[-1] < 10 * values[0]

    # The sorted PDFs themselves are skewed.
    for key in ("pdf_ip_tcp", "pdf_f255", "pdf_f256"):
        pdf = report.data[key]
        assert pdf[0] > 10 * (1.0 / 65536)
