"""Tables 1-3: the per-filesystem splice results.

Paper shape: CRC-32 misses essentially nothing; the TCP checksum
misses between 0.008% and 0.22% of the remaining (corrupted) splices --
10x to 100x the uniform-data expectation of 2^-16.
"""

from benchmarks.conftest import regenerate

UNIFORM_PCT = 100.0 / 65536


def _check_rows(rows):
    for row in rows:
        assert row["remaining"] > 0
        assert row["missed_crc32"] == 0
        # Real-data rates sit well above the uniform expectation ...
        assert row["miss_rate_tcp_pct"] > 2 * UNIFORM_PCT, row["system"]
        # ... but within the paper's measured band (with slack).
        assert row["miss_rate_tcp_pct"] < 0.5, row["system"]
        # The auxiliary CRC-16 stays near the uniform prediction even
        # on data that defeats the TCP sum.
        assert row["miss_rate_crc16_pct"] < 8 * UNIFORM_PCT, row["system"]


def test_table1_nsc(benchmark):
    report = regenerate(benchmark, "table1")
    _check_rows(report.data["rows"])


def test_table2_sics(benchmark):
    report = regenerate(benchmark, "table2")
    _check_rows(report.data["rows"])
    by_system = {row["system"]: row for row in report.data["rows"]}
    # sics-opt is the paper's worst volume (~0.17%), around 9-10
    # effective checksum bits.
    assert by_system["sics-opt"]["miss_rate_tcp_pct"] > 0.05
    assert 7.5 < by_system["sics-opt"]["effective_bits"] < 12.5


def test_table3_stanford(benchmark):
    report = regenerate(benchmark, "table3")
    _check_rows(report.data["rows"])
