"""The disabled-telemetry overhead guarantee on the splice hot path.

The instrumentation contract (docs/architecture.md, "Observability"):
with no registry activated, every telemetry call the splice engine
makes resolves to the shared :data:`repro.telemetry.core.NULL` no-op,
and the total cost of those calls is **under 2% of the hot path's wall
time**.  ``_overhead_section`` measures it honestly -- per-batch null
instrumentation cost x batches per pass, over the measured hot-path
time -- and the same number lands in every ``repro-checksums bench``
snapshot, so a regression is visible in the delta table too.

Not part of the tier-1 suite (``testpaths = ["tests"]``); run with
``pytest benchmarks/test_telemetry_overhead.py -s`` or ``make bench``.
"""

from __future__ import annotations

from repro.telemetry.bench import _overhead_section
from repro.telemetry.core import NULL, current

#: The advertised ceiling, with margin below the 2% requirement so the
#: assertion does not flake on a loaded machine.
DISABLED_PCT_LIMIT = 2.0


def test_disabled_overhead_under_two_percent():
    assert current() is NULL, "benchmark requires the disabled state"
    overhead = _overhead_section(quick=True)
    print(
        "\ntelemetry overhead: disabled %.4f%% / enabled %.2f%% "
        "(%d batches per pass)"
        % (
            overhead["disabled_pct"],
            overhead["enabled_pct"],
            overhead["batches"],
        )
    )
    assert overhead["disabled_pct"] < DISABLED_PCT_LIMIT
    # sanity: the measurement itself ran and saw real batches
    assert overhead["batches"] >= 1


def test_null_calls_are_allocation_free():
    """The hot-path primitives return shared singletons, not fresh objects."""
    assert NULL.span("engine.batch") is NULL.span("engine.stream")
    assert NULL.count("x", 10) is None
    assert NULL.meter("x", 10, 0.1) is None
